"""Tests for inter-annotator agreement statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotation.agreement import (
    cohen_kappa,
    fleiss_kappa,
    fleiss_kappa_from_annotations,
    interpret_kappa,
    percent_agreement,
    rating_matrix,
)
from repro.core.errors import AnnotationError


class TestRatingMatrix:
    def test_shape_and_counts(self):
        matrix = rating_matrix([[0, 1, 1], [2, 2, 2]])
        assert matrix.shape == (2, 4)
        assert matrix[0].tolist() == [1, 2, 0, 0]
        assert matrix[1].tolist() == [0, 0, 3, 0]

    def test_rejects_empty(self):
        with pytest.raises(AnnotationError):
            rating_matrix([])

    def test_rejects_single_rater(self):
        with pytest.raises(AnnotationError):
            rating_matrix([[1]])

    def test_rejects_ragged(self):
        with pytest.raises(AnnotationError):
            rating_matrix([[0, 1], [1]])


class TestFleissKappa:
    def test_perfect_agreement(self):
        matrix = rating_matrix([[1, 1, 1]] * 10 + [[2, 2, 2]] * 10)
        assert fleiss_kappa(matrix) == pytest.approx(1.0)

    def test_fleiss_1971_worked_example(self):
        # The classic example from Fleiss (1971): 10 subjects, 14 raters,
        # 5 categories; published kappa = 0.210.
        table = np.array(
            [
                [0, 0, 0, 0, 14],
                [0, 2, 6, 4, 2],
                [0, 0, 3, 5, 6],
                [0, 3, 9, 2, 0],
                [2, 2, 8, 1, 1],
                [7, 7, 0, 0, 0],
                [3, 2, 6, 3, 0],
                [2, 5, 3, 2, 2],
                [6, 5, 2, 1, 0],
                [0, 2, 2, 3, 7],
            ]
        )
        assert fleiss_kappa(table) == pytest.approx(0.2099, abs=1e-3)

    def test_systematic_disagreement_is_negative(self):
        matrix = rating_matrix([[0, 1], [1, 0], [0, 1], [1, 0]])
        assert fleiss_kappa(matrix) < 0.0

    def test_unequal_raters_rejected(self):
        bad = np.array([[3, 0], [2, 2]])
        with pytest.raises(AnnotationError):
            fleiss_kappa(bad)

    def test_degenerate_single_category(self):
        matrix = rating_matrix([[1, 1, 1]] * 5)
        assert fleiss_kappa(matrix) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 3), min_size=3, max_size=3),
            min_size=2,
            max_size=40,
        )
    )
    def test_bounded_above_by_one(self, ratings):
        kappa = fleiss_kappa_from_annotations(ratings)
        assert kappa <= 1.0 + 1e-9


class TestCohenKappa:
    def test_perfect(self):
        assert cohen_kappa([0, 1, 2, 3], [0, 1, 2, 3]) == pytest.approx(1.0)

    def test_known_value(self):
        # 2x2 example: po = 0.7, pe = 0.4·0.4 + 0.6·0.6 = 0.52,
        # kappa = (0.7 − 0.52) / 0.48 = 0.375.
        a = [0] * 25 + [0] * 15 + [1] * 15 + [1] * 45
        b = [0] * 25 + [1] * 15 + [0] * 15 + [1] * 45
        assert cohen_kappa(a, b, num_categories=2) == pytest.approx(
            0.375, abs=0.01
        )

    def test_length_mismatch(self):
        with pytest.raises(AnnotationError):
            cohen_kappa([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(AnnotationError):
            cohen_kappa([], [])


class TestPercentAgreement:
    def test_full_agreement(self):
        assert percent_agreement([[1, 1, 1], [0, 0, 0]]) == 1.0

    def test_partial(self):
        assert percent_agreement([[0, 0, 1]]) == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(AnnotationError):
            percent_agreement([])


class TestInterpretation:
    @pytest.mark.parametrize(
        "kappa,band",
        [
            (-0.2, "poor"),
            (0.1, "slight"),
            (0.3, "fair"),
            (0.5, "moderate"),
            (0.7206, "substantial"),
            (0.9, "almost perfect"),
        ],
    )
    def test_landis_koch_bands(self, kappa, band):
        assert interpret_kappa(kappa) == band
