"""Tests for the Label-Studio-like platform substrate."""

from datetime import datetime, timezone

import pytest

from repro.annotation.platform import LabelingProject, TaskStatus
from repro.core.errors import AnnotationError
from repro.core.schema import RiskLevel
from repro.corpus.models import RedditPost


def make_post(pid="p1", body="text"):
    return RedditPost(
        post_id=pid, author="a", subreddit="s", title="t", body=body,
        created_utc=datetime(2020, 1, 1, tzinfo=timezone.utc),
    )


@pytest.fixture()
def project():
    return LabelingProject("test")


class TestTasks:
    def test_add_task_assigns_ids(self, project):
        t1 = project.add_task(make_post("p1"))
        t2 = project.add_task(make_post("p2"))
        assert (t1.task_id, t2.task_id) == (0, 1)

    def test_add_tasks_with_ambiguities(self, project):
        tasks = project.add_tasks([make_post("p1"), make_post("p2")], [0.1, 0.9])
        assert [t.ambiguity for t in tasks] == [0.1, 0.9]

    def test_ambiguity_length_mismatch(self, project):
        with pytest.raises(AnnotationError):
            project.add_tasks([make_post()], [0.1, 0.2])

    def test_unknown_task_raises(self, project):
        with pytest.raises(AnnotationError):
            project.get(99)


class TestWorkflow:
    def test_assign_then_submit(self, project):
        task = project.add_task(make_post())
        project.assign(task.task_id, "ann-1")
        project.submit(task.task_id, "ann-1", RiskLevel.IDEATION)
        assert task.submissions["ann-1"] is RiskLevel.IDEATION
        assert task.status is TaskStatus.IN_PROGRESS

    def test_submit_without_assignment_rejected(self, project):
        task = project.add_task(make_post())
        with pytest.raises(AnnotationError):
            project.submit(task.task_id, "stranger", RiskLevel.IDEATION)

    def test_escalation(self, project):
        task = project.add_task(make_post())
        project.assign(task.task_id, "ann-1")
        project.escalate(task.task_id, "ann-1")
        assert task.status is TaskStatus.ESCALATED
        assert task.escalated_by == ["ann-1"]

    def test_finalise(self, project):
        task = project.add_task(make_post())
        project.assign(task.task_id, "ann-1")
        project.finalise(task.task_id, RiskLevel.ATTEMPT, "vote")
        assert task.final_label is RiskLevel.ATTEMPT
        assert task.status is TaskStatus.COMPLETED
        assert task.resolution == "vote"

    def test_progress(self, project):
        tasks = project.add_tasks([make_post(f"p{i}") for i in range(4)])
        for task in tasks[:2]:
            project.assign(task.task_id, "a")
            project.finalise(task.task_id, RiskLevel.INDICATOR, "single")
        assert project.progress == pytest.approx(0.5)

    def test_by_status(self, project):
        task = project.add_task(make_post())
        assert project.by_status(TaskStatus.PENDING) == [task]


class TestExport:
    def test_export_shape(self, project):
        task = project.add_task(make_post(body="hello world"))
        project.assign(task.task_id, "ann-1")
        project.submit(task.task_id, "ann-1", RiskLevel.BEHAVIOR)
        project.finalise(task.task_id, RiskLevel.BEHAVIOR, "single")
        export = project.export()
        assert len(export) == 1
        record = export[0]
        assert record["data"]["text"] == task.post.text
        assert record["meta"]["final_label"] == "Behavior"
        choice = record["annotations"][0]["result"][0]["value"]["choices"]
        assert choice == ["Behavior"]

    def test_export_skips_incomplete(self, project):
        project.add_task(make_post())
        assert project.export() == []
