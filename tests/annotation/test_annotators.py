"""Tests for simulated annotators and supervisors."""

import numpy as np
import pytest

from repro.annotation.annotators import (
    ExpertSupervisor,
    SimulatedAnnotator,
    confusion_matrix,
)
from repro.core.schema import NUM_CLASSES, RiskLevel


class TestConfusionMatrix:
    def test_rows_are_distributions(self):
        matrix = confusion_matrix(0.9)
        assert matrix.shape == (NUM_CLASSES, NUM_CLASSES)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert (matrix >= 0).all()

    def test_diagonal_equals_accuracy(self):
        matrix = confusion_matrix(0.87)
        assert np.allclose(np.diag(matrix), 0.87)

    def test_adjacent_confusion_dominates(self):
        matrix = confusion_matrix(0.8)
        # Confusing IN with ID must be likelier than IN with AT.
        assert matrix[0, 1] > matrix[0, 3]
        assert matrix[3, 2] > matrix[3, 0]

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(0.0)
        with pytest.raises(ValueError):
            confusion_matrix(1.2)

    def test_jitter_clipped(self):
        matrix = confusion_matrix(0.95, skill_jitter=0.5)
        assert np.diag(matrix).max() <= 0.999


class TestSimulatedAnnotator:
    def _annotator(self, rng, accuracy=0.9, uncertainty=0.0):
        return SimulatedAnnotator("ann", accuracy, uncertainty, rng)

    def test_empirical_accuracy(self, rng):
        annotator = self._annotator(rng, accuracy=0.9)
        hits = 0
        n = 3000
        for _ in range(n):
            judgement = annotator.annotate(RiskLevel.IDEATION)
            hits += judgement.label == RiskLevel.IDEATION
        assert abs(hits / n - 0.9) < 0.03

    def test_uncertainty_escalation_rate(self, rng):
        annotator = self._annotator(rng, uncertainty=0.2)
        escalated = sum(
            annotator.annotate(RiskLevel.BEHAVIOR).uncertain
            for _ in range(2000)
        )
        assert abs(escalated / 2000 - 0.2) < 0.04

    def test_ambiguity_raises_escalations(self, rng):
        annotator = self._annotator(rng, uncertainty=0.05)
        plain = sum(
            annotator.annotate(RiskLevel.BEHAVIOR, ambiguity=0.0).uncertain
            for _ in range(1500)
        )
        hard = sum(
            annotator.annotate(RiskLevel.BEHAVIOR, ambiguity=0.8).uncertain
            for _ in range(1500)
        )
        assert hard > plain

    def test_ambiguity_lowers_accuracy(self, rng):
        annotator = self._annotator(rng, accuracy=0.92)
        def acc(ambiguity):
            hits = 0
            for _ in range(2000):
                j = annotator.annotate(RiskLevel.IDEATION, ambiguity)
                hits += j.label == RiskLevel.IDEATION
            return hits / 2000
        assert acc(0.9) < acc(0.0)

    def test_relabel_after_review_boosts_accuracy(self, rng):
        annotator = self._annotator(rng, accuracy=0.7)
        hits = sum(
            annotator.relabel_after_review(RiskLevel.ATTEMPT) == RiskLevel.ATTEMPT
            for _ in range(2000)
        )
        assert hits / 2000 > 0.8

    def test_counters(self, rng):
        annotator = self._annotator(rng, uncertainty=0.5)
        for _ in range(100):
            annotator.annotate(RiskLevel.INDICATOR)
        assert annotator.items_labelled + annotator.items_escalated == 100


class TestExpertSupervisor:
    def test_high_accuracy(self, rng):
        expert = ExpertSupervisor("sup", rng)
        hits = sum(
            expert.decide(RiskLevel.BEHAVIOR) == RiskLevel.BEHAVIOR
            for _ in range(2000)
        )
        assert hits / 2000 > 0.96

    def test_errors_are_other_labels(self, rng):
        expert = ExpertSupervisor("sup", rng, accuracy=0.5)
        outcomes = {expert.decide(RiskLevel.INDICATOR) for _ in range(500)}
        assert RiskLevel.INDICATOR in outcomes
        assert len(outcomes) > 1
