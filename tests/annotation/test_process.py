"""Tests for the end-to-end annotation campaign protocol."""

import numpy as np
import pytest

from repro.annotation.process import AnnotationCampaign, annotate_corpus
from repro.core.config import AnnotationConfig
from repro.core.errors import TrainingGateError
from repro.corpus import generate_corpus
from repro.preprocess import preprocess


@pytest.fixture(scope="module")
def clean_posts():
    corpus = generate_corpus(scale=0.04)
    return preprocess(corpus.annotated_posts, enable_near_dedup=False).posts


@pytest.fixture(scope="module")
def campaign_result(clean_posts):
    return annotate_corpus(clean_posts)


class TestTrainingGate:
    def test_all_annotators_pass(self, campaign_result):
        for report in campaign_result.training_reports:
            assert report.final_accuracy >= 0.95

    def test_low_accuracy_takes_extra_rounds(self, clean_posts):
        config = AnnotationConfig(annotator_accuracy=0.7)
        result = AnnotationCampaign(config).run(clean_posts[:400])
        assert any(r.rounds > 1 for r in result.training_reports)

    def test_no_posts_rejected(self):
        with pytest.raises(TrainingGateError):
            annotate_corpus([])


class TestCampaignOutput:
    def test_every_post_labelled(self, clean_posts, campaign_result):
        assert campaign_result.num_labelled == len(clean_posts)

    def test_joint_fraction(self, clean_posts, campaign_result):
        frac = len(campaign_result.joint_post_ids) / len(clean_posts)
        assert abs(frac - 0.30) < 0.02

    def test_kappa_in_substantial_band(self, campaign_result):
        assert 0.55 <= campaign_result.kappa <= 0.9

    def test_label_noise_bounded(self, campaign_result):
        assert campaign_result.label_noise < 0.15

    def test_escalations_happen(self, campaign_result):
        assert campaign_result.num_escalated > 0

    def test_daily_quota_respected(self, campaign_result):
        config = AnnotationConfig()
        per_day = config.daily_quota * config.num_annotators
        for log in campaign_result.daily_logs:
            assert log.items_labelled + log.items_escalated <= per_day

    def test_all_days_pass_inspection(self, campaign_result):
        assert all(d.passed for d in campaign_result.daily_logs)

    def test_resolutions_cover_protocol(self, campaign_result):
        resolutions = {
            t.resolution for t in campaign_result.project.completed
        }
        assert "vote" in resolutions
        assert "single" in resolutions

    def test_labels_are_risk_levels(self, campaign_result):
        from repro.core.schema import RiskLevel

        assert all(
            isinstance(lv, RiskLevel) for lv in campaign_result.labels.values()
        )

    def test_deterministic_given_seed(self, clean_posts):
        a = annotate_corpus(clean_posts[:300])
        b = annotate_corpus(clean_posts[:300])
        assert a.labels == b.labels
        assert a.kappa == b.kappa


class TestVotingQuality:
    def test_voted_labels_cleaner_than_solo(self, campaign_result):
        wrong = {"single": 0, "vote": 0}
        total = {"single": 0, "vote": 0}
        for task in campaign_result.project.completed:
            if task.resolution in wrong:
                total[task.resolution] += 1
                wrong[task.resolution] += int(
                    task.final_label != task.post.oracle_label
                )
        solo_noise = wrong["single"] / max(1, total["single"])
        vote_noise = wrong["vote"] / max(1, total["vote"])
        assert vote_noise <= solo_noise + 0.02
