"""Failure-injection tests: the QC machinery under degraded conditions."""

import numpy as np
import pytest

from repro.annotation.process import AnnotationCampaign
from repro.core.config import AnnotationConfig
from repro.corpus import generate_corpus
from repro.preprocess import preprocess


@pytest.fixture(scope="module")
def posts():
    corpus = generate_corpus(scale=0.03)
    return preprocess(corpus.annotated_posts, enable_near_dedup=False).posts


class TestDegradedAnnotators:
    def test_sloppy_annotators_trigger_remediation(self, posts):
        """With barely-acceptable annotators, some days fail the first
        inspection and are expert-remediated — and the campaign still
        produces a complete, cleaner-than-raw labelling."""
        config = AnnotationConfig(
            annotator_accuracy=0.82, uncertainty_rate=0.01
        )
        result = AnnotationCampaign(config).run(posts)
        assert result.num_labelled == len(posts)
        assert all(d.passed for d in result.daily_logs)
        # kappa degrades with annotator quality
        assert result.kappa < 0.7

    def test_remediated_days_have_high_final_accuracy(self, posts):
        config = AnnotationConfig(
            annotator_accuracy=0.80, uncertainty_rate=0.01
        )
        result = AnnotationCampaign(config).run(posts)
        remediated = [d for d in result.daily_logs if d.remediated]
        for day in remediated:
            assert day.inspection_accuracy >= config.inspection_accuracy_gate

    def test_kappa_monotone_in_annotator_accuracy(self, posts):
        kappas = []
        for accuracy in (0.8, 0.9, 0.97):
            config = AnnotationConfig(annotator_accuracy=accuracy)
            kappas.append(AnnotationCampaign(config).run(posts).kappa)
        assert kappas[0] < kappas[1] < kappas[2]

    def test_high_uncertainty_routes_to_experts(self, posts):
        config = AnnotationConfig(uncertainty_rate=0.3)
        result = AnnotationCampaign(config).run(posts)
        joint_decided = sum(
            1
            for t in result.project.completed
            if t.resolution == "joint-decision"
        )
        assert joint_decided > 0.15 * len(posts)
        # expert-decided labels keep overall noise low despite escalations
        assert result.label_noise < 0.12


class TestProtocolEdges:
    def test_tiny_corpus_still_completes(self, posts):
        result = AnnotationCampaign(AnnotationConfig()).run(posts[:30])
        assert result.num_labelled == 30
        assert len(result.joint_post_ids) == 9

    def test_campaign_ignores_unlabelled_posts(self, posts):
        from dataclasses import replace

        mixed = posts[:50] + [replace(posts[50], oracle_label=None)]
        result = AnnotationCampaign(AnnotationConfig()).run(mixed)
        assert result.num_labelled == 50
