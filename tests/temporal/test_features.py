"""Tests for temporal behaviour statistics."""

from datetime import datetime, timedelta, timezone

import numpy as np
import pytest

from repro.corpus.models import RedditPost
from repro.temporal.features import (
    TemporalStats,
    gaps_hours,
    is_night,
    temporal_stats,
)


def make_post(when, pid="p"):
    return RedditPost(
        post_id=pid, author="a", subreddit="s", title="", body="b",
        created_utc=when,
    )


T0 = datetime(2020, 3, 2, 12, 0, tzinfo=timezone.utc)  # a Monday, noon


class TestIsNight:
    @pytest.mark.parametrize("hour,expected", [
        (23, True), (0, True), (3, True), (4, True),
        (5, False), (12, False), (22, False),
    ])
    def test_window(self, hour, expected):
        when = T0.replace(hour=hour)
        assert is_night(when) is expected


class TestGaps:
    def test_gap_values(self):
        times = [T0, T0 + timedelta(hours=5), T0 + timedelta(hours=6)]
        gaps = gaps_hours(times)
        assert np.allclose(gaps, [5.0, 1.0])

    def test_single_post_no_gaps(self):
        assert gaps_hours([T0]).size == 0


class TestTemporalStats:
    def _posts(self, hours):
        return [make_post(T0 + timedelta(hours=h), f"p{i}")
                for i, h in enumerate(hours)]

    def test_empty_history_all_zero(self):
        stats = temporal_stats([])
        assert stats.as_vector().sum() == 0.0

    def test_basic_statistics(self):
        stats = temporal_stats(self._posts([0, 24, 48]))
        assert stats.num_posts == 3
        assert stats.span_days == pytest.approx(2.0)
        assert stats.mean_gap_hours == pytest.approx(24.0)
        assert stats.std_gap_hours == pytest.approx(0.0)

    def test_gap_trend_sign(self):
        accelerating = temporal_stats(self._posts([0, 100, 150, 170, 175]))
        assert accelerating.gap_trend < 0
        decelerating = temporal_stats(self._posts([0, 5, 25, 75, 175]))
        assert decelerating.gap_trend > 0

    def test_night_ratio(self):
        night_posts = [
            make_post(T0.replace(hour=2) + timedelta(days=i), f"p{i}")
            for i in range(4)
        ]
        assert temporal_stats(night_posts).night_ratio == 1.0

    def test_weekend_ratio(self):
        saturday = datetime(2020, 3, 7, 12, 0, tzinfo=timezone.utc)
        posts = [make_post(saturday + timedelta(hours=i), f"p{i}") for i in range(3)]
        assert temporal_stats(posts).weekend_ratio == 1.0

    def test_hour_entropy_zero_when_constant(self):
        posts = self._posts([0, 24, 48])
        assert temporal_stats(posts).hour_entropy == pytest.approx(0.0)

    def test_burstiness_range(self):
        stats = temporal_stats(self._posts([0, 1, 2, 3, 100]))
        assert -1.0 <= stats.burstiness <= 1.0

    def test_recent_gap_ratio(self):
        stats = temporal_stats(self._posts([0, 10, 20, 21]))
        assert stats.recent_gap_ratio < 1.0

    def test_vector_finite(self):
        stats = temporal_stats(self._posts([0, 3, 9, 11, 40]))
        vec = stats.as_vector()
        assert vec.shape == (len(TemporalStats.feature_names()),)
        assert np.isfinite(vec).all()
