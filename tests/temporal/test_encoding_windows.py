"""Tests for temporal encodings and prediction windows."""

from datetime import datetime, timedelta, timezone

import numpy as np
import pytest

from repro.core.config import WindowConfig
from repro.core.errors import DatasetError
from repro.core.schema import RiskLevel
from repro.corpus.models import RedditPost, UserHistory
from repro.temporal.encoding import (
    TimeEncoder,
    cumulative_encoding,
    interval_encoding,
    periodic_encoding,
    time_tags,
)
from repro.temporal.windows import build_window, build_windows

T0 = datetime(2020, 3, 2, 12, 0, tzinfo=timezone.utc)


def make_post(when, pid="p", label=RiskLevel.IDEATION):
    return RedditPost(
        post_id=pid, author="a", subreddit="s", title="", body="b",
        created_utc=when, oracle_label=label,
    )


class TestPeriodicEncoding:
    def test_shape_and_range(self):
        vec = periodic_encoding(T0)
        assert vec.shape == (8,)
        assert (np.abs(vec) <= 1.0).all()

    def test_same_hour_same_encoding(self):
        a = periodic_encoding(T0)[:2]
        b = periodic_encoding(T0 + timedelta(days=7))[:2]
        assert np.allclose(a, b)

    def test_sin_cos_identity(self):
        vec = periodic_encoding(T0)
        for i in range(0, 8, 2):
            assert vec[i] ** 2 + vec[i + 1] ** 2 == pytest.approx(1.0)


class TestIntervalEncoding:
    def test_one_hot_plus_log(self):
        vec = interval_encoding(3.0)
        assert vec.shape == (8,)
        assert vec[:7].sum() == 1.0
        assert vec[-1] == pytest.approx(np.log1p(3.0))

    def test_bucket_monotone(self):
        assert np.argmax(interval_encoding(0.5)[:7]) < np.argmax(
            interval_encoding(1000)[:7]
        )

    def test_negative_gap_clamped(self):
        vec = interval_encoding(-5.0)
        assert vec[-1] == 0.0


class TestCumulativeEncoding:
    def test_first_and_last(self):
        first = cumulative_encoding(0, 5, 0.0)
        last = cumulative_encoding(4, 5, 100.0)
        assert first[0] == 0.0
        assert last[0] == 1.0

    def test_single_post(self):
        vec = cumulative_encoding(0, 1, 0.0)
        assert vec[0] == 1.0


class TestTimeTags:
    def test_night_weekend(self):
        night = T0.replace(hour=2)
        assert time_tags(night)[0] == 1.0
        saturday = datetime(2020, 3, 7, 12, tzinfo=timezone.utc)
        assert time_tags(saturday)[1] == 1.0

    def test_day_weekday(self):
        assert (time_tags(T0) == 0.0).all()


class TestTimeEncoder:
    def test_dim_consistency(self):
        encoder = TimeEncoder(include_tags=True)
        posts = [make_post(T0 + timedelta(hours=i), f"p{i}") for i in range(4)]
        matrix = encoder.encode_window(posts)
        assert matrix.shape == (4, encoder.dim)

    def test_without_tags(self):
        with_tags = TimeEncoder(include_tags=True)
        without = TimeEncoder(include_tags=False)
        assert with_tags.dim - without.dim == 2

    def test_empty_window(self):
        assert TimeEncoder().encode_window([]).shape[0] == 0

    def test_first_gap_is_zero(self):
        encoder = TimeEncoder()
        posts = [make_post(T0, "p0"), make_post(T0 + timedelta(hours=9), "p1")]
        matrix = encoder.encode_window(posts)
        # log-gap channel (index 15) is 0 for the first post
        assert matrix[0, 15] == 0.0
        assert matrix[1, 15] == pytest.approx(np.log1p(9.0))


class TestWindows:
    def _history(self, n=8, label=RiskLevel.BEHAVIOR):
        posts = [
            make_post(T0 + timedelta(days=i), f"p{i}",
                      RiskLevel.IDEATION if i < n - 1 else label)
            for i in range(n)
        ]
        return UserHistory("a", posts)

    def test_label_is_latest_posts(self):
        window = build_window(self._history(label=RiskLevel.ATTEMPT))
        assert window.label is RiskLevel.ATTEMPT

    def test_window_size_respected(self):
        window = build_window(self._history(8), WindowConfig(size=5))
        assert len(window) == 5
        assert window.latest.post_id == "p7"

    def test_label_override(self):
        window = build_window(self._history(), label=RiskLevel.INDICATOR)
        assert window.label is RiskLevel.INDICATOR

    def test_empty_history_rejected(self):
        with pytest.raises(DatasetError):
            build_window(UserHistory("a", []))

    def test_span_constraint(self):
        window = build_window(
            self._history(10), WindowConfig(size=10, max_span_days=2.5)
        )
        assert len(window) == 3

    def test_build_windows_with_label_map(self):
        history = self._history(3)
        labels = {"p2": RiskLevel.ATTEMPT}
        windows = build_windows({"a": history}, labels=labels)
        assert len(windows) == 1
        assert windows[0].label is RiskLevel.ATTEMPT

    def test_build_windows_skips_unlabelled_latest(self):
        history = self._history(3)
        windows = build_windows({"a": history}, labels={"p0": RiskLevel.IDEATION})
        assert windows == []

    def test_windows_sorted_by_author(self):
        histories = {
            "zed": self._history(2),
            "abe": self._history(2),
        }
        # fix author fields
        for name, history in histories.items():
            history.author = name
        windows = build_windows(histories)
        assert [w.author for w in windows] == ["abe", "zed"]
