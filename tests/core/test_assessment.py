"""Tests for the high-level RiskAssessor API."""

import numpy as np
import pytest

from repro.boosting import GBMParams
from repro.core.assessment import RiskAssessor, RiskTimepoint
from repro.core.errors import ModelError
from repro.core.schema import RiskLevel
from repro.corpus.models import UserHistory


@pytest.fixture(scope="module")
def assessor(small_dataset):
    return RiskAssessor(
        "xgboost",
        params=GBMParams(n_estimators=8, max_depth=3),
        max_tfidf_features=80,
    ).fit(small_dataset)


class TestFit:
    def test_validation_report_present(self, assessor):
        report = assessor.validation_report
        assert report is not None
        assert 0.0 <= report.accuracy <= 1.0

    def test_model_name_kept(self, assessor):
        assert assessor.model_name == "xgboost"


class TestAssess:
    def test_returns_risk_level(self, assessor, small_dataset):
        history = next(iter(small_dataset.histories().values()))
        assert isinstance(assessor.assess(history), RiskLevel)

    def test_empty_history_rejected(self, assessor):
        with pytest.raises(ModelError):
            assessor.assess(UserHistory("nobody", []))

    def test_trajectory_monotone_time(self, assessor, small_dataset):
        histories = small_dataset.histories()
        author = small_dataset.most_active_users(1)[0]
        trajectory = assessor.risk_trajectory(histories[author])
        assert len(trajectory) == len(histories[author].posts)
        times = [t.when for t in trajectory]
        assert times == sorted(times)
        assert all(isinstance(t, RiskTimepoint) for t in trajectory)

    def test_trajectory_final_matches_assess(self, assessor, small_dataset):
        histories = small_dataset.histories()
        author = small_dataset.most_active_users(3)[2]
        history = histories[author]
        trajectory = assessor.risk_trajectory(history)
        assert trajectory[-1].level == assessor.assess(history)

    def test_alert_threshold(self, assessor, small_dataset):
        history = next(iter(small_dataset.histories().values()))
        level = assessor.assess(history)
        assert assessor.alert(history) == (level >= RiskLevel.BEHAVIOR)
        assert assessor.alert(history, threshold=RiskLevel.INDICATOR)
