"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_build_defaults(self):
        args = build_parser().parse_args(["build"])
        assert args.scale == 0.1
        assert args.output == "rsd15k.jsonl"

    def test_evaluate_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--model", "nope"])

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "table1"])
        assert args.experiment == "table1"
        assert args.profile is False
        assert args.profile_output == "BENCH_PR1.json"

    def test_bench_profile_flags(self):
        args = build_parser().parse_args(
            ["bench", "table1", "--profile", "--profile-output", "out.json"]
        )
        assert args.profile is True
        assert args.profile_output == "out.json"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_build_stats_datacard(self, tmp_path, capsys):
        out = tmp_path / "ds.jsonl"
        code = main(["build", "--scale", "0.02", "--output", str(out)])
        assert code == 0
        assert out.exists()
        code = main(["stats", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "posts:" in printed
        assert "Ideation" in printed
        card_path = tmp_path / "DATASHEET.md"
        code = main(["datacard", str(out), "--output", str(card_path)])
        assert code == 0
        assert "Dataset card" in card_path.read_text()

    def test_datacard_to_stdout(self, tmp_path, capsys):
        out = tmp_path / "ds.jsonl"
        main(["build", "--scale", "0.02", "--output", str(out)])
        capsys.readouterr()
        assert main(["datacard", str(out)]) == 0
        assert "## Composition" in capsys.readouterr().out

    def test_bench_profile_writes_report(self, tmp_path, capsys, monkeypatch):
        import json

        from repro import perf
        from repro.experiments import table1_distribution

        def fake_main():
            with perf.span("fake-experiment"):
                pass

        monkeypatch.setattr(table1_distribution, "main", fake_main)
        out = tmp_path / "bench.json"
        code = main(
            ["bench", "table1", "--profile", "--profile-output", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "perf profile" in printed
        assert "fake-experiment" in printed
        payload = json.loads(out.read_text())
        assert "fake-experiment" in payload["perf_report"]
        assert payload["experiment"] == "table1"

    def test_perf_env_prints_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PERF", "1")
        out = tmp_path / "ds.jsonl"
        assert main(["build", "--scale", "0.02", "--output", str(out)]) == 0
        assert "perf profile" in capsys.readouterr().out
