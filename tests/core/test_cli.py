"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_build_defaults(self):
        args = build_parser().parse_args(["build"])
        assert args.scale == 0.1
        assert args.output == "rsd15k.jsonl"

    def test_evaluate_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--model", "nope"])

    def test_bench_choices(self):
        args = build_parser().parse_args(["bench", "table1"])
        assert args.experiment == "table1"
        assert args.profile is False
        assert args.profile_output == "BENCH_PR1.json"

    def test_bench_profile_flags(self):
        args = build_parser().parse_args(
            ["bench", "table1", "--profile", "--profile-output", "out.json"]
        )
        assert args.profile is True
        assert args.profile_output == "out.json"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.format == "prometheus"
        assert args.scale == 0.05
        assert args.requests == 96
        assert args.input is None

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.format == "table"
        assert args.limit == 10
        assert args.slow_log is None


class TestCommands:
    def test_build_stats_datacard(self, tmp_path, capsys):
        out = tmp_path / "ds.jsonl"
        code = main(["build", "--scale", "0.02", "--output", str(out)])
        assert code == 0
        assert out.exists()
        code = main(["stats", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "posts:" in printed
        assert "Ideation" in printed
        card_path = tmp_path / "DATASHEET.md"
        code = main(["datacard", str(out), "--output", str(card_path)])
        assert code == 0
        assert "Dataset card" in card_path.read_text()

    def test_datacard_to_stdout(self, tmp_path, capsys):
        out = tmp_path / "ds.jsonl"
        main(["build", "--scale", "0.02", "--output", str(out)])
        capsys.readouterr()
        assert main(["datacard", str(out)]) == 0
        assert "## Composition" in capsys.readouterr().out

    def test_bench_profile_writes_report(self, tmp_path, capsys, monkeypatch):
        import json

        from repro import perf
        from repro.experiments import table1_distribution

        def fake_main():
            with perf.span("fake-experiment"):
                pass

        monkeypatch.setattr(table1_distribution, "main", fake_main)
        out = tmp_path / "bench.json"
        code = main(
            ["bench", "table1", "--profile", "--profile-output", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "perf profile" in printed
        assert "fake-experiment" in printed
        payload = json.loads(out.read_text())
        assert "fake-experiment" in payload["perf_report"]
        assert payload["experiment"] == "table1"

    def test_perf_env_prints_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PERF", "1")
        out = tmp_path / "ds.jsonl"
        assert main(["build", "--scale", "0.02", "--output", str(out)]) == 0
        assert "perf profile" in capsys.readouterr().out

    def test_perf_report_printed_on_error_path(self, capsys, monkeypatch):
        """A failing command must still print the REPRO_PERF report —
        failed runs are exactly the ones that need debugging."""
        from repro import perf
        from repro.experiments import table1_distribution

        monkeypatch.setenv("REPRO_PERF", "1")

        def exploding_main():
            with perf.span("doomed-experiment"):
                pass
            raise RuntimeError("mid-command failure")

        monkeypatch.setattr(table1_distribution, "main", exploding_main)
        with pytest.raises(RuntimeError, match="mid-command failure"):
            main(["bench", "table1"])
        printed = capsys.readouterr().out
        assert "perf profile" in printed
        assert "doomed-experiment" in printed


class TestTelemetryCommands:
    def test_metrics_prometheus_covers_serve_metrics(self, tmp_path, capsys):
        from repro.perf import validate_prometheus

        out = tmp_path / "metrics.prom"
        code = main([
            "metrics", "--scale", "0.02", "--requests", "16",
            "--batch-size", "8", "--output", str(out),
        ])
        assert code == 0
        text = out.read_text()
        families = validate_prometheus(text)
        # serve counters, gauges and histograms all exported
        assert "repro_serve_requests_total" in families
        assert "repro_serve_queue_depth" in families
        assert "repro_serve_batch_seconds" in families
        assert "repro_serve_request_latency_seconds" in families

    def test_metrics_json_then_input_rerender(self, tmp_path, capsys):
        from repro.perf import validate_prometheus

        snap_path = tmp_path / "snapshot.json"
        code = main([
            "metrics", "--scale", "0.02", "--requests", "16",
            "--format", "json", "--output", str(snap_path),
        ])
        assert code == 0
        import json

        snap = json.loads(snap_path.read_text())
        assert "perf" in snap
        assert snap["traces"]["stats"]["finished"] == 16
        capsys.readouterr()
        # Re-render the saved snapshot to Prometheus without a rebuild.
        assert main(["metrics", "--input", str(snap_path)]) == 0
        text = capsys.readouterr().out
        assert "repro_serve_requests_total" in text
        validate_prometheus(text)

    def test_trace_table_output(self, capsys):
        code = main([
            "trace", "--scale", "0.02", "--requests", "8",
            "--batch-size", "4", "--limit", "3",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "req-" in printed
        assert "enqueue@" in printed
        assert "complete@" in printed
