"""Tests for anonymisation and PII scrubbing."""

from datetime import datetime, timezone

import pytest

from repro.core.errors import PrivacyError
from repro.core.privacy import (
    Anonymizer,
    audit_anonymisation,
    scrub_text,
)
from repro.corpus.models import RedditPost


def make_post(pid, author, body):
    return RedditPost(
        post_id=pid, author=author, subreddit="s", title="t", body=body,
        created_utc=datetime(2020, 1, 1, tzinfo=timezone.utc),
    )


class TestScrubText:
    def test_emails_removed(self):
        assert "someone@example.com" not in scrub_text(
            "contact me at someone@example.com please"
        )

    def test_phone_numbers_removed(self):
        assert "555" not in scrub_text("call 555-123-4567 anytime")

    def test_reddit_mentions_removed(self):
        out = scrub_text("thanks u/throwaway123 and @friendperson")
        assert "throwaway123" not in out
        assert "friendperson" not in out

    def test_ssn_shapes_removed(self):
        assert "123-45-6789" not in scrub_text("ssn 123-45-6789 leaked")

    def test_ordinary_text_untouched(self):
        text = "I feel hopeless tonight and cannot sleep"
        assert scrub_text(text) == text


class TestAnonymizer:
    def test_stable_pseudonyms(self):
        anon = Anonymizer("salt")
        assert anon.pseudonym("alice", "anon") == anon.pseudonym("alice", "anon")

    def test_salt_changes_pseudonyms(self):
        assert Anonymizer("a").pseudonym("alice", "anon") != Anonymizer(
            "b"
        ).pseudonym("alice", "anon")

    def test_empty_salt_rejected(self):
        with pytest.raises(PrivacyError):
            Anonymizer("")

    def test_anonymise_post_replaces_identifiers(self):
        post = make_post("p1", "alice", "text with someone@example.com")
        out = Anonymizer("s").anonymise_post(post)
        assert out.author != "alice"
        assert out.post_id != "p1"
        assert "@example.com" not in out.body

    def test_histories_stay_linkable(self):
        posts = [make_post(f"p{i}", "alice", "b") for i in range(3)]
        out = Anonymizer("s").anonymise(posts)
        assert len({p.author for p in out}) == 1


class TestAudit:
    def test_passes_on_clean_anonymisation(self):
        posts = [
            make_post("p1", "alice", "body one"),
            make_post("p2", "alice", "body two"),
            make_post("p3", "bob", "body three"),
        ]
        anonymised = Anonymizer("s").anonymise(posts)
        audit_anonymisation(posts, anonymised)  # no raise

    def test_detects_surviving_author(self):
        posts = [make_post("p1", "alice", "b")]
        with pytest.raises(PrivacyError):
            audit_anonymisation(posts, posts)

    def test_detects_author_leak_in_text(self):
        posts = [make_post("p1", "alice_username", "b")]
        leaked = [
            make_post("q1", "anon_x", "I am alice_username actually")
        ]
        with pytest.raises(PrivacyError):
            audit_anonymisation(posts, leaked)

    def test_detects_broken_linkability(self):
        posts = [make_post("p1", "alice", "b"), make_post("p2", "alice", "b2")]
        broken = [make_post("q1", "anon_1", "b"), make_post("q2", "anon_2", "b2")]
        with pytest.raises(PrivacyError):
            audit_anonymisation(posts, broken)

    def test_detects_count_mismatch(self):
        posts = [make_post("p1", "alice", "b")]
        with pytest.raises(PrivacyError):
            audit_anonymisation(posts, [])
