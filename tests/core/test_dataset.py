"""Tests for the RSD15K dataset object."""

import pytest

from repro.core.config import SplitConfig, WindowConfig
from repro.core.dataset import RSD15K
from repro.core.errors import DatasetError
from repro.core.schema import RiskLevel


class TestStatistics:
    def test_counts(self, small_dataset):
        assert small_dataset.num_posts == len(small_dataset.posts)
        assert small_dataset.num_users == len(
            {p.author for p in small_dataset.posts}
        )

    def test_label_distribution_total(self, small_dataset):
        assert small_dataset.label_distribution().total == (
            small_dataset.num_posts
        )

    def test_posts_per_user_sums(self, small_dataset):
        counts = small_dataset.posts_per_user()
        assert sum(counts.values()) == small_dataset.num_posts

    def test_most_active_sorted(self, small_dataset):
        top = small_dataset.most_active_users(5)
        counts = small_dataset.posts_per_user()
        volumes = [counts[a] for a in top]
        assert volumes == sorted(volumes, reverse=True)

    def test_histories_chronological(self, small_dataset):
        for history in small_dataset.histories().values():
            times = [p.created_utc for p in history.posts]
            assert times == sorted(times)

    def test_missing_label_rejected(self, small_dataset):
        with pytest.raises(DatasetError):
            RSD15K(posts=small_dataset.posts, labels={})


class TestWindows:
    def test_window_size_bounded(self, small_dataset):
        windows = small_dataset.windows(WindowConfig(size=5))
        assert all(1 <= len(w) <= 5 for w in windows)

    def test_window_labels_match_latest(self, small_dataset):
        windows = small_dataset.windows()
        for window in windows[:40]:
            assert window.label == small_dataset.labels[window.latest.post_id]

    def test_one_window_per_user(self, small_dataset):
        windows = small_dataset.windows()
        assert len({w.author for w in windows}) == len(windows)


class TestSplits:
    def test_user_disjoint(self, small_dataset):
        splits = small_dataset.splits()
        splits.verify_disjoint()

    def test_split_sizes_cover_users(self, small_dataset):
        splits = small_dataset.splits()
        assert sum(splits.sizes) == len(small_dataset.windows())

    def test_custom_split_config(self, small_dataset):
        splits = small_dataset.splits(
            split_config=SplitConfig(train=0.5, validation=0.25, test=0.25)
        )
        train, val, test = splits.sizes
        assert train < 0.62 * sum(splits.sizes)


class TestPersistence:
    def test_jsonl_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "rsd.jsonl"
        small_dataset.to_jsonl(path)
        loaded = RSD15K.from_jsonl(path, kappa=small_dataset.kappa)
        assert loaded.num_posts == small_dataset.num_posts
        assert loaded.num_users == small_dataset.num_users
        assert loaded.label_distribution().counts == (
            small_dataset.label_distribution().counts
        )

    def test_roundtrip_preserves_labels(self, small_dataset, tmp_path):
        path = tmp_path / "rsd.jsonl"
        small_dataset.to_jsonl(path)
        loaded = RSD15K.from_jsonl(path)
        for post in loaded.posts[:20]:
            assert loaded.labels[post.post_id] == (
                small_dataset.labels[post.post_id]
            )

    def test_roundtrip_preserves_timestamps(self, small_dataset, tmp_path):
        path = tmp_path / "rsd.jsonl"
        small_dataset.to_jsonl(path)
        loaded = RSD15K.from_jsonl(path)
        original = {p.post_id: p.created_utc for p in small_dataset.posts}
        for post in loaded.posts[:20]:
            assert post.created_utc == original[post.post_id]

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(DatasetError):
            RSD15K.from_jsonl(path)

    def test_labels_use_short_codes(self, small_dataset, tmp_path):
        import json

        path = tmp_path / "rsd.jsonl"
        small_dataset.to_jsonl(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["label"] in {"IN", "ID", "BR", "AT"}
