"""Tests for the RSD-15K label schema."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import (
    ALL_LEVELS,
    ANNOTATION_GUIDELINE,
    NUM_CLASSES,
    TABLE1_DISTRIBUTION,
    LabelDistribution,
    RiskLevel,
    guideline_for,
)


class TestRiskLevel:
    def test_ordering_by_severity(self):
        assert (
            RiskLevel.INDICATOR
            < RiskLevel.IDEATION
            < RiskLevel.BEHAVIOR
            < RiskLevel.ATTEMPT
        )

    def test_four_classes(self):
        assert NUM_CLASSES == 4
        assert len(ALL_LEVELS) == 4

    def test_short_codes_match_paper(self):
        assert RiskLevel.INDICATOR.short == "IN"
        assert RiskLevel.IDEATION.short == "ID"
        assert RiskLevel.BEHAVIOR.short == "BR"
        assert RiskLevel.ATTEMPT.short == "AT"

    def test_label_capitalisation(self):
        assert RiskLevel.ATTEMPT.label == "Attempt"

    def test_from_any_int(self):
        assert RiskLevel.from_any(2) is RiskLevel.BEHAVIOR

    def test_from_any_name(self):
        assert RiskLevel.from_any("ideation") is RiskLevel.IDEATION
        assert RiskLevel.from_any("  ATTEMPT ") is RiskLevel.ATTEMPT

    def test_from_any_short_code(self):
        assert RiskLevel.from_any("br") is RiskLevel.BEHAVIOR
        assert RiskLevel.from_any("IN") is RiskLevel.INDICATOR

    def test_from_any_identity(self):
        assert RiskLevel.from_any(RiskLevel.IDEATION) is RiskLevel.IDEATION

    @pytest.mark.parametrize("bad", [7, -1, "unknown", 2.5, None, True])
    def test_from_any_rejects_garbage(self, bad):
        with pytest.raises(SchemaError):
            RiskLevel.from_any(bad)


class TestGuideline:
    def test_every_level_has_a_criterion(self):
        covered = {criterion.level for criterion in ANNOTATION_GUIDELINE}
        assert covered == set(ALL_LEVELS)

    def test_guideline_for_accepts_any_representation(self):
        assert guideline_for("AT").level is RiskLevel.ATTEMPT
        assert guideline_for(0).level is RiskLevel.INDICATOR

    def test_indicator_covers_third_party(self):
        criterion = guideline_for(RiskLevel.INDICATOR)
        assert any("third" in inc for inc in criterion.includes)


class TestTable1Distribution:
    def test_sums_to_one(self):
        assert abs(sum(TABLE1_DISTRIBUTION.values()) - 1.0) < 1e-9

    def test_ideation_is_largest(self):
        assert max(TABLE1_DISTRIBUTION, key=TABLE1_DISTRIBUTION.get) is (
            RiskLevel.IDEATION
        )

    def test_attempt_is_smallest(self):
        assert min(TABLE1_DISTRIBUTION, key=TABLE1_DISTRIBUTION.get) is (
            RiskLevel.ATTEMPT
        )


class TestLabelDistribution:
    def test_from_labels_counts(self):
        dist = LabelDistribution.from_labels(["IN", "ID", "ID", 3])
        assert dist.counts[RiskLevel.IDEATION] == 2
        assert dist.counts[RiskLevel.ATTEMPT] == 1
        assert dist.total == 4

    def test_fraction(self):
        dist = LabelDistribution.from_labels(["IN", "IN", "AT", "ID"])
        assert dist.fraction("IN") == pytest.approx(0.5)

    def test_empty_distribution(self):
        dist = LabelDistribution.from_labels([])
        assert dist.total == 0
        assert dist.fraction("IN") == 0.0

    def test_as_rows_order_matches_paper(self):
        dist = LabelDistribution.from_labels(["IN", "ID", "BR", "AT"])
        names = [row[0] for row in dist.as_rows()]
        assert names == ["Attempt", "Behavior", "Ideation", "Indicator"]

    def test_as_rows_percentages(self):
        dist = LabelDistribution.from_labels(["IN", "IN", "ID", "ID"])
        rows = {name: pct for name, _, pct in dist.as_rows()}
        assert rows["Indicator"] == pytest.approx(50.0)
        assert rows["Attempt"] == pytest.approx(0.0)
