"""Tests for configuration validation."""

import dataclasses

import pytest

from repro.core.config import (
    AnnotationConfig,
    CorpusConfig,
    SplitConfig,
    WindowConfig,
)
from repro.core.errors import ConfigError
from repro.core.schema import PAPER_NUM_POSTS, PAPER_NUM_USERS


class TestCorpusConfig:
    def test_defaults_match_paper(self):
        cfg = CorpusConfig()
        assert cfg.num_users == PAPER_NUM_USERS
        assert cfg.target_posts == PAPER_NUM_POSTS
        assert cfg.start.year == 2020
        assert cfg.end.year == 2021

    def test_label_mix_sums_to_one(self):
        assert abs(sum(CorpusConfig().label_mix.values()) - 1.0) < 1e-9

    def test_scaled_shrinks_populations(self):
        cfg = CorpusConfig().scaled(0.1)
        assert cfg.num_users == round(PAPER_NUM_USERS * 0.1)
        assert cfg.target_posts == round(PAPER_NUM_POSTS * 0.1)
        assert cfg.scale == 0.1

    def test_scaled_has_floors(self):
        cfg = CorpusConfig().scaled(0.001)
        assert cfg.num_users >= 12
        assert cfg.target_posts >= 60

    @pytest.mark.parametrize("scale", [0.0, -1.0, 1.5])
    def test_invalid_scale_rejected(self, scale):
        with pytest.raises(ConfigError):
            CorpusConfig().scaled(scale)

    def test_invalid_dates_rejected(self):
        cfg = CorpusConfig()
        with pytest.raises(ConfigError):
            dataclasses.replace(cfg, start=cfg.end, end=cfg.start)

    def test_bad_label_mix_rejected(self):
        cfg = CorpusConfig()
        mix = dict(cfg.label_mix)
        first = next(iter(mix))
        mix[first] += 0.2
        with pytest.raises(ConfigError):
            dataclasses.replace(cfg, label_mix=mix)

    @pytest.mark.parametrize(
        "field", ["lexical_strength", "hard_fraction", "ambiguity_noise",
                  "temporal_strength"]
    )
    def test_unit_interval_fields_validated(self, field):
        with pytest.raises(ConfigError):
            dataclasses.replace(CorpusConfig(), **{field: 1.5})


class TestSplitConfig:
    def test_default_is_80_10_10(self):
        cfg = SplitConfig()
        assert (cfg.train, cfg.validation, cfg.test) == (0.8, 0.1, 0.1)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            SplitConfig(train=0.8, validation=0.1, test=0.2)

    def test_fractions_must_be_positive(self):
        with pytest.raises(ConfigError):
            SplitConfig(train=1.0, validation=0.0, test=0.0)


class TestWindowConfig:
    def test_stable_version_has_five_elements(self):
        assert WindowConfig().size == 5

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigError):
            WindowConfig(size=0)

    def test_span_must_be_positive(self):
        with pytest.raises(ConfigError):
            WindowConfig(max_span_days=-1)


class TestAnnotationConfig:
    def test_defaults_match_protocol(self):
        cfg = AnnotationConfig()
        assert cfg.num_annotators == 3
        assert cfg.num_supervisors == 3
        assert cfg.training_samples == 100
        assert cfg.training_accuracy_gate == 0.95
        assert cfg.daily_quota == 500
        assert cfg.joint_fraction == 0.30
        assert cfg.inspection_fraction == 0.10
        assert cfg.inspection_accuracy_gate == 0.85

    def test_voting_needs_three_annotators(self):
        with pytest.raises(ConfigError):
            AnnotationConfig(num_annotators=2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"joint_fraction": 0.0},
            {"joint_fraction": 1.0},
            {"annotator_accuracy": 0.0},
            {"uncertainty_rate": 1.0},
            {"training_accuracy_gate": 0.0},
            {"inspection_accuracy_gate": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AnnotationConfig(**kwargs)
