"""Tests for the hierarchical perf span/counter registry."""

import json
import threading

import pytest

from repro import perf
from repro.perf import PerfRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRegistry:
    def test_span_records_time_and_calls(self):
        clock = FakeClock()
        reg = PerfRegistry(clock=clock)
        with reg.span("build"):
            clock.now += 2.0
        with reg.span("build"):
            clock.now += 1.0
        stat = reg.stats()["build"]
        assert stat.total_s == pytest.approx(3.0)
        assert stat.calls == 2

    def test_nested_spans_use_slash_paths(self):
        clock = FakeClock()
        reg = PerfRegistry(clock=clock)
        with reg.span("build"):
            with reg.span("corpus"):
                clock.now += 1.0
            with reg.span("preprocess"):
                clock.now += 0.5
        paths = set(reg.stats())
        assert paths == {"build", "build/corpus", "build/preprocess"}
        assert reg.stats()["build"].total_s == pytest.approx(1.5)

    def test_stack_unwinds_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("outer"):
                raise RuntimeError("boom")
        with reg.span("other"):
            pass
        assert "other" in reg.stats()  # not "outer/other"

    def test_counters_nest_under_active_span(self):
        reg = PerfRegistry()
        with reg.span("dedup"):
            reg.count("pairs", 3)
            reg.count("pairs", 2)
        assert reg.stats()["dedup/pairs"].count == 5

    def test_reset_clears_everything(self):
        reg = PerfRegistry()
        with reg.span("a"):
            reg.count("b")
        reg.reset()
        assert reg.stats() == {}

    def test_report_and_render(self):
        clock = FakeClock()
        reg = PerfRegistry(clock=clock)
        with reg.span("fit"):
            clock.now += 1.25
            reg.count("rounds", 4)
        report = reg.report()
        assert report["fit"]["total_s"] == pytest.approx(1.25)
        assert report["fit"]["calls"] == 1
        assert report["fit/rounds"]["count"] == 4
        rendered = reg.render()
        assert "fit" in rendered
        assert "count=4" in rendered

    def test_render_empty(self):
        assert "no spans" in PerfRegistry().render()


class TestThreadSafety:
    """N threads hammering nested spans/counters: exact aggregates, no
    cross-thread path corruption (each thread nests on its own stack)."""

    def test_concurrent_spans_and_counters_exact(self):
        reg = PerfRegistry()
        threads_n, iters = 8, 200
        start = threading.Barrier(threads_n)

        def worker():
            start.wait()
            for _ in range(iters):
                with reg.span("outer"):
                    with reg.span("inner"):
                        reg.count("ticks", 2)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = reg.stats()
        # Exactly the three expected paths — no orphaned/interleaved ones
        # like "outer/outer/inner" from another thread's stack.
        assert set(stats) == {"outer", "outer/inner", "outer/inner/ticks"}
        assert stats["outer"].calls == threads_n * iters
        assert stats["outer/inner"].calls == threads_n * iters
        assert stats["outer/inner/ticks"].count == 2 * threads_n * iters

    def test_thread_stacks_are_independent(self):
        reg = PerfRegistry()
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with reg.span("held"):
                entered.set()
                release.wait(timeout=10.0)

        t = threading.Thread(target=holder)
        t.start()
        entered.wait(timeout=10.0)
        # While the other thread has an open span, this thread's spans
        # must not nest under it.
        with reg.span("main"):
            pass
        release.set()
        t.join()
        paths = set(reg.stats())
        assert "main" in paths
        assert "held/main" not in paths


class TestWriteJson:
    def test_writes_report(self, tmp_path):
        reg = PerfRegistry(clock=FakeClock())
        with reg.span("x"):
            pass
        out = reg.write_json(tmp_path / "bench.json", extra={"scale": 0.05})
        payload = json.loads(out.read_text())
        assert "x" in payload["perf_report"]
        assert payload["scale"] == 0.05

    def test_extra_cannot_clobber_perf_report(self, tmp_path):
        reg = PerfRegistry(clock=FakeClock())
        with reg.span("x"):
            pass
        with pytest.raises(ValueError, match="perf_report"):
            reg.write_json(tmp_path / "bench.json", extra={"perf_report": {}})

    def test_merges_into_existing_file(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"benchmarks": {"warm": 1.0}}))
        reg = PerfRegistry(clock=FakeClock())
        with reg.span("y"):
            pass
        reg.write_json(path)
        payload = json.loads(path.read_text())
        assert payload["benchmarks"] == {"warm": 1.0}
        assert "y" in payload["perf_report"]


class TestModuleLevelApi:
    def test_default_registry_roundtrip(self):
        perf.reset()
        with perf.span("test-span"):
            perf.count("ticks")
        try:
            assert perf.report()["test-span"]["calls"] == 1
            assert perf.report()["test-span/ticks"]["count"] == 1
        finally:
            perf.reset()

    def test_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv(perf.PERF_ENV, raising=False)
        assert not perf.enabled()
        monkeypatch.setenv(perf.PERF_ENV, "0")
        assert not perf.enabled()
        monkeypatch.setenv(perf.PERF_ENV, "1")
        assert perf.enabled()
