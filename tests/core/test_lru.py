"""Bounded LRU cache shared by the serve engine and the BPE tokenizer."""

import threading

import pytest

from repro.core.lru import LRUCache


def test_maxsize_validated():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_get_put_roundtrip():
    cache = LRUCache(4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", 42) == 42


def test_eviction_drops_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a; b is now the LRU entry
    cache.put("c", 3)
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert len(cache) == 2


def test_put_overwrites_without_growth():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("a", 2)
    assert cache.get("a") == 2
    assert len(cache) == 1


def test_stats_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("nope")
    cache.put("b", 2)
    cache.put("c", 3)  # evicts a
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["evictions"] == 1
    assert stats["size"] == 2
    assert stats["maxsize"] == 2


def test_clear():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") is None


def test_thread_safety_under_contention():
    cache = LRUCache(64)
    errors = []

    def worker(base):
        try:
            for i in range(500):
                cache.put((base, i % 100), i)
                cache.get((base, (i + 1) % 100))
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) <= 64
