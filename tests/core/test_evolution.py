"""Tests for risk-evolution analytics."""

import numpy as np
import pytest

from repro.core.evolution import (
    analyse,
    empirical_transition_matrix,
    transition_counts,
    user_evolution,
)
from repro.core.schema import RiskLevel


class TestUserEvolution:
    def test_levels_match_history_length(self, small_dataset):
        author = small_dataset.most_active_users(1)[0]
        evolution = user_evolution(small_dataset, author)
        history = small_dataset.histories()[author]
        assert len(evolution.levels) == len(history.posts)

    def test_peak_and_final_consistent(self, small_dataset):
        for author in small_dataset.most_active_users(5):
            evolution = user_evolution(small_dataset, author)
            assert evolution.peak == max(evolution.levels)
            assert evolution.final == evolution.levels[-1]
            assert evolution.peak >= evolution.final or True

    def test_escalations_are_upward(self, small_dataset):
        for author in small_dataset.most_active_users(10):
            evolution = user_evolution(small_dataset, author)
            for event in evolution.escalations:
                assert event.to_level > event.from_level
                assert event.severity_jump >= 1
                assert event.gap_hours > 0

    def test_monotonic_decline_flag(self, small_dataset):
        for author in small_dataset.most_active_users(5):
            evolution = user_evolution(small_dataset, author)
            assert evolution.monotonic_decline == (
                not evolution.ever_escalated
            )


class TestTransitions:
    def test_counts_total(self, small_dataset):
        counts = transition_counts(small_dataset)
        expected = sum(
            len(h.posts) - 1
            for h in small_dataset.histories().values()
        )
        assert counts.sum() == expected

    def test_matrix_rows_stochastic_or_zero(self, small_dataset):
        probs = empirical_transition_matrix(small_dataset)
        sums = probs.sum(axis=1)
        for row_sum in sums:
            assert row_sum == pytest.approx(1.0, abs=1e-9) or row_sum == 0.0

    def test_persistence_dominates(self, small_dataset):
        """The latent chain is lazy, so observed self-transitions dominate."""
        probs = empirical_transition_matrix(small_dataset)
        diagonal = np.diag(probs)
        assert (diagonal[:2] > 0.3).all()  # IN/ID well-populated rows


class TestAnalyse:
    def test_report_fields(self, small_dataset):
        report = analyse(small_dataset)
        assert report.num_users == small_dataset.num_users
        assert 0.0 <= report.escalation_prevalence <= 1.0
        assert report.transition_matrix.shape == (4, 4)
        if report.users_with_escalation:
            assert report.median_escalation_gap_hours > 0
