"""Tests for the content-addressed build cache."""

import dataclasses

import pytest

from repro.core.cache import (
    CACHE_ENV,
    SCHEMA_VERSION,
    BuildCache,
    build_dataset_cached,
    fingerprint,
)
from repro.core.config import AnnotationConfig, CorpusConfig

SCALE = 0.05
NEAR_DEDUP = False


@pytest.fixture(scope="module")
def small_config():
    return CorpusConfig().scaled(SCALE)


@pytest.fixture(scope="module")
def annotation_config(small_config):
    return AnnotationConfig(seed=small_config.seed)


class TestFingerprint:
    def test_deterministic(self, small_config, annotation_config):
        a = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        b = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        assert a == b
        assert len(a) == 64

    def test_config_changes_key(self, small_config, annotation_config):
        base = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        reseeded = dataclasses.replace(small_config, seed=123)
        assert fingerprint(reseeded, annotation_config, True, NEAR_DEDUP) != base
        rescaled = CorpusConfig().scaled(0.06)
        assert fingerprint(rescaled, annotation_config, True, NEAR_DEDUP) != base

    def test_flags_change_key(self, small_config, annotation_config):
        base = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        assert fingerprint(small_config, annotation_config, False, NEAR_DEDUP) != base
        assert (
            fingerprint(small_config, annotation_config, True, not NEAR_DEDUP)
            != base
        )

    def test_schema_version_in_payload(
        self, small_config, annotation_config, monkeypatch
    ):
        base = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        monkeypatch.setattr(
            "repro.core.cache.SCHEMA_VERSION", SCHEMA_VERSION + 1
        )
        assert fingerprint(small_config, annotation_config, True, NEAR_DEDUP) != base


class TestRoundTrip:
    def test_store_load_rebuilds_equivalent_result(
        self, tmp_path, small_config, annotation_config
    ):
        cache = BuildCache(root=tmp_path / "cache")
        key = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        assert cache.load(key) is None
        built = build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        assert cache.has(key)
        warm = cache.load(key)
        assert warm is not None
        assert warm.dataset.num_posts == built.dataset.num_posts
        assert warm.dataset.num_users == built.dataset.num_users
        assert warm.dataset.kappa == pytest.approx(built.dataset.kappa)
        assert warm.dataset.labels == built.dataset.labels
        assert warm.dataset.pretrain_texts == built.dataset.pretrain_texts
        # oracle labels survive the JSONL round-trip via the sidecar
        for a, b in zip(warm.dataset.posts, built.dataset.posts):
            assert a.post_id == b.post_id
            assert a.oracle_label == b.oracle_label
            assert a.created_utc == b.created_utc
        assert warm.campaign.kappa == pytest.approx(built.campaign.kappa)
        assert warm.report.as_dict() == built.report.as_dict()

    def test_warm_read_through_hits_cache(
        self, tmp_path, small_config, annotation_config
    ):
        cache = BuildCache(root=tmp_path / "cache")
        cold = build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        warm = build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        assert warm.dataset.labels == cold.dataset.labels
        y_cold = [int(cold.dataset.labels[p.post_id]) for p in cold.dataset.posts]
        y_warm = [int(warm.dataset.labels[p.post_id]) for p in warm.dataset.posts]
        assert y_cold == y_warm

    def test_warm_splits_identical(
        self, tmp_path, small_config, annotation_config
    ):
        cache = BuildCache(root=tmp_path / "cache")
        cold = build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        warm = build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        s_cold = cold.dataset.splits()
        s_warm = warm.dataset.splits()
        for name in ("train", "validation", "test"):
            a = [w.author for w in getattr(s_cold, name)]
            b = [w.author for w in getattr(s_warm, name)]
            assert a == b


class TestInvalidation:
    def test_corrupt_entry_is_a_miss(
        self, tmp_path, small_config, annotation_config
    ):
        cache = BuildCache(root=tmp_path / "cache")
        build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        key = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        (cache.entry_dir(key) / "stages.pkl").write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_schema_bump_invalidates(
        self, tmp_path, small_config, annotation_config, monkeypatch
    ):
        cache = BuildCache(root=tmp_path / "cache")
        build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        key = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        assert cache.load(key) is not None
        monkeypatch.setattr(
            "repro.core.cache.SCHEMA_VERSION", SCHEMA_VERSION + 1
        )
        assert cache.load(key) is None

    def test_evict(self, tmp_path, small_config, annotation_config):
        cache = BuildCache(root=tmp_path / "cache")
        build_dataset_cached(
            small_config, annotation_config,
            near_dedup=NEAR_DEDUP, cache=cache,
        )
        key = fingerprint(small_config, annotation_config, True, NEAR_DEDUP)
        assert cache.evict(key)
        assert not cache.has(key)
        assert not cache.evict(key)


class TestEnv:
    def test_from_env_unset(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert BuildCache.from_env() is None
        monkeypatch.setenv(CACHE_ENV, "")
        assert BuildCache.from_env() is None

    def test_from_env_set(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "c"))
        cache = BuildCache.from_env()
        assert cache is not None
        assert cache.root == tmp_path / "c"
