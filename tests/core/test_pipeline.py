"""Tests for the end-to-end dataset build."""

import numpy as np

from repro.core.schema import ALL_LEVELS


class TestBuildResult:
    def test_report_accounting(self, small_build):
        report = small_build.report
        assert report.raw_posts >= report.annotated_slice_posts
        assert report.final_posts == small_build.dataset.num_posts
        assert report.final_users == small_build.dataset.num_users
        assert report.final_posts <= report.annotated_slice_posts

    def test_kappa_recorded(self, small_build):
        assert small_build.dataset.kappa == small_build.campaign.kappa
        assert 0.55 < small_build.dataset.kappa < 0.9

    def test_anonymised_release(self, small_build):
        # No raw simulator author names survive anonymisation.
        assert all(
            p.author.startswith("anon_") for p in small_build.dataset.posts
        )
        assert all(
            p.post_id.startswith("p_") for p in small_build.dataset.posts
        )

    def test_label_mix_is_table1_like(self, small_build):
        dist = small_build.dataset.label_distribution()
        expected = small_build.corpus.config.label_mix
        for level in ALL_LEVELS:
            assert abs(dist.fraction(level) - expected[level]) < 0.1

    def test_pretrain_pool_attached(self, small_build):
        assert len(small_build.dataset.pretrain_texts) > 0

    def test_report_as_dict(self, small_build):
        flat = small_build.report.as_dict()
        assert flat["final_posts"] > 0
        assert "pre_dropped_irrelevant" in flat

    def test_oracle_labels_survive_for_evaluation(self, small_build):
        posts = small_build.dataset.posts
        assert all(p.oracle_label is not None for p in posts[:50])

    def test_campaign_noise_matches_label_disagreement(self, small_build):
        dataset = small_build.dataset
        disagreement = np.mean(
            [
                int(dataset.labels[p.post_id] != p.oracle_label)
                for p in dataset.posts
            ]
        )
        assert abs(disagreement - small_build.campaign.label_noise) < 0.02
