"""Tests for dataset-card generation."""

from repro.core.datacard import (
    DatacardOptions,
    render_datacard,
    write_datacard,
)


class TestRender:
    def test_contains_measured_statistics(self, small_dataset):
        card = render_datacard(small_dataset)
        assert str(small_dataset.num_posts) in card
        assert str(small_dataset.num_users) in card
        assert f"{small_dataset.kappa:.4f}" in card

    def test_all_sections_present(self, small_dataset):
        card = render_datacard(small_dataset)
        for heading in (
            "# Dataset card",
            "## Motivation",
            "## Composition",
            "## Collection & annotation",
            "## Privacy & ethics",
            "### Discouraged uses",
        ):
            assert heading in card

    def test_label_table_rows(self, small_dataset):
        card = render_datacard(small_dataset)
        for label in ("Attempt", "Behavior", "Ideation", "Indicator"):
            assert f"| {label} |" in card

    def test_ethics_section_optional(self, small_dataset):
        card = render_datacard(
            small_dataset, DatacardOptions(include_ethics=False)
        )
        assert "## Privacy & ethics" not in card

    def test_custom_title(self, small_dataset):
        card = render_datacard(
            small_dataset, DatacardOptions(title="My Release")
        )
        assert "# Dataset card — My Release" in card

    def test_crawl_window_in_card(self, small_dataset):
        card = render_datacard(small_dataset)
        assert "2020" in card or "2021" in card


class TestWrite:
    def test_writes_file(self, small_dataset, tmp_path):
        target = tmp_path / "cards" / "DATASHEET.md"
        write_datacard(small_dataset, target)
        assert target.exists()
        assert "Dataset card" in target.read_text()
