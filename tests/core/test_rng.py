"""Tests for deterministic RNG stream management."""

from repro.core.rng import DEFAULT_SEED, SeedSequenceRegistry, derive_seed, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "corpus") == derive_seed(42, "corpus")

    def test_name_sensitivity(self):
        assert derive_seed(42, "corpus") != derive_seed(42, "model")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "corpus") != derive_seed(2, "corpus")

    def test_range_is_64_bit(self):
        assert 0 <= derive_seed(0, "x") < 2**64


class TestStream:
    def test_same_stream_same_draws(self):
        a = stream(7, "alpha").random(5)
        b = stream(7, "alpha").random(5)
        assert (a == b).all()

    def test_different_names_different_draws(self):
        a = stream(7, "alpha").random(5)
        b = stream(7, "beta").random(5)
        assert not (a == b).all()


class TestRegistry:
    def test_get_caches_generator(self):
        reg = SeedSequenceRegistry(3)
        g1 = reg.get("x")
        g1.random(10)  # consume
        assert reg.get("x") is g1

    def test_fresh_resets_stream(self):
        reg = SeedSequenceRegistry(3)
        first = reg.get("x").random(3)
        second = reg.fresh("x").random(3)
        assert (first == second).all()

    def test_spawn_independent(self):
        reg = SeedSequenceRegistry(3)
        child = reg.spawn("child")
        assert child.seed != reg.seed
        a = reg.get("x").random(3)
        b = child.get("x").random(3)
        assert not (a == b).all()

    def test_default_seed_used(self):
        assert SeedSequenceRegistry().seed == DEFAULT_SEED
