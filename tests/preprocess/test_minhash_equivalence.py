"""Broadcast MinHash signatures must be bitwise equal to the loop version."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocess.dedup import MinHasher, shingles


class TestSignatureEquivalence:
    @pytest.mark.parametrize("num_perm", [16, 64, 128])
    def test_bitwise_equal(self, num_perm):
        hasher = MinHasher(num_perm=num_perm)
        s = shingles(
            "the quick brown fox jumps over the lazy dog and naps afterwards"
        )
        fast = hasher.signature(s)
        slow = hasher._signature_reference(s)
        assert fast.dtype == slow.dtype == np.uint64
        np.testing.assert_array_equal(fast, slow)

    def test_empty_set(self):
        hasher = MinHasher(num_perm=16)
        np.testing.assert_array_equal(
            hasher.signature(set()), hasher._signature_reference(set())
        )

    def test_single_shingle(self):
        hasher = MinHasher(num_perm=32)
        np.testing.assert_array_equal(
            hasher.signature({"only"}), hasher._signature_reference({"only"})
        )

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="abcdefgh ", min_size=0, max_size=80))
    def test_property_bitwise_equal(self, text):
        hasher = MinHasher(num_perm=16)
        s = shingles(text)
        np.testing.assert_array_equal(
            hasher.signature(s), hasher._signature_reference(s)
        )
