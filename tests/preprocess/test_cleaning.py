"""Tests for noise stripping and relevance filtering."""

from datetime import datetime, timezone

import pytest

from repro.corpus.models import RedditPost
from repro.preprocess.cleaning import (
    clean_and_filter,
    clean_post,
    is_relevant,
    relevance_score,
    strip_noise,
)


def make_post(body, title="title"):
    return RedditPost(
        post_id="x1",
        author="a",
        subreddit="SuicideWatch",
        title=title,
        body=body,
        created_utc=datetime(2020, 5, 1, tzinfo=timezone.utc),
    )


class TestStripNoise:
    def test_removes_urls(self):
        assert "http" not in strip_noise("see http://spam.example/x now")
        assert "www" not in strip_noise("go to www.spam.example please")

    def test_removes_zero_width_chars(self):
        assert strip_noise("he​llo") == "hello"

    def test_collapses_repeated_punctuation(self):
        assert strip_noise("help!!!!!!") == "help!"
        assert strip_noise("what????") == "what?"

    def test_removes_hashtag_runs(self):
        out = strip_noise("I feel low #help #advice #late")
        assert "#help" not in out

    def test_removes_removed_tags(self):
        assert "[removed" not in strip_noise("text [removed by editor] more")

    def test_collapses_whitespace(self):
        assert strip_noise("a   b\n\n c") == "a b c"

    def test_plain_text_untouched(self):
        assert strip_noise("I feel exhausted tonight.") == (
            "I feel exhausted tonight."
        )


class TestRelevance:
    def test_distress_text_is_relevant(self):
        assert is_relevant(
            "I feel hopeless and alone, I keep thinking about suicide"
        )

    def test_commercial_text_is_irrelevant(self):
        assert not is_relevant("Selling two concert tickets, DM me, promo code")

    def test_scores_bounded(self):
        assert 0.0 <= relevance_score("anything at all") <= 1.0

    def test_dealing_does_not_trigger_deal_penalty(self):
        text = "I have been dealing with everything alone and feel hopeless"
        assert relevance_score(text) > 0.0

    def test_empty_text_irrelevant(self):
        assert not is_relevant("")


class TestCleanAndFilter:
    def test_drops_offtopic(self):
        posts = [
            make_post("I feel worthless and want to disappear"),
            make_post("Best pizza place near campus? Also selling tickets"),
        ]
        kept, dropped = clean_and_filter(posts)
        assert len(kept) == 1
        assert dropped == 1

    def test_clean_post_returns_copy(self):
        post = make_post("body http://x.example/1")
        cleaned = clean_post(post)
        assert cleaned is not post
        assert "http" in post.body  # original untouched
        assert "http" not in cleaned.body

    def test_preserves_order(self):
        posts = [
            make_post(f"I feel hopeless and alone, day {i}") for i in range(5)
        ]
        kept, _ = clean_and_filter(posts)
        assert [p.post_id for p in kept] == [p.post_id for p in posts]

    @pytest.mark.parametrize("threshold", [0.0, 0.3, 1.0])
    def test_threshold_monotone(self, threshold):
        posts = [make_post("I feel exhausted and hopeless tonight")] * 3
        kept, _ = clean_and_filter(posts, relevance_threshold=threshold)
        assert len(kept) in (0, 3)
