"""Tests for the composed pre-processing pipeline."""

from repro.preprocess import PreprocessPipeline, preprocess


class TestPipeline:
    def test_report_accounting_consistent(self, small_corpus):
        result = preprocess(small_corpus.raw_posts, enable_near_dedup=True)
        report = result.report
        assert report.input_posts == len(small_corpus.raw_posts)
        assert report.output_posts == report.input_posts - report.total_dropped
        assert report.output_posts == len(result.posts)
        assert report.output_users == len(result.histories)

    def test_offtopic_removed(self, small_corpus):
        result = preprocess(small_corpus.raw_posts, enable_near_dedup=False)
        offtopic_authors = {
            p.author for p in small_corpus.raw_posts
            if p.author.startswith("offtopic")
        }
        surviving = {p.author for p in result.posts}
        assert not (offtopic_authors & surviving)

    def test_most_annotated_posts_survive(self, small_corpus):
        result = preprocess(small_corpus.annotated_posts, enable_near_dedup=False)
        assert result.report.output_posts > 0.9 * len(
            small_corpus.annotated_posts
        )

    def test_exact_duplicates_removed(self, small_corpus):
        result = preprocess(small_corpus.annotated_posts, enable_near_dedup=False)
        assert result.report.dropped_exact_duplicates > 0
        texts = [p.text for p in result.posts]
        # remaining exact duplicates would be a bug
        from repro.preprocess.dedup import normalised_fingerprint

        prints = [normalised_fingerprint(t) for t in texts]
        assert len(set(prints)) == len(prints)

    def test_near_dedup_optional(self, small_corpus):
        with_near = PreprocessPipeline(enable_near_dedup=True).run(
            small_corpus.annotated_posts
        )
        without = PreprocessPipeline(enable_near_dedup=False).run(
            small_corpus.annotated_posts
        )
        assert without.report.dropped_near_duplicates == 0
        assert (
            with_near.report.output_posts <= without.report.output_posts
        )

    def test_histories_are_chronological(self, small_corpus):
        result = preprocess(small_corpus.annotated_posts, enable_near_dedup=False)
        for history in result.histories.values():
            times = [p.created_utc for p in history.posts]
            assert times == sorted(times)

    def test_bodies_are_clean(self, small_corpus):
        result = preprocess(small_corpus.annotated_posts, enable_near_dedup=False)
        assert not any("http" in p.body for p in result.posts)

    def test_report_as_dict_keys(self, small_corpus):
        result = preprocess(small_corpus.annotated_posts[:100],
                            enable_near_dedup=False)
        keys = set(result.report.as_dict())
        assert {"input_posts", "output_posts", "output_users"} <= keys
