"""Tests for normalisation and temporal partitioning."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.core.errors import PreprocessError
from repro.corpus.models import RedditPost, UserHistory
from repro.preprocess.normalize import expand_contractions, normalise
from repro.preprocess.partition import (
    assert_chronological,
    group_by_user,
    slice_window,
    split_by_date,
)


def make_post(author, when, pid):
    return RedditPost(
        post_id=pid, author=author, subreddit="s", title="", body="b",
        created_utc=when,
    )


T0 = datetime(2020, 1, 1, tzinfo=timezone.utc)


class TestNormalise:
    def test_lowercases(self):
        assert normalise("HeLLo") == "hello"

    def test_expands_contractions(self):
        assert normalise("I can't sleep") == "i can not sleep"
        assert normalise("it's over, I'm done") == "it is over, i am done"

    def test_nt_suffix(self):
        assert expand_contractions("shouldn't") == "should not"

    def test_collapses_whitespace(self):
        assert normalise("a \t b\n\nc") == "a b c"

    def test_unicode_folding(self):
        assert normalise("ｆｕｌｌｗｉｄｔｈ") == "fullwidth"

    def test_idempotent(self):
        text = "I can't keep doing This  anymore"
        assert normalise(normalise(text)) == normalise(text)


class TestGrouping:
    def test_groups_and_sorts(self):
        posts = [
            make_post("b", T0 + timedelta(days=2), "p3"),
            make_post("a", T0 + timedelta(days=1), "p2"),
            make_post("a", T0, "p1"),
        ]
        histories = group_by_user(posts)
        assert set(histories) == {"a", "b"}
        assert [p.post_id for p in histories["a"].posts] == ["p1", "p2"]

    def test_assert_chronological_passes(self):
        history = UserHistory(
            "a", [make_post("a", T0, "p1"), make_post("a", T0 + timedelta(1), "p2")]
        )
        assert_chronological(history)

    def test_assert_chronological_raises(self):
        history = UserHistory("a")
        history.posts = [
            make_post("a", T0 + timedelta(1), "p2"),
            make_post("a", T0, "p1"),
        ]
        with pytest.raises(PreprocessError):
            assert_chronological(history)


class TestSliceWindow:
    def _history(self, n=10):
        return UserHistory(
            "a", [make_post("a", T0 + timedelta(days=i), f"p{i}") for i in range(n)]
        )

    def test_max_posts(self):
        got = slice_window(self._history(), max_posts=3)
        assert [p.post_id for p in got] == ["p7", "p8", "p9"]

    def test_max_span(self):
        got = slice_window(self._history(), max_span_days=2.5)
        assert [p.post_id for p in got] == ["p7", "p8", "p9"]

    def test_end_filter(self):
        got = slice_window(self._history(), end=T0 + timedelta(days=4))
        assert got[-1].post_id == "p4"

    def test_empty_when_end_before_first(self):
        got = slice_window(self._history(), end=T0 - timedelta(days=1))
        assert got == []

    def test_no_constraints_returns_all(self):
        assert len(slice_window(self._history())) == 10


class TestSplitByDate:
    def test_partition(self):
        posts = [make_post("a", T0 + timedelta(days=i), f"p{i}") for i in range(6)]
        before, after = split_by_date(posts, T0 + timedelta(days=3))
        assert [p.post_id for p in before] == ["p0", "p1", "p2"]
        assert [p.post_id for p in after] == ["p3", "p4", "p5"]
