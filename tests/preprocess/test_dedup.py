"""Tests for exact and near-duplicate removal."""

from datetime import datetime, timedelta, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.models import RedditPost
from repro.preprocess.dedup import (
    MinHasher,
    jaccard,
    normalised_fingerprint,
    remove_exact_duplicates,
    remove_near_duplicates,
    shingles,
)


def make_post(body, pid, when=None):
    return RedditPost(
        post_id=pid,
        author="a",
        subreddit="s",
        title="",
        body=body,
        created_utc=when or datetime(2020, 1, 1, tzinfo=timezone.utc),
    )


class TestFingerprint:
    def test_case_and_whitespace_invariant(self):
        assert normalised_fingerprint("Hello  World") == normalised_fingerprint(
            "hello world"
        )

    def test_punctuation_invariant(self):
        assert normalised_fingerprint("hello, world!") == normalised_fingerprint(
            "hello world"
        )

    def test_different_text_different_fingerprint(self):
        assert normalised_fingerprint("aaa") != normalised_fingerprint("bbb")


class TestShinglesAndJaccard:
    def test_shingle_count(self):
        assert len(shingles("a b c d e", k=3)) == 3

    def test_short_text(self):
        assert shingles("hello", k=3) == {"hello"}
        assert shingles("", k=3) == set()

    def test_jaccard_identity(self):
        s = shingles("the quick brown fox jumps")
        assert jaccard(s, s) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_jaccard_empty(self):
        assert jaccard(set(), set()) == 1.0
        assert jaccard(set(), {"a"}) == 0.0


class TestMinHasher:
    def test_estimate_close_to_true_jaccard(self):
        hasher = MinHasher(num_perm=128)
        a = shingles("the quick brown fox jumps over the lazy dog again")
        b = shingles("the quick brown fox walks over the lazy dog again")
        true = jaccard(a, b)
        est = MinHasher.estimate_jaccard(hasher.signature(a), hasher.signature(b))
        assert abs(true - est) < 0.2

    def test_identical_sets_estimate_one(self):
        hasher = MinHasher(num_perm=32)
        s = shingles("some text that repeats exactly")
        assert MinHasher.estimate_jaccard(
            hasher.signature(s), hasher.signature(s)
        ) == 1.0

    def test_rejects_tiny_num_perm(self):
        with pytest.raises(ValueError):
            MinHasher(num_perm=2)

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="abcdef ", min_size=0, max_size=60))
    def test_signature_shape_property(self, text):
        hasher = MinHasher(num_perm=16)
        sig = hasher.signature(shingles(text))
        assert sig.shape == (16,)


class TestExactDedup:
    def test_keeps_earliest(self):
        early = make_post("same text here", "p1")
        late = make_post(
            "same text here", "p2",
            when=datetime(2020, 2, 1, tzinfo=timezone.utc),
        )
        kept, dropped = remove_exact_duplicates([late, early])
        assert dropped == 1
        assert kept[0].post_id == "p1"

    def test_no_duplicates_untouched(self):
        posts = [make_post(f"text {i}", f"p{i}") for i in range(5)]
        kept, dropped = remove_exact_duplicates(posts)
        assert dropped == 0
        assert len(kept) == 5


class TestNearDedup:
    def test_detects_noise_variant(self):
        base = "I feel hopeless and alone tonight and cannot sleep at all " * 3
        a = make_post(base, "p1")
        b = make_post(
            base + " extra", "p2",
            when=datetime(2020, 3, 1, tzinfo=timezone.utc),
        )
        kept, dropped = remove_near_duplicates([a, b], threshold=0.8)
        assert dropped == 1
        assert kept[0].post_id == "p1"

    def test_distinct_posts_survive(self):
        a = make_post("completely different words entirely", "p1")
        b = make_post("nothing shared with that other text", "p2")
        kept, dropped = remove_near_duplicates([a, b])
        assert dropped == 0
        assert len(kept) == 2

    def test_bands_must_divide_permutations(self):
        with pytest.raises(ValueError):
            remove_near_duplicates([], num_perm=64, bands=10)

    def test_cluster_keeps_single_survivor(self):
        base = "the same long message repeated almost verbatim many times " * 3
        posts = [
            make_post(base, f"p{i}",
                      when=datetime(2020, 1, 1, tzinfo=timezone.utc)
                      + timedelta(days=i))
            for i in range(4)
        ]
        kept, dropped = remove_near_duplicates(posts, threshold=0.9)
        assert len(kept) == 1
        assert dropped == 3
