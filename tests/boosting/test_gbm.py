"""Tests for the gradient-boosting ensemble."""

import numpy as np
import pytest

from repro.boosting import (
    GBMParams,
    GradientBoostingClassifier,
    LogisticObjective,
    SoftmaxObjective,
    softmax,
)
from repro.core.errors import NotFittedError


@pytest.fixture(scope="module")
def toy_data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(500, 10))
    y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0.5).astype(int)
    return x, y


class TestObjectives:
    def test_softmax_rows(self):
        probs = softmax(np.array([[0.0, 0.0], [5.0, -5.0]]))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs[1, 0] > 0.99

    def test_softmax_grad_hess_shapes(self):
        obj = SoftmaxObjective(3)
        scores = np.zeros((5, 3))
        targets = np.array([0, 1, 2, 0, 1])
        grad, hess = obj.grad_hess(scores, targets)
        assert grad.shape == hess.shape == (5, 3)
        assert (hess > 0).all()

    def test_softmax_grad_is_p_minus_y(self):
        obj = SoftmaxObjective(2)
        scores = np.zeros((1, 2))
        grad, _ = obj.grad_hess(scores, np.array([1]))
        assert np.allclose(grad, [[0.5, -0.5]])

    def test_softmax_loss_decreases_with_confidence(self):
        obj = SoftmaxObjective(2)
        unsure = obj.loss(np.zeros((1, 2)), np.array([0]))
        confident = obj.loss(np.array([[5.0, -5.0]]), np.array([0]))
        assert confident < unsure

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            SoftmaxObjective(1)

    def test_logistic_objective(self):
        obj = LogisticObjective()
        scores = np.zeros((3, 1))
        grad, hess = obj.grad_hess(scores, np.array([0, 1, 1]))
        assert np.allclose(grad[:, 0], [0.5, -0.5, -0.5])
        probs = obj.predict_proba(scores)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestClassifier:
    def test_learns_separable_task(self, toy_data):
        x, y = toy_data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=25, max_depth=3)
        ).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_predict_proba_valid(self, toy_data):
        x, y = toy_data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=10)
        ).fit(x, y)
        probs = model.predict_proba(x)
        assert probs.shape == (len(x), 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_early_stopping(self, toy_data):
        x, y = toy_data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=200, early_stopping_rounds=3,
                      learning_rate=0.5)
        ).fit(x[:300], y[:300], eval_set=(x[300:], y[300:]))
        assert model.best_iteration_ < 200
        assert len(model.eval_history_) < 200

    def test_feature_importances_identify_signal(self, toy_data):
        x, y = toy_data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=15)
        ).fit(x, y)
        top2 = set(np.argsort(model.feature_importances_)[-2:])
        assert top2 == {0, 1}

    def test_importances_normalised(self, toy_data):
        x, y = toy_data
        model = GradientBoostingClassifier(GBMParams(n_estimators=5)).fit(x, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_not_fitted_errors(self):
        model = GradientBoostingClassifier()
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            _ = model.feature_importances_

    def test_input_validation(self):
        model = GradientBoostingClassifier()
        with pytest.raises(ValueError):
            model.fit(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            GradientBoostingClassifier(GBMParams(), n_estimators=5)

    def test_sample_weight_shifts_decision(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(300, 2))
        y = (x[:, 0] > 0.8).astype(int)  # imbalanced: ~20% positives
        weights = np.where(y == 1, 10.0, 1.0)
        plain = GradientBoostingClassifier(GBMParams(n_estimators=10)).fit(x, y)
        weighted = GradientBoostingClassifier(GBMParams(n_estimators=10)).fit(
            x, y, sample_weight=weights
        )
        recall_plain = (plain.predict(x)[y == 1] == 1).mean()
        recall_weighted = (weighted.predict(x)[y == 1] == 1).mean()
        assert recall_weighted >= recall_plain

    def test_subsampling_still_learns(self, toy_data):
        x, y = toy_data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=30, subsample=0.5, colsample=0.5)
        ).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.8

    def test_deterministic_given_seed(self, toy_data):
        x, y = toy_data
        a = GradientBoostingClassifier(GBMParams(n_estimators=5, seed=1)).fit(x, y)
        b = GradientBoostingClassifier(GBMParams(n_estimators=5, seed=1)).fit(x, y)
        assert np.allclose(a.predict_proba(x), b.predict_proba(x))
