"""Tests for the second-order regression tree."""

import numpy as np
import pytest

from repro.boosting.tree import RegressionTree, TreeParams


def grad_hess_for_regression(y, pred):
    """Squared-loss statistics: g = pred − y, h = 1."""
    return pred - y, np.ones_like(y)


class TestLeafValues:
    def test_stump_leaf_value(self):
        # No splits possible (constant feature) -> single leaf = -G/(H+λ)
        x = np.zeros((10, 1))
        g = np.full(10, 2.0)
        h = np.ones(10)
        tree = RegressionTree(TreeParams(reg_lambda=1.0)).fit(x, g, h)
        assert tree.num_leaves() == 1
        assert tree.predict(x)[0] == pytest.approx(-20.0 / 11.0)


class TestSplitting:
    def test_finds_obvious_split(self):
        x = np.concatenate([np.zeros(20), np.ones(20)])[:, None].astype(float)
        y = np.concatenate([np.zeros(20), np.ones(20)])
        g, h = grad_hess_for_regression(y, np.zeros(40))
        tree = RegressionTree(TreeParams(max_depth=1)).fit(x, g, h)
        pred = tree.predict(x)
        assert pred[:20].mean() < pred[20:].mean()
        assert tree.num_leaves() == 2

    def test_max_depth_limits_leaves(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        g, h = grad_hess_for_regression(y, np.zeros(200))
        tree = RegressionTree(TreeParams(max_depth=2)).fit(x, g, h)
        assert tree.num_leaves() <= 4

    def test_min_child_weight_blocks_small_leaves(self):
        x = np.array([[0.0], [1.0]])
        g = np.array([1.0, -1.0])
        h = np.ones(2)
        tree = RegressionTree(TreeParams(min_child_weight=5.0)).fit(x, g, h)
        assert tree.num_leaves() == 1

    def test_gamma_penalises_weak_splits(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 2))
        y = rng.normal(size=100) * 0.01  # nearly no structure
        g, h = grad_hess_for_regression(y, np.zeros(100))
        free = RegressionTree(TreeParams(gamma=0.0)).fit(x, g, h)
        strict = RegressionTree(TreeParams(gamma=10.0)).fit(x, g, h)
        assert strict.num_leaves() <= free.num_leaves()

    def test_feature_gains_recorded(self):
        x = np.concatenate([np.zeros(20), np.ones(20)])[:, None].astype(float)
        y = np.concatenate([np.zeros(20), np.ones(20)])
        g, h = grad_hess_for_regression(y, np.zeros(40))
        tree = RegressionTree(TreeParams()).fit(x, g, h)
        assert 0 in tree.feature_gains
        assert tree.feature_gains[0] > 0

    def test_column_subset_respected(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 3))
        y = (x[:, 0] > 0).astype(float)  # signal only in column 0
        g, h = grad_hess_for_regression(y, np.zeros(100))
        tree = RegressionTree(TreeParams()).fit(
            x, g, h, feature_idx=np.array([1, 2])
        )
        assert 0 not in tree.feature_gains

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree(TreeParams()).predict(np.zeros((1, 1)))

    def test_reduces_objective(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(300, 4))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
        g, h = grad_hess_for_regression(y, np.zeros(300))
        tree = RegressionTree(TreeParams(max_depth=4)).fit(x, g, h)
        residual_before = (y**2).mean()
        residual_after = ((y - tree.predict(x)) ** 2).mean()
        assert residual_after < residual_before
