"""Vectorized split search must pick the same splits as its reference."""

import numpy as np
import pytest

from repro.boosting.tree import RegressionTree, TreeParams


def _split_inputs(tree, x, g, h):
    rows = np.arange(x.shape[0])
    cols = np.arange(x.shape[1])
    return (
        x,
        g,
        h,
        rows,
        cols,
        float(g.sum()),
        float(h.sum()),
    )


def assert_same_split(fast, slow):
    if slow is None:
        assert fast is None
        return
    assert fast is not None
    gain_f, feat_f, thr_f, left_f, right_f = fast
    gain_s, feat_s, thr_s, left_s, right_s = slow
    assert gain_f == gain_s
    assert int(feat_f) == int(feat_s)
    assert thr_f == thr_s
    np.testing.assert_array_equal(np.sort(left_f), np.sort(left_s))
    np.testing.assert_array_equal(np.sort(right_f), np.sort(right_s))


class TestSplitEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_data_identical_choice(self, seed):
        rng = np.random.default_rng(seed)
        n, f = 120, 5
        x = rng.normal(size=(n, f))
        g = rng.normal(size=n)
        h = rng.uniform(0.5, 2.0, size=n)
        tree = RegressionTree(TreeParams())
        args = _split_inputs(tree, x, g, h)
        assert_same_split(
            tree._best_split(*args), tree._best_split_reference(*args)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_tied_values_identical_choice(self, seed):
        # Heavily quantised features exercise the boundary/tie logic.
        rng = np.random.default_rng(100 + seed)
        x = rng.integers(0, 4, size=(80, 4)).astype(float)
        g = rng.normal(size=80)
        h = np.ones(80)
        tree = RegressionTree(TreeParams(min_child_weight=3.0, gamma=0.1))
        args = _split_inputs(tree, x, g, h)
        assert_same_split(
            tree._best_split(*args), tree._best_split_reference(*args)
        )

    def test_constant_features_no_split(self):
        x = np.ones((30, 3))
        g = np.linspace(-1, 1, 30)
        h = np.ones(30)
        tree = RegressionTree(TreeParams())
        args = _split_inputs(tree, x, g, h)
        assert tree._best_split(*args) is None
        assert tree._best_split_reference(*args) is None

    def test_min_child_weight_blocks_both(self):
        x = np.array([[0.0], [1.0]])
        g = np.array([1.0, -1.0])
        h = np.ones(2)
        tree = RegressionTree(TreeParams(min_child_weight=5.0))
        args = _split_inputs(tree, x, g, h)
        assert tree._best_split(*args) is None
        assert tree._best_split_reference(*args) is None

    def test_row_and_column_subsets(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(60, 6))
        g = rng.normal(size=60)
        h = rng.uniform(0.5, 1.5, size=60)
        rows = np.sort(rng.choice(60, size=40, replace=False))
        cols = np.array([1, 3, 4])
        tree = RegressionTree(TreeParams())
        args = (x, g, h, rows, cols, float(g[rows].sum()), float(h[rows].sum()))
        assert_same_split(
            tree._best_split(*args), tree._best_split_reference(*args)
        )


class TestTreeEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_full_tree_identical_predictions(self, seed, monkeypatch):
        rng = np.random.default_rng(200 + seed)
        x = rng.normal(size=(150, 4))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(float)
        g = np.zeros(150) - y
        h = np.ones(150)
        fast = RegressionTree(TreeParams(max_depth=4)).fit(x, g, h)
        monkeypatch.setattr(
            RegressionTree, "_best_split", RegressionTree._best_split_reference
        )
        slow = RegressionTree(TreeParams(max_depth=4)).fit(x, g, h)
        np.testing.assert_array_equal(fast.predict(x), slow.predict(x))
        assert fast.feature_gains == slow.feature_gains
