"""Tests for histogram-mode (quantile-binned) boosting."""

import time

import numpy as np
import pytest

from repro.boosting import GBMParams, GradientBoostingClassifier
from repro.boosting.gbm import QuantileBinner


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(700, 20))
    y = (x[:, 0] > 0).astype(int) + (x[:, 1] + x[:, 2] > 0.5).astype(int)
    return x, y


class TestQuantileBinner:
    def test_bin_range(self, data):
        x, _ = data
        binner = QuantileBinner(16)
        binned = binner.fit_transform(x)
        assert binned.min() >= 0
        assert binned.max() <= 16

    def test_monotone_within_feature(self, data):
        x, _ = data
        binner = QuantileBinner(8).fit(x)
        col = x[:, 0]
        binned = binner.transform(x)[:, 0]
        order = np.argsort(col)
        assert (np.diff(binned[order]) >= 0).all()

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            QuantileBinner(8).transform(np.zeros((1, 2)))

    def test_min_bins(self):
        with pytest.raises(ValueError):
            QuantileBinner(1)

    def test_constant_feature(self):
        x = np.ones((50, 1))
        binned = QuantileBinner(8).fit_transform(x)
        assert len(np.unique(binned)) == 1


class TestHistTraining:
    def test_accuracy_comparable_to_exact(self, data):
        x, y = data
        exact = GradientBoostingClassifier(
            GBMParams(n_estimators=15, max_depth=3)
        ).fit(x[:500], y[:500])
        hist = GradientBoostingClassifier(
            GBMParams(n_estimators=15, max_depth=3, max_bins=16)
        ).fit(x[:500], y[:500])
        acc_exact = (exact.predict(x[500:]) == y[500:]).mean()
        acc_hist = (hist.predict(x[500:]) == y[500:]).mean()
        assert acc_hist > acc_exact - 0.08

    def test_hist_is_faster_on_wide_data(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2000, 40))
        y = (x[:, 0] > 0).astype(int)
        t0 = time.perf_counter()
        GradientBoostingClassifier(
            GBMParams(n_estimators=8, max_depth=4)
        ).fit(x, y)
        exact_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        GradientBoostingClassifier(
            GBMParams(n_estimators=8, max_depth=4, max_bins=16)
        ).fit(x, y)
        hist_time = time.perf_counter() - t0
        # Bincount split search beats sort-based search at this size;
        # generous bound to stay robust under CI load.
        assert hist_time < exact_time

    def test_hist_thresholds_fall_between_bins(self, data):
        x, y = data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=2, max_bins=8)
        ).fit(x, y)
        for round_ in model._rounds:
            for tree in round_.trees:
                stack = [tree.root]
                while stack:
                    node = stack.pop()
                    if node is None or node.is_leaf:
                        continue
                    assert node.threshold % 1 == pytest.approx(0.5)
                    stack.extend((node.left, node.right))

    def test_eval_set_binned_consistently(self, data):
        x, y = data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=10, max_bins=16, early_stopping_rounds=5)
        ).fit(x[:500], y[:500], eval_set=(x[500:], y[500:]))
        assert len(model.eval_history_) >= 1
        # prediction path re-bins raw features transparently
        preds = model.predict(x[500:])
        assert preds.shape == (200,)

    def test_predict_proba_normalised(self, data):
        x, y = data
        model = GradientBoostingClassifier(
            GBMParams(n_estimators=5, max_bins=8)
        ).fit(x, y)
        probs = model.predict_proba(x[:50])
        assert np.allclose(probs.sum(axis=1), 1.0)
