"""Tests for the class-conditioned language banks."""

import numpy as np
import pytest

from repro.core.schema import ALL_LEVELS, RiskLevel
from repro.corpus.lexicon import (
    HARD_SIGNAL_SENTENCES,
    NEUTRAL_SENTENCES,
    RISK_PHRASES,
    SIGNAL_SENTENCES,
    SLOT_POOLS,
    SentenceSampler,
    TITLE_TEMPLATES,
)


@pytest.fixture()
def sampler(rng):
    return SentenceSampler(rng, lexical_strength=1.0, hard_fraction=0.5)


class TestBanks:
    def test_every_level_has_banks(self):
        for bank in (SIGNAL_SENTENCES, HARD_SIGNAL_SENTENCES, TITLE_TEMPLATES):
            assert set(bank) == set(ALL_LEVELS)

    def test_hard_banks_have_equal_sizes(self):
        sizes = {len(HARD_SIGNAL_SENTENCES[lv]) for lv in ALL_LEVELS}
        assert len(sizes) == 1

    def test_hard_banks_embed_shared_risk_phrases(self):
        for level in ALL_LEVELS:
            assert all("{rp}" in t for t in HARD_SIGNAL_SENTENCES[level])

    def test_slots_resolve(self):
        import string

        all_templates = (
            NEUTRAL_SENTENCES
            + tuple(t for lv in ALL_LEVELS for t in SIGNAL_SENTENCES[lv])
            + tuple(t for lv in ALL_LEVELS for t in HARD_SIGNAL_SENTENCES[lv])
        )
        for template in all_templates:
            for _, slot, _, _ in string.Formatter().parse(template):
                if slot is not None:
                    assert slot in SLOT_POOLS, f"unknown slot {slot} in {template}"

    def test_risk_phrases_are_lowercase_fragments(self):
        assert all(p == p.lower() for p in RISK_PHRASES)


class TestSentenceSampler:
    def test_fill_replaces_all_slots(self, sampler):
        out = sampler.fill("I have been dealing with {stressor} {time}.")
        assert "{" not in out and "}" not in out

    def test_body_sentence_count(self, sampler):
        body = sampler.body(RiskLevel.IDEATION, 4)
        assert body.count(".") >= 3  # roughly one terminal per sentence

    def test_body_never_empty(self, sampler):
        assert sampler.body(RiskLevel.ATTEMPT, 0)

    def test_zero_strength_yields_neutral_only(self, rng):
        sampler = SentenceSampler(rng, lexical_strength=0.0)
        filled_neutral = set()
        for _ in range(200):
            filled_neutral.add(sampler.sentence(RiskLevel.ATTEMPT))
        # None of the outputs should contain a shared risk phrase.
        assert not any(
            any(rp in s for rp in RISK_PHRASES) for s in filled_neutral
        )

    def test_hard_fraction_one_uses_hard_bank(self, rng):
        sampler = SentenceSampler(rng, 1.0, hard_fraction=1.0)
        for _ in range(50):
            sentence = sampler.sentence(RiskLevel.BEHAVIOR)
            assert any(rp in sentence for rp in RISK_PHRASES)

    def test_ambiguity_noise_drifts_to_adjacent(self, rng):
        sampler = SentenceSampler(rng, 1.0, ambiguity_noise=1.0)
        drifted = {sampler._noisy_level(RiskLevel.INDICATOR) for _ in range(50)}
        assert drifted == {RiskLevel.IDEATION}
        drifted = {sampler._noisy_level(RiskLevel.IDEATION) for _ in range(200)}
        assert drifted == {RiskLevel.INDICATOR, RiskLevel.BEHAVIOR}

    def test_no_noise_keeps_level(self, rng):
        sampler = SentenceSampler(rng, 1.0, ambiguity_noise=0.0)
        assert all(
            sampler._noisy_level(lv) == lv for lv in ALL_LEVELS for _ in range(5)
        )

    def test_titles_fill_slots(self, sampler):
        for _ in range(20):
            title = sampler.title(RiskLevel.INDICATOR)
            assert "{" not in title

    def test_offtopic_and_noise(self, sampler):
        assert sampler.offtopic()
        assert sampler.noise()

    def test_deterministic_given_rng(self):
        a = SentenceSampler(np.random.default_rng(5), 0.7)
        b = SentenceSampler(np.random.default_rng(5), 0.7)
        assert [a.sentence(RiskLevel.IDEATION) for _ in range(10)] == [
            b.sentence(RiskLevel.IDEATION) for _ in range(10)
        ]
