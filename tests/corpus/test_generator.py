"""Tests for the synthetic corpus builder."""

import numpy as np
import pytest

from repro.core.config import CorpusConfig
from repro.core.schema import ALL_LEVELS
from repro.corpus.generator import SUBREDDIT, CorpusGenerator, generate_corpus


class TestGenerate:
    def test_annotated_volume_near_target(self, small_corpus):
        target = small_corpus.config.target_posts
        got = len(small_corpus.annotated_posts)
        # dirt injection adds a few percent of duplicates
        assert target <= got <= int(target * 1.1)

    def test_annotated_user_count(self, small_corpus):
        authors = {p.author for p in small_corpus.annotated_posts}
        assert authors == small_corpus.annotated_authors
        assert len(authors) == small_corpus.config.num_users

    def test_label_mix_tracks_table1(self, small_corpus):
        posts = [
            p for p in small_corpus.annotated_posts if p.oracle_label is not None
        ]
        for level in ALL_LEVELS:
            frac = np.mean([p.oracle_label == level for p in posts])
            assert abs(frac - small_corpus.config.label_mix[level]) < 0.08

    def test_timestamps_inside_crawl_window(self, small_corpus):
        cfg = small_corpus.config
        for post in small_corpus.raw_posts:
            assert cfg.start <= post.created_utc <= cfg.end

    def test_raw_posts_chronological(self, small_corpus):
        times = [p.created_utc for p in small_corpus.raw_posts]
        assert times == sorted(times)

    def test_background_pool_exists(self, small_corpus):
        assert len(small_corpus.background_posts) > len(
            small_corpus.annotated_posts
        )

    def test_offtopic_dirt_present(self, small_corpus):
        offtopic = [p for p in small_corpus.raw_posts if p.oracle_label is None]
        assert offtopic

    def test_duplicate_dirt_present(self, small_corpus):
        texts = [p.body for p in small_corpus.annotated_posts]
        assert len(set(texts)) < len(texts)

    def test_all_in_one_subreddit(self, small_corpus):
        assert {p.subreddit for p in small_corpus.raw_posts} == {SUBREDDIT}

    def test_reproducible(self):
        a = generate_corpus(scale=0.02)
        b = generate_corpus(scale=0.02)
        assert [p.body for p in a.raw_posts[:50]] == [
            p.body for p in b.raw_posts[:50]
        ]

    def test_seed_changes_output(self):
        a = generate_corpus(scale=0.02)
        b = generate_corpus(scale=0.02, seed=99)
        assert [p.body for p in a.raw_posts[:50]] != [
            p.body for p in b.raw_posts[:50]
        ]

    def test_users_histories_strictly_increasing(self, small_corpus):
        by_author = {}
        for p in small_corpus.annotated_posts:
            by_author.setdefault(p.author, []).append(p.created_utc)
        for times in by_author.values():
            assert all(a < b for a, b in zip(times, times[1:]))


class TestGenerateCorpusHelper:
    def test_overrides_forwarded(self):
        corpus = generate_corpus(scale=0.02, lexical_strength=0.9)
        assert corpus.config.lexical_strength == 0.9

    def test_scale_one_uses_paper_sizes(self):
        gen = CorpusGenerator(CorpusConfig())
        assert gen.config.num_users == 1265

    def test_bad_override_raises(self):
        with pytest.raises(TypeError):
            generate_corpus(scale=0.02, not_a_field=1)
