"""Tests for the simulated Reddit substrate."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.core.errors import CorpusError
from repro.corpus.models import RedditPost
from repro.corpus.reddit import RedditSimulator, crawl


def make_post(reddit, author="alice", sub="SuicideWatch", when=None, body="hello"):
    when = when or datetime(2020, 6, 1, tzinfo=timezone.utc)
    return RedditPost(
        post_id=reddit.next_post_id(),
        author=author,
        subreddit=sub,
        title="t",
        body=body,
        created_utc=when,
    )


@pytest.fixture()
def reddit():
    sim = RedditSimulator()
    sim.create_subreddit("SuicideWatch")
    return sim


class TestSubmission:
    def test_submit_and_count(self, reddit):
        reddit.submit(make_post(reddit))
        assert len(reddit.subreddit("SuicideWatch")) == 1

    def test_submit_creates_subreddit(self, reddit):
        post = make_post(reddit, sub="newplace")
        reddit.submit(post)
        assert len(reddit.subreddit("newplace")) == 1

    def test_unknown_subreddit_raises(self, reddit):
        with pytest.raises(CorpusError):
            reddit.subreddit("nope")

    def test_wrong_subreddit_submit_raises(self, reddit):
        post = make_post(reddit, sub="SuicideWatch")
        with pytest.raises(CorpusError):
            reddit.create_subreddit("other").submit(post)

    def test_post_ids_unique(self, reddit):
        ids = {reddit.next_post_id() for _ in range(500)}
        assert len(ids) == 500


class TestListing:
    def _populate(self, reddit, n):
        base = datetime(2020, 1, 1, tzinfo=timezone.utc)
        for i in range(n):
            reddit.submit(make_post(reddit, when=base + timedelta(hours=i)))

    def test_newest_first(self, reddit):
        self._populate(reddit, 10)
        page = reddit.new("SuicideWatch", limit=10)
        times = [p.created_utc for p in page.posts]
        assert times == sorted(times, reverse=True)

    def test_page_size_clamped(self, reddit):
        self._populate(reddit, 250)
        page = reddit.new("SuicideWatch", limit=1000)
        assert len(page.posts) == RedditSimulator.MAX_PAGE_SIZE

    def test_pagination_cursor(self, reddit):
        self._populate(reddit, 7)
        first = reddit.new("SuicideWatch", limit=3)
        second = reddit.new("SuicideWatch", limit=3, after=first.after)
        assert len(first.posts) == 3
        assert len(second.posts) == 3
        assert not {p.post_id for p in first.posts} & {
            p.post_id for p in second.posts
        }

    def test_last_page_has_no_cursor(self, reddit):
        self._populate(reddit, 5)
        page = reddit.new("SuicideWatch", limit=10)
        assert page.after is None

    def test_bad_cursor_raises(self, reddit):
        self._populate(reddit, 3)
        with pytest.raises(CorpusError):
            reddit.new("SuicideWatch", after="zzz")

    def test_iterate_all_covers_everything(self, reddit):
        self._populate(reddit, 230)
        seen = list(reddit.iterate_all("SuicideWatch", page_size=100))
        assert len(seen) == 230
        assert len({p.post_id for p in seen}) == 230

    def test_api_calls_counted(self, reddit):
        self._populate(reddit, 230)
        before = reddit.api_calls
        list(reddit.iterate_all("SuicideWatch", page_size=100))
        assert reddit.api_calls - before == 3


class TestCrawl:
    def test_crawl_filters_window_and_sorts(self, reddit):
        inside = datetime(2020, 6, 1, tzinfo=timezone.utc)
        outside = datetime(2019, 6, 1, tzinfo=timezone.utc)
        reddit.submit(make_post(reddit, when=inside))
        reddit.submit(make_post(reddit, when=outside))
        reddit.submit(make_post(reddit, when=inside + timedelta(days=1)))
        got = crawl(
            reddit,
            "SuicideWatch",
            datetime(2020, 1, 1, tzinfo=timezone.utc),
            datetime(2021, 1, 1, tzinfo=timezone.utc),
        )
        assert len(got) == 2
        assert got[0].created_utc <= got[1].created_utc

    def test_crawl_rejects_inverted_window(self, reddit):
        when = datetime(2020, 1, 1, tzinfo=timezone.utc)
        with pytest.raises(CorpusError):
            crawl(reddit, "SuicideWatch", when, when)
