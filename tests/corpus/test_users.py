"""Tests for user-level simulation (risk chains, posting habits)."""

import numpy as np
import pytest

from repro.core.config import CorpusConfig
from repro.core.schema import ALL_LEVELS, NUM_CLASSES, RiskLevel
from repro.corpus.models import UserProfile
from repro.corpus.users import (
    risk_transition_matrix,
    sample_gaps_hours,
    sample_post_hours,
    sample_posts_per_user,
    sample_profiles,
    sample_trajectory,
)

MIX = CorpusConfig().label_mix


class TestTransitionMatrix:
    def test_rows_are_distributions(self):
        kernel = risk_transition_matrix(MIX)
        assert kernel.shape == (NUM_CLASSES, NUM_CLASSES)
        assert np.allclose(kernel.sum(axis=1), 1.0)
        assert (kernel >= 0).all()

    def test_stationary_distribution_is_label_mix(self):
        kernel = risk_transition_matrix(MIX)
        mix = np.array([MIX[lv] for lv in ALL_LEVELS])
        assert np.allclose(mix @ kernel, mix, atol=1e-12)

    def test_self_transitions_dominate(self):
        kernel = risk_transition_matrix(MIX)
        for i in range(NUM_CLASSES):
            assert kernel[i, i] == max(kernel[i])


class TestPostsPerUser:
    def test_total_matches_target(self, rng):
        counts = sample_posts_per_user(rng, 200, 2300)
        assert counts.sum() == 2300

    def test_minimum_one_post(self, rng):
        counts = sample_posts_per_user(rng, 300, 400)
        assert counts.min() >= 1

    def test_majority_under_20(self, rng):
        counts = sample_posts_per_user(rng, 1000, 11_500)
        assert (counts < 20).mean() > 0.6

    def test_heavy_tail_exists(self, rng):
        counts = sample_posts_per_user(rng, 1000, 11_500)
        assert counts.max() > 40

    def test_rejects_infeasible_target(self, rng):
        with pytest.raises(ValueError):
            sample_posts_per_user(rng, 10, 5)

    def test_rejects_zero_users(self, rng):
        with pytest.raises(ValueError):
            sample_posts_per_user(rng, 0, 5)


class TestProfiles:
    def test_population_shape(self, rng):
        profiles = sample_profiles(rng, 100, 1200, MIX, temporal_strength=0.7)
        assert len(profiles) == 100
        assert sum(p.num_posts for p in profiles) == 1200

    def test_severity_couples_to_night_owl(self, rng):
        profiles = sample_profiles(rng, 2000, 24_000, MIX, temporal_strength=1.0)
        by_level = {}
        for p in profiles:
            by_level.setdefault(p.base_level, []).append(p.night_owl)
        assert np.mean(by_level[RiskLevel.ATTEMPT]) > np.mean(
            by_level[RiskLevel.INDICATOR]
        )

    def test_severity_couples_to_gap(self, rng):
        profiles = sample_profiles(rng, 2000, 24_000, MIX, temporal_strength=1.0)
        by_level = {}
        for p in profiles:
            by_level.setdefault(p.base_level, []).append(p.mean_gap_hours)
        assert np.mean(by_level[RiskLevel.ATTEMPT]) < np.mean(
            by_level[RiskLevel.INDICATOR]
        )

    def test_no_temporal_coupling_when_disabled(self, rng):
        profiles = sample_profiles(rng, 3000, 36_000, MIX, temporal_strength=0.0)
        by_level = {}
        for p in profiles:
            by_level.setdefault(p.base_level, []).append(p.night_owl)
        means = [np.mean(v) for v in by_level.values()]
        assert max(means) - min(means) < 0.08


class TestTrajectory:
    def _profile(self, n=50):
        return UserProfile(
            author="u", base_level=RiskLevel.IDEATION, num_posts=n,
            night_owl=0.3, mean_gap_hours=24.0,
        )

    def test_length(self, rng):
        kernel = risk_transition_matrix(MIX)
        traj = sample_trajectory(rng, self._profile(17), kernel)
        assert len(traj.levels) == 17

    def test_starts_at_base_level(self, rng):
        kernel = risk_transition_matrix(MIX)
        traj = sample_trajectory(rng, self._profile(), kernel)
        assert traj.levels[0] is RiskLevel.IDEATION

    def test_persistence(self, rng):
        kernel = risk_transition_matrix(MIX)
        traj = sample_trajectory(rng, self._profile(500), kernel)
        same = np.mean(
            [a == b for a, b in zip(traj.levels, traj.levels[1:])]
        )
        assert same > 0.5  # lazy chain: mostly self-transitions


class TestTiming:
    def test_hours_in_range(self, rng):
        hours = sample_post_hours(rng, UserProfile("u", RiskLevel.IDEATION, 5, 0.5, 24.0), 500)
        assert ((hours >= 0) & (hours < 24)).all()

    def test_night_owls_post_at_night(self, rng):
        owl = UserProfile("u", RiskLevel.ATTEMPT, 5, 0.95, 24.0)
        lark = UserProfile("u", RiskLevel.INDICATOR, 5, 0.0, 24.0)
        owl_hours = sample_post_hours(rng, owl, 500)
        lark_hours = sample_post_hours(rng, lark, 500)
        night = lambda h: ((h >= 23) | (h < 5)).mean()
        assert night(owl_hours) > 0.7
        assert night(lark_hours) < 0.1

    def test_gaps_positive_and_length(self, rng):
        profile = UserProfile("u", RiskLevel.IDEATION, 9, 0.3, 24.0)
        kernel = risk_transition_matrix(MIX)
        traj = sample_trajectory(rng, profile, kernel)
        gaps = sample_gaps_hours(rng, profile, traj, 0.7)
        assert len(gaps) == 8
        assert (gaps > 0).all()

    def test_single_post_has_no_gaps(self, rng):
        profile = UserProfile("u", RiskLevel.IDEATION, 1, 0.3, 24.0)
        kernel = risk_transition_matrix(MIX)
        traj = sample_trajectory(rng, profile, kernel)
        assert sample_gaps_hours(rng, profile, traj, 0.7).size == 0
