"""Property-based tests of corpus-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CorpusConfig
from repro.core.schema import ALL_LEVELS
from repro.corpus.users import (
    risk_transition_matrix,
    sample_posts_per_user,
)

MIX = CorpusConfig().label_mix


class TestPostsPerUserProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(5, 120),
        st.integers(2, 20),
        st.integers(0, 2**31 - 1),
    )
    def test_total_and_bounds(self, users, avg, seed):
        rng = np.random.default_rng(seed)
        target = users * avg
        counts = sample_posts_per_user(rng, users, target)
        assert counts.sum() == target
        assert counts.min() >= 1
        assert counts.max() <= 200


class TestTransitionMatrixProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(0.01, 1.0), min_size=4, max_size=4
        )
    )
    def test_any_mix_is_stationary(self, raw):
        total = sum(raw)
        mix = {lv: w / total for lv, w in zip(ALL_LEVELS, raw)}
        kernel = risk_transition_matrix(mix)
        pi = np.array([mix[lv] for lv in ALL_LEVELS])
        assert np.allclose(pi @ kernel, pi, atol=1e-12)
        assert np.allclose(kernel.sum(axis=1), 1.0)
        assert (kernel >= 0).all()
