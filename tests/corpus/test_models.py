"""Tests for corpus record types."""

from datetime import datetime, timezone

import pytest

from repro.corpus.models import RedditPost, UserHistory, utc_from_timestamp

T0 = datetime(2020, 5, 1, 12, 0, tzinfo=timezone.utc)


def make_post(pid="p1", title="Title", body="Body", when=T0):
    return RedditPost(
        post_id=pid, author="a", subreddit="s", title=title, body=body,
        created_utc=when,
    )


class TestRedditPost:
    def test_text_joins_title_and_body(self):
        assert make_post().text == "Title\nBody"

    def test_text_title_only(self):
        assert make_post(body="").text == "Title"

    def test_text_body_only(self):
        assert make_post(title="").text == "Body"

    def test_timestamp(self):
        assert make_post().timestamp == T0.timestamp()

    def test_with_body_is_copy(self):
        post = make_post()
        new = post.with_body("other")
        assert new.body == "other"
        assert post.body == "Body"
        assert new.post_id == post.post_id

    def test_with_author_is_copy(self):
        post = make_post()
        new = post.with_author("anon")
        assert new.author == "anon"
        assert post.author == "a"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_post().body = "mutate"


class TestUserHistory:
    def test_add_keeps_sorted(self):
        history = UserHistory("a")
        later = make_post("p2", when=T0.replace(day=9))
        earlier = make_post("p1")
        history.add(later)
        history.add(earlier)
        assert [p.post_id for p in history.posts] == ["p1", "p2"]

    def test_latest(self):
        history = UserHistory("a", [make_post("p1")])
        history.add(make_post("p2", when=T0.replace(day=20)))
        assert history.latest.post_id == "p2"

    def test_latest_empty_raises(self):
        with pytest.raises(ValueError):
            _ = UserHistory("a").latest

    def test_len(self):
        assert len(UserHistory("a", [make_post()])) == 1


class TestHelpers:
    def test_utc_from_timestamp_roundtrip(self):
        ts = T0.timestamp()
        back = utc_from_timestamp(ts)
        assert back == T0
        assert back.tzinfo is not None
