"""Tests for the TF-IDF vectoriser."""

import math

import numpy as np
import pytest

from repro.core.errors import NotFittedError
from repro.text.tfidf import TfidfVectorizer

DOCS = [
    "the cat sat on the mat",
    "the dog sat on the log",
    "cats and dogs living together",
    "a cat a dog a mat a log",
]


class TestFit:
    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TfidfVectorizer().transform(DOCS)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfidfVectorizer().fit([])

    def test_min_df_filters_rare_terms(self):
        vec = TfidfVectorizer(min_df=2, drop_stopwords=False).fit(DOCS)
        assert "together" not in vec.vocabulary_
        assert "cat" in vec.vocabulary_

    def test_max_df_filters_ubiquitous_terms(self):
        vec = TfidfVectorizer(
            min_df=1, max_df=0.5, drop_stopwords=False
        ).fit(DOCS)
        assert "sat" in vec.vocabulary_  # df = 2/4
        # "the" appears in 2 docs -> kept; "on" in 2 -> kept; a term in 3+:
        assert "log" in vec.vocabulary_ or True

    def test_max_features_cap(self):
        vec = TfidfVectorizer(max_features=3, min_df=1).fit(DOCS)
        assert len(vec.vocabulary_) == 3

    def test_invalid_ngram_range(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(ngram_range=(2, 1))


class TestTransform:
    def test_rows_are_unit_norm(self):
        matrix = TfidfVectorizer(min_df=1).fit_transform(DOCS).toarray()
        norms = np.linalg.norm(matrix, axis=1)
        nonzero = norms > 0
        assert np.allclose(norms[nonzero], 1.0)

    def test_shape(self):
        vec = TfidfVectorizer(min_df=1)
        matrix = vec.fit_transform(DOCS)
        assert matrix.shape == (len(DOCS), len(vec.vocabulary_))

    def test_manual_idf_value(self):
        vec = TfidfVectorizer(min_df=1, drop_stopwords=False, sublinear_tf=False)
        vec.fit(DOCS)
        idx = vec.vocabulary_["sat"]  # appears in 2 of 4 docs
        expected = math.log((1 + 4) / (1 + 2)) + 1.0
        assert vec.idf_[idx] == pytest.approx(expected)

    def test_unseen_terms_ignored(self):
        vec = TfidfVectorizer(min_df=1).fit(DOCS)
        row = vec.transform(["zebra quagga"]).toarray()
        assert row.sum() == 0.0

    def test_bigrams(self):
        vec = TfidfVectorizer(
            min_df=1, ngram_range=(1, 2), drop_stopwords=False
        ).fit(DOCS)
        assert any(" " in term for term in vec.vocabulary_)

    def test_feature_names_align(self):
        vec = TfidfVectorizer(min_df=1).fit(DOCS)
        names = vec.feature_names()
        assert len(names) == len(vec.vocabulary_)
        for term, idx in vec.vocabulary_.items():
            assert names[idx] == term

    def test_sublinear_dampens_repeats(self):
        vec = TfidfVectorizer(
            min_df=1, max_df=1.0, drop_stopwords=False, sublinear_tf=True
        )
        vec.fit(["word word word word other", "unrelated text"])
        dense = vec.transform(["word word word word other"]).toarray()[0]
        ratio = dense[vec.vocabulary_["word"]] / dense[vec.vocabulary_["other"]]
        assert ratio < 4.0
