"""Batched TF-IDF transform vs the per-document Counter reference."""

import numpy as np
import pytest

from repro.text.tfidf import TfidfVectorizer

DOCS = [
    "the cat sat on the mat",
    "the dog sat on the log",
    "cats and dogs and cats again",
    "a completely unrelated sentence about boats",
    "the the the repeated token stress test the",
]


def assert_same_csr(fast, slow):
    assert fast.shape == slow.shape
    np.testing.assert_array_equal(fast.indptr, slow.indptr)
    np.testing.assert_array_equal(fast.indices, slow.indices)
    np.testing.assert_allclose(fast.data, slow.data, atol=1e-8)


class TestTransformEquivalence:
    @pytest.mark.parametrize("sublinear", [True, False])
    def test_matches_reference(self, sublinear):
        vec = TfidfVectorizer(
            min_df=1, sublinear_tf=sublinear, drop_stopwords=False
        )
        vec.fit(DOCS)
        assert_same_csr(vec.transform(DOCS), vec._transform_reference(DOCS))

    def test_bigrams_match(self):
        vec = TfidfVectorizer(min_df=1, ngram_range=(1, 2), drop_stopwords=False)
        vec.fit(DOCS)
        assert_same_csr(vec.transform(DOCS), vec._transform_reference(DOCS))

    def test_out_of_vocabulary_and_empty_docs(self):
        vec = TfidfVectorizer(min_df=1, drop_stopwords=False)
        vec.fit(DOCS)
        queries = ["", "zzz qqq unseen tokens only", "the cat", "   "]
        assert_same_csr(
            vec.transform(queries), vec._transform_reference(queries)
        )

    def test_all_empty_batch(self):
        vec = TfidfVectorizer(min_df=1, drop_stopwords=False)
        vec.fit(DOCS)
        fast = vec.transform(["", ""])
        slow = vec._transform_reference(["", ""])
        assert fast.shape == slow.shape
        assert fast.nnz == slow.nnz == 0

    def test_fit_transform_uses_fast_path(self):
        vec = TfidfVectorizer(min_df=1, drop_stopwords=False)
        matrix = vec.fit_transform(DOCS)
        # L2-normalised rows
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
        np.testing.assert_allclose(norms[norms > 0], 1.0, atol=1e-8)
