"""Tests for the vocabulary."""

import pytest

from repro.core.errors import VocabularyError
from repro.text.vocab import BOS, EOS, MASK, PAD, SPECIAL_TOKENS, UNK, Vocabulary


class TestConstruction:
    def test_specials_have_fixed_ids(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.bos_id == 2
        assert vocab.eos_id == 3
        assert vocab.mask_id == 4

    def test_build_frequency_sorted(self):
        vocab = Vocabulary.build([["b", "a", "a"], ["a", "b", "c"]])
        # 'a' (3) before 'b' (2) before 'c' (1)
        assert vocab.id_of("a") < vocab.id_of("b") < vocab.id_of("c")

    def test_min_freq(self):
        vocab = Vocabulary.build([["a", "a", "b"]], min_freq=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_max_size_includes_specials(self):
        vocab = Vocabulary.build([[f"w{i}" for i in range(100)]], max_size=10)
        assert len(vocab) == 10

    def test_duplicate_token_ignored(self):
        vocab = Vocabulary(["x", "x"])
        assert len(vocab) == len(SPECIAL_TOKENS) + 1


class TestMapping:
    @pytest.fixture()
    def vocab(self):
        return Vocabulary(["alpha", "beta"])

    def test_roundtrip(self, vocab):
        ids = vocab.encode(["alpha", "beta"])
        assert vocab.decode(ids) == ["alpha", "beta"]

    def test_unknown_maps_to_unk(self, vocab):
        assert vocab.id_of("gamma") == vocab.unk_id

    def test_encode_with_specials(self, vocab):
        ids = vocab.encode(["alpha"], add_special=True)
        assert ids[0] == vocab.bos_id
        assert ids[-1] == vocab.eos_id

    def test_decode_keeps_specials_when_asked(self, vocab):
        ids = vocab.encode(["alpha"], add_special=True)
        tokens = vocab.decode(ids, skip_special=False)
        assert tokens == [BOS, "alpha", EOS]

    def test_token_of_out_of_range(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.token_of(10_000)

    def test_contains(self, vocab):
        assert "alpha" in vocab
        assert "delta" not in vocab
        assert PAD in vocab and UNK in vocab and MASK in vocab

    def test_tokens_listing(self, vocab):
        tokens = vocab.tokens()
        assert tokens[:5] == list(SPECIAL_TOKENS)
        assert tokens[5:] == ["alpha", "beta"]
