"""Tests for skip-gram negative-sampling embeddings."""

import numpy as np
import pytest

from repro.text.embeddings import (
    SGNSConfig,
    SkipGramEmbeddings,
    train_embeddings,
)
from repro.text.vocab import Vocabulary

# A corpus with obvious co-occurrence structure: 'cat'/'dog' share contexts,
# 'stock'/'bond' share different contexts.
ANIMAL = ["the cat chased the ball", "the dog chased the ball",
          "a cat sleeps all day", "a dog sleeps all day"]
FINANCE = ["the stock market rallied today", "the bond market rallied today",
           "buy stock and hold it", "buy bond and hold it"]
CORPUS = (ANIMAL + FINANCE) * 30


@pytest.fixture(scope="module")
def embeddings():
    config = SGNSConfig(dim=24, epochs=3, window=2, seed=3)
    return train_embeddings(CORPUS, config=config)


class TestTraining:
    def test_loss_decreases(self, embeddings):
        pass  # trained in fixture; loss check below uses fresh run

    def test_loss_trace_decreases(self):
        config = SGNSConfig(dim=16, epochs=2, seed=0)
        emb = train_embeddings(CORPUS, config=config)
        # compare first-decile mean to last-decile mean
        # (individual batches are noisy)
        # Re-run train to capture trace:
        from repro.text.tokenizer import WordTokenizer
        vocab = emb.vocab
        tok = WordTokenizer()
        seqs = [[vocab.id_of(t) for t in tok(x)] for x in CORPUS]
        fresh = SkipGramEmbeddings(vocab, config)
        result = fresh.train(seqs)
        n = len(result.losses)
        assert np.mean(result.losses[-n // 5 :]) < np.mean(
            result.losses[: n // 5]
        )

    def test_vector_shapes(self, embeddings):
        assert embeddings.vectors.shape[1] == 24
        assert embeddings.vector("cat").shape == (24,)

    def test_empty_corpus_rejected(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(ValueError):
            SkipGramEmbeddings(vocab).train([])


class TestSemantics:
    def test_shared_context_words_are_similar(self, embeddings):
        same_domain = embeddings.similarity("cat", "dog")
        cross_domain = embeddings.similarity("cat", "stock")
        assert same_domain > cross_domain

    def test_most_similar_excludes_self(self, embeddings):
        neighbours = [t for t, _ in embeddings.most_similar("cat", k=5)]
        assert "cat" not in neighbours

    def test_most_similar_finds_paradigm_mate(self, embeddings):
        neighbours = [t for t, _ in embeddings.most_similar("stock", k=3)]
        assert "bond" in neighbours

    def test_similarity_bounded(self, embeddings):
        value = embeddings.similarity("cat", "ball")
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_unknown_token_maps_to_unk(self, embeddings):
        assert np.allclose(
            embeddings.vector("zzzunknown"),
            embeddings.vectors[embeddings.vocab.unk_id],
        )
