"""Incremental BPE trainer vs the retained full-rescan reference."""

import time
from collections import Counter

import numpy as np
import pytest

from repro.text.bpe import BPETokenizer


def _random_corpus(num_texts=400, seed=0):
    rng = np.random.default_rng(seed)
    letters = list("abcdefghij")
    words = [
        "".join(rng.choice(letters, size=rng.integers(2, 9)))
        for _ in range(150)
    ]
    return [
        " ".join(rng.choice(words, size=rng.integers(3, 12)))
        for _ in range(num_texts)
    ]


@pytest.mark.parametrize(
    "texts",
    [
        ["the cat sat on the mat", "the cat ran", "a cat sat"],
        # Repeated symbols: merges overlap within one word.
        ["aaaa aaaa banana", "aa aaa banana bandana"],
        # Single word corpus, merges collapse the whole word.
        ["abcabcabc abcabcabc abcabc"],
    ],
)
def test_merge_tables_match_reference(texts):
    fast = BPETokenizer(num_merges=50).train(texts)
    ref = BPETokenizer(num_merges=50)._train_reference(texts)
    assert fast.merges == ref.merges


def test_merge_tables_match_on_random_corpus():
    texts = _random_corpus()
    fast = BPETokenizer(num_merges=300).train(texts)
    ref = BPETokenizer(num_merges=300)._train_reference(texts)
    assert fast.merges == ref.merges
    sample = texts[:20]
    assert [fast.tokenize(t) for t in sample] == [
        ref.tokenize(t) for t in sample
    ]


def test_train_from_frequencies_matches_train():
    texts = ["sing a song of sixpence", "a pocket full of rye"]
    bpe_texts = BPETokenizer(num_merges=40).train(texts)
    word_freq = BPETokenizer(num_merges=40)._word_frequencies(texts)
    bpe_freq = BPETokenizer(num_merges=40).train_from_frequencies(word_freq)
    assert bpe_texts.merges == bpe_freq.merges


def test_merges_stop_below_min_count():
    # Every pair unique → counts of 1 → nothing merged.
    fast = BPETokenizer(num_merges=10).train(["abcdefg"])
    ref = BPETokenizer(num_merges=10)._train_reference(["abcdefg"])
    assert fast.merges == ref.merges == {}


def test_tokenize_requires_training():
    with pytest.raises(RuntimeError):
        BPETokenizer().tokenize("hello")


def test_encode_cache_is_bounded():
    bpe = BPETokenizer(num_merges=20, cache_size=8)
    bpe.train(["some words to learn merges from words words"])
    for i in range(50):
        bpe.tokenize(f"word{i}")
    stats = bpe._cache.stats()
    assert stats["size"] <= 8
    assert stats["evictions"] > 0


def test_cache_cleared_on_retrain():
    bpe = BPETokenizer(num_merges=20)
    bpe.train(["aa ab aa ab"])
    bpe.tokenize("aa")
    assert len(bpe._cache) > 0
    bpe.train(["cc cd cc cd"])
    assert len(bpe._cache) == 0


@pytest.mark.perf_smoke
def test_incremental_train_is_faster():
    word_freq = Counter()
    rng = np.random.default_rng(1)
    letters = np.array(list("abcdefghijklmnopqrstuvwxyz"))
    for _ in range(2000):
        word = "".join(rng.choice(letters, size=int(rng.integers(4, 12))))
        word_freq[word] += int(rng.integers(2, 30))

    start = time.perf_counter()
    fast = BPETokenizer(num_merges=500).train_from_frequencies(word_freq)
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    ref = BPETokenizer(num_merges=500)._train_reference_from_frequencies(
        word_freq
    )
    ref_s = time.perf_counter() - start
    assert fast.merges == ref.merges
    assert ref_s / fast_s > 3.0  # conservative floor; bench shows far more
