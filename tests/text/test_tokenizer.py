"""Tests for word/sentence tokenisation."""

from repro.text.tokenizer import (
    STOPWORDS,
    WordTokenizer,
    content_words,
    sentences,
)


class TestWordTokenizer:
    def test_basic_split(self):
        assert WordTokenizer()("hello world") == ["hello", "world"]

    def test_lowercases(self):
        assert WordTokenizer()("Hello WORLD") == ["hello", "world"]

    def test_contractions_expanded(self):
        assert WordTokenizer()("I can't") == ["i", "can", "not"]

    def test_punctuation_dropped_by_default(self):
        assert WordTokenizer()("stop. now!") == ["stop", "now"]

    def test_punctuation_kept_when_requested(self):
        tokens = WordTokenizer(keep_punctuation=True)("stop. now!")
        assert "." in tokens and "!" in tokens

    def test_numbers_preserved(self):
        assert "42" in WordTokenizer()("I am 42 years old")

    def test_empty_text(self):
        assert WordTokenizer()("") == []

    def test_apostrophe_words(self):
        # Possessives survive as single tokens after normalisation.
        tokens = WordTokenizer()("my friend's note")
        assert "friend's" in tokens


class TestSentences:
    def test_splits_on_terminals(self):
        got = sentences("First one. Second one! Third one?")
        assert len(got) == 3

    def test_single_sentence(self):
        assert sentences("just one") == ["just one"]

    def test_empty(self):
        assert sentences("  ") == []


class TestContentWords:
    def test_removes_stopwords(self):
        got = content_words("I am not the only one feeling hopeless")
        assert "the" not in got
        assert "hopeless" in got

    def test_removes_digits(self):
        assert "42" not in content_words("42 days of feeling empty")

    def test_stopword_list_sane(self):
        assert "the" in STOPWORDS
        assert "hopeless" not in STOPWORDS
