"""Tests for text statistical features."""

import numpy as np
import pytest

from repro.text.stats import TextStats, stats_matrix, text_stats


class TestTextStats:
    def test_counts(self):
        stats = text_stats("I am tired. Are you tired?")
        assert stats.num_sentences == 2
        assert stats.num_words > 0
        assert stats.question_marks == 1

    def test_first_person_ratio(self):
        high = text_stats("i feel like i am losing my mind and i hate it")
        low = text_stats("they said he went to the store with her")
        assert high.first_person_ratio > low.first_person_ratio

    def test_negation_ratio(self):
        stats = text_stats("no I will not do it, never")
        assert stats.negation_ratio > 0.2

    def test_absolutist_ratio(self):
        stats = text_stats("everything is always completely ruined")
        assert stats.absolutist_ratio > 0.4

    def test_uppercase_ratio(self):
        assert text_stats("HELP ME NOW").uppercase_ratio == 1.0
        assert text_stats("quiet text").uppercase_ratio == 0.0

    def test_type_token_ratio_bounds(self):
        stats = text_stats("word word word word")
        assert stats.type_token_ratio == pytest.approx(0.25)

    def test_empty_text(self):
        stats = text_stats("")
        assert stats.num_words == 0
        assert stats.avg_word_length == 0.0

    def test_vector_matches_names(self):
        stats = text_stats("some example text here")
        vec = stats.as_vector()
        assert vec.shape == (len(TextStats.feature_names()),)
        assert np.isfinite(vec).all()


class TestStatsMatrix:
    def test_shape(self):
        matrix = stats_matrix(["one text", "another longer text here"])
        assert matrix.shape == (2, len(TextStats.feature_names()))

    def test_empty_input(self):
        matrix = stats_matrix([])
        assert matrix.shape == (0, len(TextStats.feature_names()))

    def test_length_feature_orders(self):
        matrix = stats_matrix(["short", "a much longer text with many words"])
        idx = TextStats.feature_names().index("num_words")
        assert matrix[1, idx] > matrix[0, idx]
