"""Tests for the BPE subword tokeniser."""

import pytest

from repro.text.bpe import END_OF_WORD, BPETokenizer


CORPUS = [
    "the lowest point of the night",
    "lower and lower every night",
    "the new lowest low",
    "newest news of the new day",
]


@pytest.fixture(scope="module")
def bpe():
    return BPETokenizer(num_merges=60).train(CORPUS)


class TestTraining:
    def test_learns_merges(self, bpe):
        assert len(bpe.merges) > 0

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            BPETokenizer().tokenize("text")

    def test_invalid_num_merges(self):
        with pytest.raises(ValueError):
            BPETokenizer(num_merges=0)

    def test_merge_count_bounded(self):
        bpe = BPETokenizer(num_merges=5).train(CORPUS)
        assert len(bpe.merges) <= 5


class TestEncoding:
    def test_roundtrip_surface_form(self, bpe):
        pieces = bpe.tokenize("the lowest night")
        rebuilt = "".join(pieces).replace(END_OF_WORD, " ").strip()
        assert rebuilt == "the lowest night"

    def test_word_final_marker(self, bpe):
        pieces = bpe.tokenize("low")
        assert pieces[-1].endswith(END_OF_WORD)

    def test_frequent_words_become_single_pieces(self, bpe):
        # "the" appears often; it should merge into one piece.
        assert bpe.tokenize("the") == ["the" + END_OF_WORD]

    def test_unseen_word_splits_into_pieces(self, bpe):
        pieces = bpe.tokenize("zzzqqq")
        assert len(pieces) >= 2

    def test_deterministic(self, bpe):
        assert bpe.tokenize("lower the news") == bpe.tokenize("lower the news")

    def test_cache_consistency(self, bpe):
        first = bpe.tokenize("lowest")
        second = bpe.tokenize("lowest")
        assert first == second

    def test_vocabulary_tokens(self, bpe):
        pieces = bpe.vocabulary_tokens(CORPUS)
        assert pieces == sorted(pieces)
        assert all(isinstance(p, str) for p in pieces)
