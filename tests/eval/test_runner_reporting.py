"""Tests for the multi-run runner and report exporters."""

import json

import numpy as np
import pytest

from repro.boosting import GBMParams
from repro.core.errors import ExperimentError
from repro.eval.metrics import EvalReport
from repro.eval.reporting import to_csv, to_json, to_markdown
from repro.eval.runner import MultiRunResult, evaluate_model, run_repeated


@pytest.fixture(scope="module")
def reports():
    y_true = [0, 1, 2, 3, 1, 1, 0, 2]
    y_pred = [0, 1, 2, 3, 1, 0, 0, 2]
    return [
        EvalReport.compute("ModelA", y_true, y_pred),
        EvalReport.compute("ModelB", y_true, y_true),
    ]


class TestReporting:
    def test_markdown_shape(self, reports):
        md = to_markdown(reports)
        lines = md.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| Model")
        assert "ModelA" in md and "ModelB" in md

    def test_csv_parses(self, reports):
        import csv as _csv
        import io

        rows = list(_csv.DictReader(io.StringIO(to_csv(reports))))
        assert len(rows) == 2
        assert rows[1]["Acc_pct"] == "100.0"

    def test_json_roundtrip(self, reports):
        payload = json.loads(to_json(reports))
        assert payload[0]["model"] == "ModelA"
        assert payload[1]["accuracy"] == 1.0
        assert len(payload[0]["confusion"]) == 4
        assert set(payload[0]["class_f1"]) == {"IN", "ID", "BR", "AT"}


class TestRunner:
    def test_evaluate_model(self, small_splits):
        report = evaluate_model(
            "xgboost",
            small_splits.train,
            small_splits.validation,
            small_splits.test,
            params=GBMParams(n_estimators=6, max_depth=3),
            max_tfidf_features=60,
        )
        assert 0.0 <= report.accuracy <= 1.0

    def test_run_repeated_aggregates(self, small_splits):
        result = run_repeated(
            "bilstm",
            small_splits,
            seeds=(0, 1),
            max_vocab=200,
        )
        assert len(result.reports) == 2
        summary = result.summary("accuracy")
        assert summary.mean == pytest.approx(
            np.mean(summary.values)
        )
        assert isinstance(result.stable, bool)
        assert "accuracy" in str(summary)

    def test_no_seeds_rejected(self, small_splits):
        with pytest.raises(ExperimentError):
            run_repeated("xgboost", small_splits, seeds=())

    def test_empty_result_summary_rejected(self):
        with pytest.raises(ExperimentError):
            MultiRunResult(model="x").summary()
