"""Tests for calibration diagnostics."""

import numpy as np
import pytest

from repro.eval.calibration import (
    apply_temperature,
    brier_score,
    calibration_report,
    expected_calibration_error,
    maximum_calibration_error,
    reliability_bins,
    temperature_scale,
)


def perfect_probs(n=400, classes=4, seed=0):
    """Synthetic perfectly calibrated predictions."""
    rng = np.random.default_rng(seed)
    probs = rng.dirichlet(np.ones(classes), size=n)
    targets = np.array([rng.choice(classes, p=p) for p in probs])
    return probs, targets


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            brier_score(np.ones(4), np.zeros(4, dtype=int))

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError):
            brier_score(np.ones((3, 4)), np.zeros(3, dtype=int))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            brier_score(np.zeros((0, 4)), np.zeros(0, dtype=int))


class TestECE:
    def test_perfectly_calibrated_low_ece(self):
        probs, targets = perfect_probs(n=4000)
        assert expected_calibration_error(probs, targets) < 0.08

    def test_overconfident_high_ece(self):
        n = 200
        probs = np.tile([0.97, 0.01, 0.01, 0.01], (n, 1))
        rng = np.random.default_rng(1)
        targets = rng.choice(4, size=n)  # accuracy only ~25%
        assert expected_calibration_error(probs, targets) > 0.5

    def test_oracle_ece_zero(self):
        probs = np.eye(4)[np.array([0, 1, 2, 3] * 10)]
        targets = np.array([0, 1, 2, 3] * 10)
        assert expected_calibration_error(probs, targets) == pytest.approx(0.0)

    def test_mce_at_least_ece(self):
        probs, targets = perfect_probs(n=500, seed=3)
        assert maximum_calibration_error(probs, targets) >= (
            expected_calibration_error(probs, targets) - 1e-12
        )


class TestBins:
    def test_counts_cover_samples(self):
        probs, targets = perfect_probs(n=300)
        bins = reliability_bins(probs, targets)
        assert sum(b.count for b in bins) == 300

    def test_bin_edges(self):
        probs, targets = perfect_probs(n=50)
        bins = reliability_bins(probs, targets, num_bins=5)
        assert len(bins) == 5
        assert bins[0].lower == 0.0
        assert bins[-1].upper == 1.0


class TestBrier:
    def test_oracle_zero(self):
        probs = np.eye(4)[np.array([1, 2])]
        assert brier_score(probs, np.array([1, 2])) == pytest.approx(0.0)

    def test_uniform_value(self):
        probs = np.full((10, 4), 0.25)
        targets = np.zeros(10, dtype=int)
        # (0.75² + 3·0.25²) = 0.75
        assert brier_score(probs, targets) == pytest.approx(0.75)


class TestTemperature:
    def test_overconfident_model_wants_t_above_one(self):
        n = 400
        rng = np.random.default_rng(2)
        targets = rng.choice(4, size=n)
        # confident but only 40% accurate
        correct = rng.random(n) < 0.4
        probs = np.full((n, 4), 0.02)
        for i in range(n):
            winner = targets[i] if correct[i] else (targets[i] + 1) % 4
            probs[i, winner] = 0.94
        t = temperature_scale(probs, targets)
        assert t > 1.0

    def test_apply_temperature_normalised(self):
        probs, _ = perfect_probs(n=20)
        scaled = apply_temperature(probs, 2.0)
        assert np.allclose(scaled.sum(axis=1), 1.0)

    def test_high_temperature_flattens(self):
        probs = np.array([[0.9, 0.05, 0.03, 0.02]])
        hot = apply_temperature(probs, 10.0)
        assert hot.max() < probs.max()

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            apply_temperature(np.full((1, 4), 0.25), 0.0)

    def test_scaling_improves_ece_of_overconfident_model(self):
        n = 600
        rng = np.random.default_rng(5)
        targets = rng.choice(4, size=n)
        correct = rng.random(n) < 0.5
        probs = np.full((n, 4), 1e-3)
        for i in range(n):
            winner = targets[i] if correct[i] else (targets[i] + 1) % 4
            probs[i, winner] = 1.0 - 3e-3
        t = temperature_scale(probs, targets)
        before = expected_calibration_error(probs, targets)
        after = expected_calibration_error(
            apply_temperature(probs, t), targets
        )
        assert after < before


class TestReport:
    def test_fields_consistent(self):
        probs, targets = perfect_probs(n=200, seed=7)
        report = calibration_report(probs, targets)
        assert report.ece == pytest.approx(
            expected_calibration_error(probs, targets)
        )
        assert report.mce >= report.ece - 1e-12
        assert len(report.bins) == 10
