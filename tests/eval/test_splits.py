"""Tests for user-disjoint splits."""

from datetime import datetime, timedelta, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SplitConfig
from repro.core.errors import SplitError
from repro.core.schema import RiskLevel
from repro.corpus.models import RedditPost
from repro.eval.splits import WindowSplits, split_users, split_windows
from repro.temporal.windows import PostWindow

T0 = datetime(2020, 1, 1, tzinfo=timezone.utc)


def make_window(author, i=0):
    post = RedditPost(
        post_id=f"{author}-{i}", author=author, subreddit="s", title="",
        body="b", created_utc=T0 + timedelta(days=i),
        oracle_label=RiskLevel.IDEATION,
    )
    return PostWindow(author=author, posts=(post,), label=RiskLevel.IDEATION)


class TestSplitUsers:
    def test_partitions_everyone(self):
        users = [f"u{i}" for i in range(100)]
        train, val, test = split_users(users)
        assert sorted(train + val + test) == sorted(users)

    def test_ratio_roughly_80_10_10(self):
        users = [f"u{i}" for i in range(200)]
        train, val, test = split_users(users)
        assert abs(len(train) - 160) <= 2
        assert abs(len(val) - 20) <= 2

    def test_deterministic_given_seed(self):
        users = [f"u{i}" for i in range(50)]
        assert split_users(users) == split_users(users)

    def test_seed_changes_assignment(self):
        users = [f"u{i}" for i in range(50)]
        a = split_users(users, SplitConfig(seed=1))
        b = split_users(users, SplitConfig(seed=2))
        assert a != b

    def test_too_few_users_rejected(self):
        with pytest.raises(SplitError):
            split_users(["a", "b"])

    def test_minimum_viable(self):
        train, val, test = split_users(["a", "b", "c"])
        assert train and val and test


class TestSplitWindows:
    def test_disjoint_verified(self):
        windows = [make_window(f"u{i}") for i in range(30)]
        splits = split_windows(windows)
        splits.verify_disjoint()

    def test_all_windows_kept(self):
        windows = [make_window(f"u{i % 10}", i) for i in range(40)]
        splits = split_windows(windows)
        assert sum(splits.sizes) == 40

    def test_same_user_stays_together(self):
        windows = [make_window("solo", i) for i in range(5)] + [
            make_window(f"u{i}") for i in range(20)
        ]
        splits = split_windows(windows)
        locations = [
            name
            for name, part in (
                ("train", splits.train),
                ("val", splits.validation),
                ("test", splits.test),
            )
            if any(w.author == "solo" for w in part)
        ]
        assert len(locations) == 1

    def test_verify_disjoint_catches_leak(self):
        leaky = WindowSplits(
            train=[make_window("x")], validation=[make_window("x")],
            test=[make_window("y")],
        )
        with pytest.raises(SplitError):
            leaky.verify_disjoint()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(10, 80))
    def test_disjointness_property(self, n_users):
        windows = [make_window(f"u{i}") for i in range(n_users)]
        splits = split_windows(windows)
        train = {w.author for w in splits.train}
        test = {w.author for w in splits.test}
        assert not train & test
