"""Parallel run_repeated must reproduce the serial reports bitwise."""

import pytest

from repro.core.errors import ExperimentError
from repro.eval.runner import _default_jobs, run_repeated


def _report_tuple(report):
    return (
        report.model,
        report.accuracy,
        report.macro_f1,
        tuple(sorted((int(k), v) for k, v in report.class_f1.items())),
        report.confusion.tobytes(),
    )


class TestParallelEquivalence:
    def test_parallel_matches_serial_bitwise(self, small_splits):
        seeds = (0, 1, 2)
        serial = run_repeated("logreg", small_splits, seeds=seeds, n_jobs=1)
        parallel = run_repeated("logreg", small_splits, seeds=seeds, n_jobs=2)
        assert len(serial.reports) == len(parallel.reports) == len(seeds)
        for a, b in zip(serial.reports, parallel.reports):
            assert _report_tuple(a) == _report_tuple(b)

    def test_seed_order_preserved(self, small_splits):
        result = run_repeated("logreg", small_splits, seeds=(3, 1), n_jobs=2)
        baseline = run_repeated("logreg", small_splits, seeds=(3, 1), n_jobs=1)
        values = result.summary("accuracy").values
        assert values == baseline.summary("accuracy").values

    def test_single_seed_stays_serial(self, small_splits):
        result = run_repeated("logreg", small_splits, seeds=(0,), n_jobs=4)
        assert len(result.reports) == 1


class TestValidation:
    def test_no_seeds_rejected(self, small_splits):
        with pytest.raises(ExperimentError):
            run_repeated("logreg", small_splits, seeds=())

    def test_bad_n_jobs_rejected(self, small_splits):
        with pytest.raises(ExperimentError):
            run_repeated("logreg", small_splits, seeds=(0,), n_jobs=0)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEED_JOBS", raising=False)
        assert _default_jobs() == 1
        monkeypatch.setenv("REPRO_SEED_JOBS", "3")
        assert _default_jobs() == 3

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED_JOBS", "lots")
        with pytest.raises(ExperimentError):
            _default_jobs()
        monkeypatch.setenv("REPRO_SEED_JOBS", "0")
        with pytest.raises(ExperimentError):
            _default_jobs()
