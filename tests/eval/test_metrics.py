"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schema import RiskLevel
from repro.eval.metrics import (
    EvalReport,
    accuracy,
    confusion_matrix,
    macro_f1,
    per_class_f1,
    precision_recall,
)


class TestConfusion:
    def test_counts(self):
        m = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2])
        assert m[0, 0] == 1 and m[0, 1] == 1 and m[1, 1] == 1 and m[2, 2] == 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_total_preserved(self):
        y = np.random.default_rng(0).integers(0, 4, 100)
        p = np.random.default_rng(1).integers(0, 4, 100)
        assert confusion_matrix(y, p).sum() == 100


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_empty(self):
        assert accuracy([], []) == 0.0

    def test_partial(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 1]) == 0.75


class TestF1:
    def test_manual_value(self):
        # class 0: tp=2, fp=1, fn=1 -> f1 = 4/(4+1+1) = 2/3
        y_true = [0, 0, 0, 1, 1, 2]
        y_pred = [0, 0, 1, 0, 1, 2]
        f1 = per_class_f1(y_true, y_pred)
        assert f1[0] == pytest.approx(2 / 3)
        assert f1[2] == pytest.approx(1.0)

    def test_absent_class_zero(self):
        f1 = per_class_f1([0, 0], [0, 0])
        assert f1[3] == 0.0

    def test_macro_is_mean(self):
        y_true = [0, 1, 2, 3]
        y_pred = [0, 1, 2, 0]
        assert macro_f1(y_true, y_pred) == pytest.approx(
            per_class_f1(y_true, y_pred).mean()
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=60),
    )
    def test_perfect_prediction_gives_macro_one_on_present_classes(self, ys):
        f1 = per_class_f1(ys, ys)
        present = np.unique(ys)
        assert np.allclose(f1[present], 1.0)


class TestPrecisionRecall:
    def test_values(self):
        precision, recall = precision_recall([0, 0, 1], [0, 1, 1])
        assert precision[1] == pytest.approx(0.5)
        assert recall[0] == pytest.approx(0.5)


class TestEvalReport:
    def test_compute_and_row(self):
        y_true = [0, 1, 2, 3, 1, 1]
        y_pred = [0, 1, 2, 3, 1, 0]
        report = EvalReport.compute("Toy", y_true, y_pred)
        assert report.accuracy == pytest.approx(5 / 6)
        row = report.as_row()
        assert row["Model"] == "Toy"
        assert row["Acc_pct"] == pytest.approx(100 * 5 / 6)
        assert set(report.support) == set(RiskLevel)
        assert report.support[RiskLevel.IDEATION] == 3

    def test_confusion_embedded(self):
        report = EvalReport.compute("Toy", [0, 1], [1, 1])
        assert report.confusion[0, 1] == 1
