"""Tests for the explanation module."""

import numpy as np
import pytest

from repro.boosting import GBMParams
from repro.core.errors import NotFittedError
from repro.core.schema import RiskLevel
from repro.eval.explain import RiskExplainer
from repro.models import XGBoostBaseline
from repro.models.logistic import LogisticBaseline


@pytest.fixture(scope="module")
def fitted_model(small_splits):
    model = XGBoostBaseline(
        params=GBMParams(n_estimators=8, max_depth=3), max_tfidf_features=80
    )
    model.fit(small_splits.train, small_splits.validation)
    return model


@pytest.fixture(scope="module")
def explainer(fitted_model, small_splits):
    return RiskExplainer(fitted_model, small_splits.train)


class TestGlobal:
    def test_importances_sorted(self, explainer):
        top = explainer.global_importances(10)
        weights = [w for _, w in top]
        assert weights == sorted(weights, reverse=True)

    def test_class_profiles_cover_levels(self, explainer):
        profiles = explainer.class_profiles(k=5)
        assert set(profiles) == set(RiskLevel)
        for features in profiles.values():
            assert len(features) <= 5

    def test_profile_zscores_descending(self, explainer):
        profile = explainer.class_profile(RiskLevel.IDEATION, k=6)
        scores = [z for _, z in profile]
        assert scores == sorted(scores, reverse=True)


class TestLocal:
    def test_explain_returns_k(self, explainer, small_splits):
        contributions = explainer.explain(small_splits.test[0], k=6)
        assert len(contributions) == 6
        weights = [c.weight for c in contributions]
        assert weights == sorted(weights, reverse=True)

    def test_render_readable(self, explainer, small_splits):
        text = explainer.render(small_splits.test[0], k=4)
        assert "assessment rationale" in text
        assert text.count("z=") == 4

    def test_values_finite(self, explainer, small_splits):
        for c in explainer.explain(small_splits.test[1], k=10):
            assert np.isfinite(c.value)
            assert np.isfinite(c.z_score)


class TestLinearModelSupport:
    def test_logreg_explainer(self, small_splits):
        model = LogisticBaseline(max_tfidf_features=60)
        model.fit(small_splits.train, small_splits.validation)
        explainer = RiskExplainer(model, small_splits.train)
        top = explainer.global_importances(5)
        assert len(top) == 5
        assert abs(sum(w for _, w in explainer.global_importances(10**6)) - 1.0) < 1e-6


class TestErrors:
    def test_unfitted_model_rejected(self, small_splits):
        with pytest.raises(NotFittedError):
            RiskExplainer(XGBoostBaseline(), small_splits.train)
