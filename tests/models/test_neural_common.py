"""Tests for shared neural plumbing (pipeline, collation, trainer)."""

import numpy as np
import pytest

from repro.models.neural_common import (
    TextPipeline,
    TrainerConfig,
    collate_flat_tokens,
    collate_post_grid,
    collate_time,
    predict_classifier,
    train_classifier,
)
from repro.nn import Linear, Tensor
from repro.nn.module import Module


@pytest.fixture(scope="module")
def pipeline_and_encoded(small_dataset):
    splits = small_dataset.splits()
    pipeline = TextPipeline(max_vocab=400, max_tokens_per_post=24)
    pipeline.fit(splits.train)
    encoded = pipeline.encode(splits.train[:30])
    return pipeline, encoded


class TestTextPipeline:
    def test_vocab_built(self, pipeline_and_encoded):
        pipeline, _ = pipeline_and_encoded
        assert len(pipeline.vocab) <= 400
        assert len(pipeline.vocab) > 50

    def test_encode_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TextPipeline().encode([])

    def test_encoded_structure(self, pipeline_and_encoded):
        _, encoded = pipeline_and_encoded
        assert len(encoded) == 30
        assert len(encoded.post_token_ids) == len(encoded.time_features)
        for posts, feats, hours in zip(
            encoded.post_token_ids, encoded.time_features, encoded.hours
        ):
            assert len(posts) == feats.shape[0] == len(hours)
            assert all(len(ids) >= 1 for ids in posts)

    def test_posts_truncated(self, pipeline_and_encoded):
        _, encoded = pipeline_and_encoded
        assert all(
            len(ids) <= 24
            for posts in encoded.post_token_ids
            for ids in posts
        )

    def test_extra_texts_extend_vocab(self, small_dataset):
        splits = small_dataset.splits()
        base = TextPipeline(max_vocab=5000).fit(splits.train[:20])
        extended = TextPipeline(max_vocab=5000).fit(
            splits.train[:20], extra_texts=["zweihander unique token"]
        )
        assert "zweihander" not in base.vocab
        # min_freq=2 requires the token twice
        extended2 = TextPipeline(max_vocab=5000).fit(
            splits.train[:20],
            extra_texts=["zweihander zweihander"],
        )
        assert "zweihander" in extended2.vocab


class TestCollation:
    def test_flat_tokens(self, pipeline_and_encoded):
        pipeline, encoded = pipeline_and_encoded
        ids, mask = collate_flat_tokens(
            encoded, np.arange(5), pipeline.vocab.eos_id,
            pipeline.vocab.pad_id, max_len=40,
        )
        assert ids.shape == mask.shape
        assert ids.shape[1] <= 40
        # EOS separators present in each row
        assert all((row == pipeline.vocab.eos_id).any() for row in ids)

    def test_post_grid(self, pipeline_and_encoded):
        pipeline, encoded = pipeline_and_encoded
        ids, token_mask, post_mask = collate_post_grid(
            encoded, np.arange(6), pipeline.vocab.pad_id, 5, 16
        )
        assert ids.shape == (6, 5, 16)
        assert token_mask.shape == ids.shape
        assert post_mask.shape == (6, 5)
        # mask consistency: padded tokens are pad_id
        assert (ids[token_mask == 0] == pipeline.vocab.pad_id).all()

    def test_collate_time(self, pipeline_and_encoded):
        _, encoded = pipeline_and_encoded
        feats, mask, hours = collate_time(encoded, np.arange(4), 5)
        assert feats.shape[:2] == (4, 5)
        assert mask.shape == (4, 5)
        assert hours.shape == (4, 5)
        assert np.isfinite(feats).all()


class _TinyClassifier(Module):
    """Mean time features → linear head (fast, deterministic)."""

    def __init__(self, time_dim):
        super().__init__()
        self.head = Linear(time_dim, 4, np.random.default_rng(0))

    def forward(self, feats):
        return self.head(Tensor(feats.mean(axis=1)))


class TestTrainer:
    def _forward(self, model):
        def forward_fn(encoded, idx):
            feats, _, _ = collate_time(encoded, idx, 5)
            return model(feats)

        return forward_fn

    def test_training_reduces_loss(self, pipeline_and_encoded):
        _, encoded = pipeline_and_encoded
        model = _TinyClassifier(encoded.time_features[0].shape[1])
        history = train_classifier(
            model, self._forward(model), encoded, None,
            TrainerConfig(epochs=8, lr=5e-2),
        )
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_restores_best(self, pipeline_and_encoded):
        _, encoded = pipeline_and_encoded
        model = _TinyClassifier(encoded.time_features[0].shape[1])
        history = train_classifier(
            model, self._forward(model), encoded, encoded,
            TrainerConfig(epochs=10, lr=5e-2, patience=2),
        )
        assert history.best_epoch <= len(history.val_macro_f1)

    def test_predict_classifier_shapes(self, pipeline_and_encoded):
        _, encoded = pipeline_and_encoded
        model = _TinyClassifier(encoded.time_features[0].shape[1])
        preds = predict_classifier(model, self._forward(model), encoded)
        assert preds.shape == (len(encoded),)

    def test_class_weighting_changes_training(self, pipeline_and_encoded):
        _, encoded = pipeline_and_encoded
        def run(flag):
            model = _TinyClassifier(encoded.time_features[0].shape[1])
            train_classifier(
                model, self._forward(model), encoded, None,
                TrainerConfig(epochs=3, lr=5e-2, class_weighted=flag),
            )
            return model.head.weight.data.copy()

        assert not np.allclose(run(True), run(False))
