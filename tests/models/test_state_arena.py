"""export_state/import_state: round-trip every registry model.

The contract behind the serving worker pool: a fitted model, flattened
to skeleton + weight arena and rebuilt over frombuffer views, must
predict *identically* — bitwise, not approximately — because pool
workers are supposed to be indistinguishable from the exporting
process. The float32 cast is the documented exception: weights are
rounded to float32 precision, so probabilities move by O(1e-7) and the
test tolerance is 1e-4 (labels still agree on well-separated classes).
"""

import numpy as np
import pytest

from repro.boosting import GBMParams
from repro.core.errors import ModelError, NotFittedError
from repro.models import (
    TABLE3_ORDER,
    HiGRU,
    PLMConfig,
    RobertaRiskModel,
    TimeAwareBiLSTM,
    TrainerConfig,
    XGBoostBaseline,
    create_model,
    export_state,
    import_state,
)
from repro.models.deberta import DebertaRiskModel

TINY = TrainerConfig(epochs=2, batch_size=8, patience=5)

#: Documented tolerance of the float32 cast path: float64 weights are
#: rounded to float32 (~1e-7 relative), which perturbs softmax
#: probabilities well below 1e-4 for these model sizes.
FLOAT32_PROB_TOL = 1e-4


def _tiny_model(name):
    if name == "xgboost":
        return XGBoostBaseline(
            params=GBMParams(n_estimators=5, max_depth=3),
            max_tfidf_features=50,
        )
    if name == "bilstm":
        return TimeAwareBiLSTM(trainer=TINY, embed_dim=16, hidden_dim=16,
                               max_vocab=300)
    if name == "higru":
        return HiGRU(trainer=TINY, embed_dim=16, bottom_hidden=8,
                     top_hidden=16, max_vocab=300, max_tokens=16)
    if name in ("roberta", "deberta"):
        config = PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32,
                           max_len=32)
        cls = RobertaRiskModel if name == "roberta" else DebertaRiskModel
        return cls(config=config, trainer=TINY, pretrain_steps=3,
                   max_vocab=300)
    return create_model(name)


@pytest.fixture(scope="module")
def tiny_splits(small_dataset):
    splits = small_dataset.splits()
    return splits.train[:40], splits.validation[:10], splits.test[:10]


@pytest.fixture(scope="module")
def fitted(tiny_splits):
    """One fitted instance per registry model (plus logreg)."""
    train, val, _ = tiny_splits
    models = {}
    for name in [*TABLE3_ORDER, "logreg"]:
        model = _tiny_model(name)
        model.fit(train, val)
        models[name] = model
    return models


@pytest.mark.parametrize("name", [*TABLE3_ORDER, "logreg"])
class TestRoundTrip:
    def test_bitwise_identical_predictions(self, name, fitted, tiny_splits):
        _, _, test = tiny_splits
        model = fitted[name]
        state = export_state(model)
        clone = import_state(state.skeleton, state.manifest, state.arena)
        np.testing.assert_array_equal(
            clone.predict_proba(test), model.predict_proba(test)
        )
        np.testing.assert_array_equal(clone.predict(test), model.predict(test))

    def test_arena_holds_the_weights(self, name, fitted):
        state = export_state(fitted[name])
        assert state.nbytes > 0
        assert len(state.manifest["entries"]) > 0
        assert state.manifest["model_class"] == type(fitted[name]).__name__

    def test_float32_cast_delta_within_tolerance(
        self, name, fitted, tiny_splits
    ):
        _, _, test = tiny_splits
        model = fitted[name]
        full = export_state(model)
        cast = export_state(model, cast_float32=True)
        assert cast.nbytes < full.nbytes  # every model has float64 weight
        clone = import_state(cast.skeleton, cast.manifest, cast.arena)
        delta = np.abs(clone.predict_proba(test) - model.predict_proba(test))
        assert float(delta.max()) < FLOAT32_PROB_TOL


class TestContract:
    def test_unfitted_model_rejected(self):
        with pytest.raises(NotFittedError):
            export_state(_tiny_model("logreg"))

    def test_non_model_rejected(self):
        with pytest.raises(ModelError):
            export_state({"weights": np.ones(3)})

    def test_wrong_version_rejected(self, fitted):
        state = export_state(fitted["logreg"])
        bad = dict(state.manifest, state_version=999)
        with pytest.raises(ModelError):
            import_state(state.skeleton, bad, state.arena)

    def test_copy_mode_detaches_from_buffer(self, fitted, tiny_splits):
        _, _, test = tiny_splits
        model = fitted["logreg"]
        state = export_state(model)
        clone = import_state(
            state.skeleton, state.manifest, state.arena, copy=True
        )
        state.arena[:] = 0  # scribble over the buffer
        np.testing.assert_array_equal(
            clone.predict_proba(test), model.predict_proba(test)
        )
