"""Tests for the logistic-regression extension baseline."""

import numpy as np
import pytest

from repro.models.logistic import (
    LogisticBaseline,
    MultinomialLogisticRegression,
)
from repro.models.registry import create_model


class TestCore:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 6))
        y = (x[:, 0] > 0).astype(int) + 2 * (x[:, 1] > 0).astype(int)
        model = MultinomialLogisticRegression(num_classes=4).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_loss_monotone_nonincreasing(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = MultinomialLogisticRegression(num_classes=4).fit(x, y)
        losses = np.array(model.loss_history)
        assert (np.diff(losses) <= 1e-9).all()

    def test_probabilities_normalised(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 3))
        y = rng.integers(0, 4, size=50)
        model = MultinomialLogisticRegression(num_classes=4).fit(x, y)
        probs = model.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_l2_shrinks_weights(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(150, 4))
        y = (x[:, 0] > 0).astype(int)
        loose = MultinomialLogisticRegression(num_classes=2, l2=1e-6).fit(x, y)
        tight = MultinomialLogisticRegression(num_classes=2, l2=1.0).fit(x, y)
        assert np.abs(tight.weights[:-1]).sum() < np.abs(
            loose.weights[:-1]
        ).sum()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MultinomialLogisticRegression().predict(np.zeros((1, 2)))

    def test_constant_feature_handled(self):
        x = np.hstack([np.ones((60, 1)), np.random.default_rng(4).normal(size=(60, 2))])
        y = (x[:, 1] > 0).astype(int)
        model = MultinomialLogisticRegression(num_classes=2).fit(x, y)
        assert np.isfinite(model.predict_proba(x)).all()


class TestBaselineWrapper:
    def test_registered(self):
        assert create_model("logreg").name == "LogReg"

    def test_fit_predict(self, small_splits):
        model = LogisticBaseline(max_tfidf_features=60)
        model.fit(small_splits.train, small_splits.validation)
        preds = model.predict(small_splits.test)
        assert ((preds >= 0) & (preds <= 3)).all()
        probs = model.predict_proba(small_splits.test)
        assert np.allclose(probs.sum(axis=1), 1.0)
