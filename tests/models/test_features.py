"""Tests for the multi-level feature framework."""

import numpy as np
import pytest

from repro.core.errors import NotFittedError
from repro.models.features import FeatureFramework


@pytest.fixture(scope="module")
def windows(small_splits):
    return small_splits.train[:60]


@pytest.fixture(scope="module")
def framework(windows):
    return FeatureFramework(max_tfidf_features=100).fit(windows)


# re-export session fixtures into module scope
@pytest.fixture(scope="module")
def small_splits(small_dataset):
    return small_dataset.splits()


class TestFramework:
    def test_transform_shape(self, framework, windows):
        matrix = framework.transform(windows)
        assert matrix.shape[0] == len(windows)
        assert matrix.shape[1] == len(framework.feature_names)

    def test_dimension_slices_partition_columns(self, framework, windows):
        matrix = framework.transform(windows)
        slices = framework.dimension_slices()
        covered = sum(s.stop - s.start for s in slices.values())
        assert covered == matrix.shape[1]
        assert slices["time"].start == 0

    def test_feature_names_prefixes(self, framework):
        names = framework.feature_names
        assert any(n.startswith("time_") for n in names)
        assert any(n.startswith("seq_") for n in names)
        assert any(n.startswith("stat_") for n in names)
        assert any(n.startswith("tfidf_") for n in names)

    def test_matrix_is_finite(self, framework, windows):
        assert np.isfinite(framework.transform(windows)).all()

    def test_unfitted_raises(self, windows):
        fresh = FeatureFramework()
        with pytest.raises(NotFittedError):
            fresh.transform(windows)
        with pytest.raises(NotFittedError):
            _ = fresh.feature_names

    def test_transform_unseen_windows(self, framework, small_splits):
        unseen = small_splits.test[:10]
        matrix = framework.transform(unseen)
        assert matrix.shape[0] == len(unseen)

    def test_sequence_features_capture_length_delta(self, framework, windows):
        matrix = framework.transform(windows)
        names = framework.feature_names
        idx = names.index("seq_len_delta")
        # deltas vary across users (not a constant column)
        assert matrix[:, idx].std() > 0
