"""Interface and training-smoke tests for all five baselines.

Training budgets are tiny (2 epochs, handfuls of windows); these tests
verify the contracts — shapes, determinism, error handling — not accuracy.
"""

import numpy as np
import pytest

from repro.boosting import GBMParams
from repro.core.errors import ModelError, NotFittedError
from repro.models import (
    TABLE3_ORDER,
    HiGRU,
    PLMConfig,
    RobertaRiskModel,
    TimeAwareBiLSTM,
    TrainerConfig,
    XGBoostBaseline,
    available_models,
    create_model,
    register_model,
)
from repro.models.deberta import DebertaRiskModel

TINY = TrainerConfig(epochs=2, batch_size=8, patience=5)


def tiny_model(name):
    if name == "xgboost":
        return XGBoostBaseline(
            params=GBMParams(n_estimators=5, max_depth=3),
            max_tfidf_features=50,
        )
    if name == "bilstm":
        return TimeAwareBiLSTM(trainer=TINY, embed_dim=16, hidden_dim=16,
                               max_vocab=300)
    if name == "higru":
        return HiGRU(trainer=TINY, embed_dim=16, bottom_hidden=8,
                     top_hidden=16, max_vocab=300, max_tokens=16)
    config = PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32,
                       max_len=32)
    cls = RobertaRiskModel if name == "roberta" else DebertaRiskModel
    return cls(config=config, trainer=TINY, pretrain_steps=3, max_vocab=300)


@pytest.fixture(scope="module")
def tiny_splits(small_dataset):
    splits = small_dataset.splits()
    return splits.train[:40], splits.validation[:10], splits.test[:10]


class TestRegistry:
    def test_available_models_order(self):
        assert available_models() == list(TABLE3_ORDER)

    def test_create_model_case_insensitive(self):
        assert create_model("XGBoost").name == "XGBoost"

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelError):
            create_model("gpt7")

    def test_register_custom(self):
        class Dummy(XGBoostBaseline):
            name = "Dummy"

        register_model("dummy", Dummy)
        assert create_model("dummy").name == "Dummy"


@pytest.mark.parametrize("name", TABLE3_ORDER)
class TestBaselineContract:
    def test_fit_predict_shapes(self, name, tiny_splits):
        train, val, test = tiny_splits
        model = tiny_model(name)
        model.fit(train, val)
        pred = model.predict(test)
        assert pred.shape == (len(test),)
        assert pred.dtype == np.int64
        assert ((pred >= 0) & (pred <= 3)).all()

    def test_predict_before_fit_raises(self, name, tiny_splits):
        with pytest.raises(NotFittedError):
            tiny_model(name).predict(tiny_splits[2])

    def test_empty_train_rejected(self, name):
        with pytest.raises(ModelError):
            tiny_model(name).fit([])

    def test_predict_empty_returns_empty(self, name, tiny_splits):
        train, val, _ = tiny_splits
        model = tiny_model(name)
        model.fit(train, val)
        assert model.predict([]).shape == (0,)


class TestXGBoostSpecifics:
    def test_importances_by_dimension(self, tiny_splits):
        train, val, _ = tiny_splits
        model = tiny_model("xgboost")
        model.fit(train, val)
        dims = model.dimension_importance()
        assert set(dims) == {"time", "sequence", "text"}
        assert abs(sum(dims.values()) - 1.0) < 1e-6

    def test_top_features(self, tiny_splits):
        train, val, _ = tiny_splits
        model = tiny_model("xgboost")
        model.fit(train, val)
        top = model.top_features(5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]

    def test_predict_proba(self, tiny_splits):
        train, val, test = tiny_splits
        model = tiny_model("xgboost")
        model.fit(train, val)
        probs = model.predict_proba(test)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestNeuralSpecifics:
    def test_training_history_recorded(self, tiny_splits):
        train, val, _ = tiny_splits
        model = tiny_model("bilstm")
        model.fit(train, val)
        assert len(model.history.train_loss) >= 1
        assert len(model.history.val_macro_f1) >= 1

    def test_plm_mlm_result_exposed(self, tiny_splits):
        train, val, _ = tiny_splits
        model = tiny_model("roberta")
        model.fit(train, val)
        assert model.mlm_result is not None
        assert len(model.mlm_result.losses) == 3

    def test_plm_without_pretraining(self, tiny_splits):
        train, val, _ = tiny_splits
        model = tiny_model("deberta")
        model.pretrain_steps = 0
        model.fit(train, val)
        assert model.mlm_result is None

    def test_deterministic_predictions(self, tiny_splits):
        train, val, test = tiny_splits
        a = tiny_model("higru")
        a.fit(train, val)
        first = a.predict(test)
        second = a.predict(test)
        assert (first == second).all()
