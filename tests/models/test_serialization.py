"""Checkpoint round-trips for complete model networks."""

import numpy as np
import pytest

from repro.models import PLMConfig, TrainerConfig
from repro.models.bilstm import BiLSTMNetwork
from repro.models.deberta import DebertaRiskNetwork
from repro.models.higru import HiGRUNetwork
from repro.models.roberta import RobertaRiskNetwork
from repro.nn import load_checkpoint, save_checkpoint


CONFIG = PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32, max_len=24)


def fresh(cls, seed, **kw):
    return cls(rng=np.random.default_rng(seed), **kw)


@pytest.mark.parametrize(
    "builder",
    [
        lambda s: fresh(BiLSTMNetwork, s, vocab_size=60, time_dim=21,
                        embed_dim=16, hidden_dim=16),
        lambda s: fresh(HiGRUNetwork, s, vocab_size=60, time_dim=21,
                        embed_dim=16, bottom_hidden=8, top_hidden=16),
        lambda s: fresh(RobertaRiskNetwork, s, vocab_size=60, time_dim=21,
                        config=CONFIG),
        lambda s: fresh(DebertaRiskNetwork, s, vocab_size=60, time_dim=21,
                        config=CONFIG),
    ],
    ids=["bilstm", "higru", "roberta", "deberta"],
)
class TestNetworkCheckpointRoundtrip:
    def test_roundtrip_restores_all_parameters(self, builder, tmp_path):
        source = builder(1)
        target = builder(2)
        path = tmp_path / "net.npz"
        save_checkpoint(source, path)
        load_checkpoint(target, path)
        for (name_a, param_a), (name_b, param_b) in zip(
            source.named_parameters(), target.named_parameters()
        ):
            assert name_a == name_b
            assert np.allclose(param_a.data, param_b.data), name_a

    def test_roundtrip_restores_outputs(self, builder, tmp_path):
        source = builder(1)
        target = builder(2)
        source.eval()
        target.eval()
        rng = np.random.default_rng(0)

        def run(net):
            if isinstance(net, (RobertaRiskNetwork, DebertaRiskNetwork)):
                ids = rng.integers(5, 60, size=(2, 10))
                mask = np.ones((2, 10))
                feats = rng.normal(size=(2, 3, 21))
                post_mask = np.ones((2, 3))
                hours = np.arange(3, dtype=float)[None, :].repeat(2, axis=0)
                return net(ids, mask, feats, post_mask, hours).data
            ids = rng.integers(5, 60, size=(2, 3, 8))
            token_mask = np.ones((2, 3, 8))
            post_mask = np.ones((2, 3))
            feats = rng.normal(size=(2, 3, 21))
            return net(ids, token_mask, post_mask, feats).data

        rng = np.random.default_rng(0)
        out_source = run(source)
        path = tmp_path / "net.npz"
        save_checkpoint(source, path)
        load_checkpoint(target, path)
        rng = np.random.default_rng(0)
        out_target = run(target)
        assert np.allclose(out_source, out_target)
