"""Tests for BiLSTM with pretrained SGNS embeddings."""

import numpy as np
import pytest

from repro.models import TimeAwareBiLSTM, TrainerConfig
from repro.text.embeddings import SGNSConfig, train_embeddings

TINY = TrainerConfig(epochs=2, batch_size=8)


@pytest.fixture(scope="module")
def embeddings(small_dataset):
    texts = small_dataset.pretrain_texts[:400]
    return train_embeddings(
        texts, config=SGNSConfig(dim=16, epochs=1, seed=0)
    )


class TestPretrainedInit:
    def test_embedding_table_seeded(self, small_dataset, embeddings):
        splits = small_dataset.splits()
        model = TimeAwareBiLSTM(
            trainer=TINY, embed_dim=16, hidden_dim=8,
            pretrained_embeddings=embeddings,
        )
        model.fit(splits.train[:20], None)
        # vocabulary comes from the embeddings, not the training windows
        assert model.pipeline.vocab is embeddings.vocab
        # pad row forced to zero
        pad = model.pipeline.vocab.pad_id
        assert np.allclose(model.network.embed.weight.data[pad], 0.0)

    def test_dim_mismatch_rejected(self, small_dataset, embeddings):
        splits = small_dataset.splits()
        model = TimeAwareBiLSTM(
            trainer=TINY, embed_dim=32, hidden_dim=8,
            pretrained_embeddings=embeddings,  # dim 16 != 32
        )
        with pytest.raises(ValueError):
            model.fit(splits.train[:20], None)

    def test_predictions_well_formed(self, small_dataset, embeddings):
        splits = small_dataset.splits()
        model = TimeAwareBiLSTM(
            trainer=TINY, embed_dim=16, hidden_dim=8,
            pretrained_embeddings=embeddings,
        )
        model.fit(splits.train[:30], splits.validation[:8])
        preds = model.predict(splits.test[:8])
        assert ((preds >= 0) & (preds <= 3)).all()
