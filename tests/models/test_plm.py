"""Tests for MLM pretraining plumbing."""

import numpy as np
import pytest

from repro.models.plm import PLMConfig, mask_tokens, pretrain_mlm
from repro.nn import IGNORE_INDEX, TransformerEncoder
from repro.text.vocab import Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary([f"w{i}" for i in range(50)])


class TestPLMConfig:
    def test_base_smaller_than_large(self):
        base, large = PLMConfig.base(), PLMConfig.large()
        assert base.dim < large.dim
        assert base.num_layers < large.num_layers


class TestMaskTokens:
    def test_targets_only_on_selected(self, vocab, rng):
        ids = np.full((4, 20), 7, dtype=np.int64)
        mask = np.ones((4, 20))
        inputs, targets = mask_tokens(ids, mask, vocab, rng)
        selected = targets != IGNORE_INDEX
        assert selected.any()
        assert (targets[selected] == 7).all()
        # Non-selected positions keep original inputs.
        assert (inputs[~selected] == 7).all()

    def test_padding_never_selected(self, vocab, rng):
        ids = np.full((2, 10), 7, dtype=np.int64)
        mask = np.zeros((2, 10))
        mask[:, :3] = 1.0
        _, targets = mask_tokens(ids, mask, vocab, rng)
        assert (targets[:, 3:] == IGNORE_INDEX).all()

    def test_masking_rate_near_15pct(self, vocab, rng):
        ids = np.full((50, 40), 7, dtype=np.int64)
        mask = np.ones((50, 40))
        _, targets = mask_tokens(ids, mask, vocab, rng)
        rate = (targets != IGNORE_INDEX).mean()
        assert 0.10 < rate < 0.20

    def test_mask_token_dominates_corruptions(self, vocab, rng):
        ids = np.full((50, 40), 7, dtype=np.int64)
        mask = np.ones((50, 40))
        inputs, targets = mask_tokens(ids, mask, vocab, rng)
        selected = targets != IGNORE_INDEX
        masked = (inputs == vocab.mask_id) & selected
        assert masked.sum() / selected.sum() > 0.6

    def test_at_least_one_target_guaranteed(self, vocab):
        strict_rng = np.random.default_rng(0)
        ids = np.full((1, 2), 7, dtype=np.int64)
        mask = np.ones((1, 2))
        for _ in range(20):
            _, targets = mask_tokens(
                ids, mask, vocab, strict_rng, mlm_probability=0.0001
            )
            assert (targets != IGNORE_INDEX).any()

    def test_all_padding_rejected(self, vocab, rng):
        with pytest.raises(ValueError):
            mask_tokens(np.zeros((1, 3), dtype=np.int64), np.zeros((1, 3)),
                        vocab, rng)


class TestPretrainMLM:
    def test_loss_decreases(self, vocab, rng):
        encoder = TransformerEncoder(
            len(vocab.tokens()), 32, 1, 2, 24, rng, dropout=0.0
        )
        data_rng = np.random.default_rng(1)
        # highly regular sequences are learnable quickly
        sequences = [[5 + (i % 10)] * 12 for i in range(60)]
        result = pretrain_mlm(
            encoder, vocab, sequences, steps=40, batch_size=8, lr=3e-3
        )
        assert len(result.losses) == 40
        assert result.losses[-1] < result.losses[0]

    def test_empty_corpus_rejected(self, vocab, rng):
        encoder = TransformerEncoder(len(vocab.tokens()), 16, 1, 2, 8, rng)
        with pytest.raises(ValueError):
            pretrain_mlm(encoder, vocab, [], steps=1)
