"""Length-bucketed prediction: same outputs, less padding."""

import numpy as np
import pytest

from repro.models.neural_common import (
    TextPipeline,
    TrainerConfig,
    bucketed_batches,
    flat_lengths,
    pad_waste_ratio,
    predict_classifier,
    predict_proba_classifier,
)


def test_bucketed_batches_cover_all_indices():
    lengths = np.array([5, 1, 9, 3, 7, 2, 8, 4])
    batches = bucketed_batches(lengths, batch_size=3)
    flat = np.concatenate(batches)
    assert sorted(flat.tolist()) == list(range(8))
    assert all(len(b) <= 3 for b in batches)


def test_bucketed_batches_sorted_by_length():
    lengths = np.array([5, 1, 9, 3])
    batches = bucketed_batches(lengths, batch_size=2)
    order = np.concatenate(batches)
    assert np.all(np.diff(lengths[order]) >= 0)


def test_bucketed_batches_stable_for_ties():
    lengths = np.array([4, 4, 4, 4])
    batches = bucketed_batches(lengths, batch_size=2)
    assert np.concatenate(batches).tolist() == [0, 1, 2, 3]


def test_pad_waste_ratio_zero_for_uniform_lengths():
    lengths = np.full(10, 7)
    assert pad_waste_ratio(lengths, batch_size=4) == 0.0


def test_pad_waste_ratio_reduced_by_bucketing():
    # Alternating short/long: every unsorted batch pads shorts to 100.
    lengths = np.array([10, 100] * 16)
    unbucketed = pad_waste_ratio(lengths, batch_size=4)
    bucketed = pad_waste_ratio(lengths, batch_size=4, bucket_by_length=True)
    assert bucketed < unbucketed
    assert bucketed == 0.0  # perfect split: all-10 and all-100 batches


def test_pad_waste_ratio_respects_max_len():
    lengths = np.array([50, 500])
    # Capped at 100, the long row stops inflating the batch width.
    assert pad_waste_ratio(lengths, 2, max_len=100) == pytest.approx(
        1.0 - 150 / 200
    )


def test_pad_waste_ratio_empty():
    assert pad_waste_ratio(np.array([], dtype=np.int64), 4) == 0.0


def test_flat_lengths_counts_eos_per_post(small_splits):
    pipeline = TextPipeline().fit(small_splits.train)
    encoded = pipeline.encode(small_splits.train[:5])
    lengths = flat_lengths(encoded)
    expected = [
        sum(len(ids) + 1 for ids in posts)
        for posts in encoded.post_token_ids
    ]
    assert lengths.tolist() == expected


@pytest.fixture(scope="module")
def tiny_roberta(small_splits, small_dataset):
    from repro.models.plm import PLMConfig
    from repro.models.roberta import RobertaRiskModel

    model = RobertaRiskModel(
        config=PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32,
                         max_len=64),
        trainer=TrainerConfig(epochs=1, batch_size=8, patience=2, seed=0),
        pretrain_texts=small_dataset.pretrain_texts[:300],
        pretrain_steps=2,
        seed=0,
    )
    model.fit(small_splits.train, small_splits.validation)
    return model


def test_bucketed_predict_matches_unbucketed(tiny_roberta, small_splits):
    windows = small_splits.train[:20]
    encoded = tiny_roberta.pipeline.encode(windows)
    kwargs = dict(batch_size=4)
    labels_b = predict_classifier(
        tiny_roberta.network, tiny_roberta._forward, encoded,
        bucket_by_length=True, **kwargs,
    )
    labels_u = predict_classifier(
        tiny_roberta.network, tiny_roberta._forward, encoded,
        bucket_by_length=False, **kwargs,
    )
    # Labels are bitwise identical; probabilities may differ by summation
    # -order noise because padded widths change BLAS reduction trees.
    np.testing.assert_array_equal(labels_b, labels_u)
    probs_b = predict_proba_classifier(
        tiny_roberta.network, tiny_roberta._forward, encoded,
        bucket_by_length=True, **kwargs,
    )
    probs_u = predict_proba_classifier(
        tiny_roberta.network, tiny_roberta._forward, encoded,
        bucket_by_length=False, **kwargs,
    )
    np.testing.assert_allclose(probs_b, probs_u, atol=1e-12)
    assert probs_b.shape == (len(windows), 4)
    np.testing.assert_allclose(probs_b.sum(axis=1), 1.0)


def test_bucketed_batch_composition_is_deterministic(tiny_roberta, small_splits):
    encoded = tiny_roberta.pipeline.encode(small_splits.train[:20])
    first = predict_proba_classifier(
        tiny_roberta.network, tiny_roberta._forward, encoded, batch_size=4
    )
    second = predict_proba_classifier(
        tiny_roberta.network, tiny_roberta._forward, encoded, batch_size=4
    )
    np.testing.assert_array_equal(first, second)
