"""Tests for the experiment harness (cheap experiments at tiny scale)."""

import pytest

from repro.core.schema import ALL_LEVELS, RiskLevel
from repro.experiments import (
    fig1_posts_per_user,
    fig23_wordclouds,
    fig4_top_users,
    kappa_consistency,
    table1_distribution,
    table2_comparison,
)
from repro.experiments.common import (
    PaperComparison,
    cached_build,
    format_comparisons,
    format_table,
)

SCALE = 0.05


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    cached_build(SCALE)


class TestCommon:
    def test_cached_build_is_cached(self):
        assert cached_build(SCALE) is cached_build(SCALE)

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_paper_comparison_delta(self):
        cmp = PaperComparison("acc", paper=42.5, measured=45.0)
        assert cmp.delta == pytest.approx(2.5)
        assert "acc" in format_comparisons([cmp])


class TestTable1:
    def test_rows_cover_classes(self):
        rows = table1_distribution.run(SCALE)
        assert [r.category for r in rows] == [
            "Attempt", "Behavior", "Ideation", "Indicator",
        ]

    def test_percentages_sum_to_100(self):
        rows = table1_distribution.run(SCALE)
        assert sum(r.percentage for r in rows) == pytest.approx(100.0)

    def test_render(self):
        assert "Ideation" in table1_distribution.render(
            table1_distribution.run(SCALE)
        )


class TestTable2:
    def test_nine_rows(self):
        assert len(table2_comparison.run(SCALE)) == 9

    def test_ours_row_computed_from_build(self):
        ours = table2_comparison.ours_row(SCALE)
        dataset = cached_build(SCALE).dataset
        assert ours.num_posts == dataset.num_posts
        assert ours.num_users == dataset.num_users

    def test_external_rows_static(self):
        kaggle = table2_comparison.EXTERNAL_DATASETS[0]
        assert kaggle.num_posts == 236_258
        assert not kaggle.fine_grained

    def test_render(self):
        out = table2_comparison.render(table2_comparison.run(SCALE))
        assert "CLPsych2019" in out


class TestFig1:
    def test_majority_under_20(self):
        data = fig1_posts_per_user.run(SCALE)
        assert data.fraction_under_20 > 0.5

    def test_buckets_cover_users(self):
        data = fig1_posts_per_user.run(SCALE)
        assert sum(data.bucket_counts) == len(data.counts_per_user)

    def test_render_contains_histogram(self):
        out = fig1_posts_per_user.render(fig1_posts_per_user.run(SCALE))
        assert "#" in out


class TestFig23:
    def test_clouds_for_all_levels(self):
        clouds = fig23_wordclouds.run(SCALE)
        assert set(clouds) == set(ALL_LEVELS)

    def test_weights_normalised(self):
        clouds = fig23_wordclouds.run(SCALE)
        for cloud in clouds.values():
            top = cloud.top(1)
            assert top[0][1] == pytest.approx(1.0)

    def test_supports_match_distribution(self):
        clouds = fig23_wordclouds.run(SCALE)
        dataset = cached_build(SCALE).dataset
        dist = dataset.label_distribution()
        for level, cloud in clouds.items():
            assert cloud.support == dist.counts[level]

    def test_no_stopwords_in_clouds(self):
        clouds = fig23_wordclouds.run(SCALE)
        from repro.text.tokenizer import STOPWORDS

        for cloud in clouds.values():
            assert not (set(cloud.weights) & STOPWORDS)


class TestFig4:
    def test_twenty_profiles(self):
        profiles = fig4_top_users.run(SCALE)
        assert len(profiles) == 20

    def test_anonymised_ranks(self):
        profiles = fig4_top_users.run(SCALE)
        assert [p.rank for p in profiles] == list(range(1, 21))

    def test_counts_consistent(self):
        for profile in fig4_top_users.run(SCALE):
            assert profile.total_posts == sum(profile.counts.values())
            assert isinstance(profile.dominant, RiskLevel)


class TestKappa:
    def test_within_tolerance_of_paper(self):
        result = kappa_consistency.run(SCALE)
        assert result.within_tolerance
        assert result.interpretation == "substantial"

    def test_joint_samples_about_30pct(self):
        result = kappa_consistency.run(SCALE)
        dataset = cached_build(SCALE).dataset
        assert abs(result.joint_samples / dataset.num_posts - 0.30) < 0.05
