"""Tests for the risk-evolution extension experiment."""

import numpy as np
import pytest

from repro.experiments import evolution_analysis
from repro.experiments.common import cached_build

SCALE = 0.05


@pytest.fixture(scope="module")
def figure():
    cached_build(SCALE)
    return evolution_analysis.run(SCALE)


class TestEvolutionExperiment:
    def test_transition_matrix_stochastic(self, figure):
        matrix = figure.report.transition_matrix
        sums = matrix.sum(axis=1)
        for value in sums:
            assert value == pytest.approx(1.0, abs=1e-9) or value == 0.0

    def test_persistence_dominant(self, figure):
        assert figure.persistence > 0.4

    def test_prevalence_in_unit_interval(self, figure):
        assert 0.0 <= figure.report.escalation_prevalence <= 1.0

    def test_render_contains_matrix_and_summary(self, figure):
        out = evolution_analysis.render(figure)
        assert "from \\ to" in out
        assert "escalation prevalence" in out

    def test_user_total_matches_dataset(self, figure):
        dataset = cached_build(SCALE).dataset
        assert figure.report.num_users == dataset.num_users
