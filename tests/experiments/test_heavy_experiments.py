"""Tiny-scale smoke tests of the heavy experiment modules.

Table III/IV and the ablations are exercised with reduced model budgets so
the unit suite stays fast; the benchmark harness runs them at full budget.
"""

import pytest

from repro.experiments import stability, table3_baselines, table4_scale
from repro.experiments.common import cached_build

SCALE = 0.05


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    cached_build(SCALE)


class TestTable3Module:
    def test_run_subset_of_models(self):
        result = table3_baselines.run(
            SCALE, models=("xgboost",), pretrain_steps=0
        )
        assert len(result.reports) == 1
        report = result.reports[0]
        assert report.model == "XGBoost"
        assert 0.0 <= report.accuracy <= 1.0

    def test_render_includes_paper_reference(self):
        result = table3_baselines.run(
            SCALE, models=("xgboost",), pretrain_steps=0
        )
        out = table3_baselines.render(result)
        assert "42.5/25.3" in out

    def test_report_for_unknown_model(self):
        result = table3_baselines.run(
            SCALE, models=("xgboost",), pretrain_steps=0
        )
        with pytest.raises(KeyError):
            result.report_for("DeBERTa")

    def test_paper_table_constants(self):
        assert table3_baselines.PAPER_TABLE3["DeBERTa"][0] == 76.0
        assert len(table3_baselines.PAPER_TABLE3) == 5


class TestTable4Constants:
    def test_paper_rows(self):
        small = table4_scale.PAPER_TABLE4["small-data"]
        large = table4_scale.PAPER_TABLE4["large-data"]
        assert small[1] == "Large" and large[1] == "Base"
        assert large[4] >= small[4]  # the paper's headline

    def test_balanced_subset_is_balanced(self):
        import numpy as np

        splits = cached_build(SCALE).dataset.splits()
        subset = table4_scale._balanced_subset(splits.train, 24, seed=0)
        labels = np.array([int(w.label) for w in subset])
        counts = np.bincount(labels, minlength=4)
        present = counts[counts > 0]
        assert present.max() - present.min() <= 1


class TestStabilityModule:
    def test_runs_and_renders(self):
        result = stability.run(SCALE, model="xgboost", seeds=(0, 1))
        assert len(result.reports) == 2
        assert "accuracy" in stability.render(result)


class TestParallelAblation:
    def test_window_ablation_parallel_matches_serial(self):
        from repro.experiments.ablations import window_size_ablation

        serial = window_size_ablation(SCALE, sizes=(1, 3), n_jobs=1)
        parallel = window_size_ablation(SCALE, sizes=(1, 3), n_jobs=2)
        assert [r.name for r in serial] == [r.name for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.accuracy_pct == b.accuracy_pct
            assert a.macro_f1_pct == b.macro_f1_pct
