"""Shared fixtures: one small corpus/dataset build per test session."""

import numpy as np
import pytest

from repro.core.config import CorpusConfig
from repro.core.pipeline import build_dataset
from repro.corpus import CorpusGenerator


@pytest.fixture(scope="session")
def small_corpus():
    """A ~5% synthetic corpus (raw, pre-annotation)."""
    return CorpusGenerator(CorpusConfig().scaled(0.05)).generate()


@pytest.fixture(scope="session")
def small_build():
    """A full ~6% dataset build (crawl → preprocess → campaign → release)."""
    return build_dataset(CorpusConfig().scaled(0.06), near_dedup=False)


@pytest.fixture(scope="session")
def small_dataset(small_build):
    return small_build.dataset


@pytest.fixture(scope="session")
def small_splits(small_dataset):
    return small_dataset.splits()


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
