"""Fixed-log-bucket histogram: recording, merging, quantile accuracy."""

import math

import numpy as np
import pytest

from repro.perf.histogram import BUCKET_BOUNDS, Histogram


class TestRecording:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert h.as_dict()["count"] == 0

    def test_exact_count_sum_min_max(self):
        h = Histogram()
        for v in [0.001, 0.01, 0.1, 1.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(1.111)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(1.0)
        assert h.mean == pytest.approx(1.111 / 4)

    def test_sub_microsecond_and_zero_go_to_first_bucket(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(1e-9)
        assert h.counts[0] == 2

    def test_overflow_bucket(self):
        h = Histogram()
        h.observe(1e6)  # way past 100s
        assert h.counts[-1] == 1
        assert h.quantile(0.5) == pytest.approx(1e6)  # clamped to max

    def test_bounds_are_geometric(self):
        ratios = [
            BUCKET_BOUNDS[i + 1] / BUCKET_BOUNDS[i]
            for i in range(len(BUCKET_BOUNDS) - 1)
        ]
        assert all(r == pytest.approx(10 ** 0.05) for r in ratios)


class TestQuantiles:
    """Histogram quantiles must track numpy percentiles of raw samples."""

    @pytest.mark.parametrize("dist", ["lognormal", "uniform", "bimodal"])
    def test_against_numpy_percentiles(self, dist):
        rng = np.random.default_rng(0)
        if dist == "lognormal":
            samples = rng.lognormal(mean=-5.0, sigma=1.5, size=5000)
        elif dist == "uniform":
            samples = rng.uniform(1e-4, 1e-1, size=5000)
        else:
            # Sized so p50/p90/p99 all land inside the upper mode —
            # quantiles falling in the empty gap between modes are
            # ill-defined for any estimator.
            samples = np.concatenate([
                rng.normal(2e-3, 2e-4, size=2000).clip(1e-5),
                rng.normal(8e-2, 5e-3, size=3000).clip(1e-5),
            ])
        h = Histogram()
        for v in samples:
            h.observe(float(v))
        for q in (0.50, 0.90, 0.99):
            expected = float(np.percentile(samples, q * 100))
            got = h.quantile(q)
            # 20 log buckets/decade → ~6% worst-case interpolation error
            assert got == pytest.approx(expected, rel=0.12), (dist, q)

    def test_single_sample(self):
        h = Histogram()
        h.observe(0.005)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == pytest.approx(0.005, rel=0.12)

    def test_percentiles_keys(self):
        h = Histogram()
        h.observe(0.01)
        pct = h.percentiles()
        assert set(pct) == {"p50_s", "p90_s", "p99_s", "max_s"}
        assert pct["max_s"] == pytest.approx(0.01)

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestMerge:
    def test_merge_equals_combined_stream(self):
        rng = np.random.default_rng(1)
        a_samples = rng.lognormal(-6, 1, size=1000)
        b_samples = rng.lognormal(-3, 0.5, size=1000)
        a, b, combined = Histogram(), Histogram(), Histogram()
        for v in a_samples:
            a.observe(float(v))
            combined.observe(float(v))
        for v in b_samples:
            b.observe(float(v))
            combined.observe(float(v))
        a.merge(b)
        assert a.counts == combined.counts
        assert a.count == combined.count
        assert a.sum == pytest.approx(combined.sum)
        assert a.min == combined.min
        assert a.max == combined.max

    def test_copy_is_independent(self):
        h = Histogram()
        h.observe(0.01)
        c = h.copy()
        c.observe(0.02)
        assert h.count == 1
        assert c.count == 2


class TestCumulativeBuckets:
    def test_cumulative_and_inf_terminated(self):
        h = Histogram()
        for v in [1e-5, 1e-3, 1e-1, 10.0, 1e7]:
            h.observe(v)
        buckets = h.cumulative_buckets()
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == h.count  # includes the overflow sample

    def test_per_decade_must_divide(self):
        with pytest.raises(ValueError):
            Histogram().cumulative_buckets(per_decade=3)
