"""Prometheus rendering + validation, JSON snapshots, registry snapshot."""

import math

import pytest

from repro.perf import (
    PerfRegistry,
    json_snapshot,
    render_prometheus,
    validate_prometheus,
)
from repro.perf.tracing import Tracer


def exercised_registry() -> PerfRegistry:
    reg = PerfRegistry()
    with reg.span("serve.batch"):
        reg.count("serve.batched_items", 8)
    with reg.span("serve.batch"):
        pass
    reg.count("serve.requests", 8)
    reg.gauge("serve.queue_depth", 3)
    reg.gauge("serve.tokenize_cache.size", 120)
    for v in (0.001, 0.002, 0.05):
        reg.observe("serve.request.latency_seconds", v)
    return reg


class TestSnapshot:
    def test_kinds_are_separated(self):
        snap = exercised_registry().snapshot()
        assert "serve.batch" in snap["spans"]
        assert snap["counters"]["serve.requests"] == 8
        assert snap["gauges"]["serve.queue_depth"] == 3.0
        obs = snap["observations"]["serve.request.latency_seconds"]
        assert obs["hist"]["count"] == 3
        assert obs["buckets"][-1][0] == math.inf

    def test_span_has_histogram_quantiles(self):
        snap = exercised_registry().snapshot()
        entry = snap["spans"]["serve.batch"]
        assert entry["calls"] == 2
        assert {"p50_s", "p90_s", "p99_s", "max_s"} <= set(entry["hist"])


class TestRenderPrometheus:
    @pytest.mark.perf_smoke
    def test_renders_and_validates(self):
        text = render_prometheus(exercised_registry().snapshot())
        families = validate_prometheus(text)
        # Counters, gauges, span histogram and observation histogram
        # all present under sanitised names.
        assert "repro_serve_requests_total" in families
        assert "repro_serve_queue_depth" in families
        assert "repro_serve_batch_seconds" in families
        assert "repro_serve_request_latency_seconds" in families

    def test_histogram_bucket_coherence(self):
        text = render_prometheus(exercised_registry().snapshot())
        families = validate_prometheus(text)
        buckets = [
            v for labels, v in families["repro_serve_request_latency_seconds"]
            if "le" in labels
        ]
        assert buckets[-1] == 3  # +Inf bucket sees every sample

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(PerfRegistry().snapshot()) == ""

    def test_sanitises_path_characters(self):
        reg = PerfRegistry()
        reg.count("build/preprocess/dedup.near")
        text = render_prometheus(reg.snapshot())
        assert "repro_build_preprocess_dedup_near_total" in text
        validate_prometheus(text)


class TestValidator:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            validate_prometheus("repro_thing_total 3\n")

    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed"):
            validate_prometheus(
                "# TYPE 9bad counter\n9bad{x=1} nope\n"
            )

    def test_rejects_unparseable_value(self):
        with pytest.raises(ValueError, match="unparseable"):
            validate_prometheus(
                "# TYPE repro_x counter\nrepro_x abc\n"
            )

    def test_rejects_unsorted_histogram_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 2\n'
            'repro_h_bucket{le="0.01"} 1\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 0.2\n"
            "repro_h_count 2\n"
        )
        with pytest.raises(ValueError, match="not le-sorted"):
            validate_prometheus(text)

    def test_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 2\n'
            "repro_h_sum 0.2\n"
            "repro_h_count 2\n"
        )
        with pytest.raises(ValueError, match="\\+Inf"):
            validate_prometheus(text)

    def test_rejects_count_bucket_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 0.2\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError, match="_count"):
            validate_prometheus(text)

    def test_accepts_inf_values(self):
        families = validate_prometheus(
            "# TYPE repro_g gauge\nrepro_g +Inf\n"
        )
        assert families["repro_g"][0][1] == math.inf


class TestJsonSnapshot:
    def test_includes_traces_and_extra(self):
        reg = exercised_registry()
        tracer = Tracer()
        trace = tracer.start()
        trace.event("enqueue", 0.0)
        trace.event("complete", 0.01)
        tracer.finish(trace)
        snap = json_snapshot(reg, tracer=tracer, extra={"run": "test"})
        assert snap["traces"]["stats"]["finished"] == 1
        assert snap["run"] == "test"
        assert "spans" in snap["perf"]

    def test_reserved_extra_keys_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            json_snapshot(PerfRegistry(), extra={"perf": {}})

    def test_serialisable(self):
        import json

        snap = json_snapshot(exercised_registry())
        json.dumps(snap)  # must not raise
