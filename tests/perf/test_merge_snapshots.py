"""merge_snapshots: cross-process telemetry aggregation.

The worker pool ships one registry snapshot per worker process back to
the parent; ``merge_snapshots`` folds them into a single
registry-shaped dict. Counters and span totals must combine *exactly*;
only the quantile estimates are approximate (they are re-derived from
the merged coarse buckets).
"""

import math

import pytest

from repro.perf import (
    PerfRegistry,
    merge_snapshots,
    render_prometheus,
    validate_prometheus,
)


def _registry(latencies, requests, depth):
    reg = PerfRegistry()
    with reg.span("serve.predict_many"):
        reg.count("serve.requests", requests)
    reg.gauge("serve.queue_depth", depth)
    for v in latencies:
        reg.observe("serve.request.latency_seconds", v)
    return reg


def _pair():
    a = _registry([0.001, 0.004, 0.02], requests=3, depth=1).snapshot()
    b = _registry([0.002, 0.8], requests=5, depth=7).snapshot()
    return a, b


class TestExactFields:
    def test_counters_sum(self):
        merged = merge_snapshots(_pair())
        # Counter paths nest under the active span.
        (path,) = merged["counters"]
        assert merged["counters"][path] == 8

    def test_span_totals_and_calls_sum(self):
        a, b = _pair()
        merged = merge_snapshots([a, b])
        span = merged["spans"]["serve.predict_many"]
        assert span["calls"] == 2
        expected = (
            a["spans"]["serve.predict_many"]["total_s"]
            + b["spans"]["serve.predict_many"]["total_s"]
        )
        assert span["total_s"] == pytest.approx(expected, rel=1e-12)

    def test_hist_count_sum_min_max_exact(self):
        merged = merge_snapshots(_pair())
        hist = merged["observations"]["serve.request.latency_seconds"]["hist"]
        assert hist["count"] == 5
        assert hist["sum_s"] == pytest.approx(0.827, rel=1e-9)
        assert hist["min_s"] == 0.001
        assert hist["max_s"] == 0.8
        assert hist["mean_s"] == pytest.approx(0.827 / 5, rel=1e-9)

    def test_buckets_add_elementwise(self):
        a, b = _pair()
        merged = merge_snapshots([a, b])
        obs = merged["observations"]["serve.request.latency_seconds"]
        for (bound, count), (ba, ca), (bb, cb) in zip(
            obs["buckets"],
            a["observations"]["serve.request.latency_seconds"]["buckets"],
            b["observations"]["serve.request.latency_seconds"]["buckets"],
        ):
            assert bound == ba == bb
            assert count == ca + cb
        assert obs["buckets"][-1][0] == math.inf
        assert obs["buckets"][-1][1] == 5


class TestQuantileEstimates:
    def test_quantiles_bounded_by_observed_range(self):
        merged = merge_snapshots(_pair())
        hist = merged["observations"]["serve.request.latency_seconds"]["hist"]
        assert 0.001 <= hist["p50_s"] <= hist["p90_s"] <= hist["p99_s"] <= 0.8

    def test_single_snapshot_is_near_identity(self):
        snap = _registry([0.01] * 10, requests=1, depth=0).snapshot()
        merged = merge_snapshots([snap])
        hist = merged["observations"]["serve.request.latency_seconds"]["hist"]
        # All samples equal: min == max pins every quantile exactly.
        assert hist["p50_s"] == hist["p99_s"] == 0.01


class TestGauges:
    def test_prefixes_namespace_each_snapshot(self):
        merged = merge_snapshots(_pair(), gauge_prefixes=["w0", "w1"])
        assert merged["gauges"]["w0.serve.queue_depth"] == 1.0
        assert merged["gauges"]["w1.serve.queue_depth"] == 7.0

    def test_none_prefix_keeps_bare_name(self):
        merged = merge_snapshots(_pair(), gauge_prefixes=[None, "w1"])
        assert merged["gauges"]["serve.queue_depth"] == 1.0
        assert merged["gauges"]["w1.serve.queue_depth"] == 7.0

    def test_without_prefixes_last_write_wins(self):
        merged = merge_snapshots(_pair())
        assert merged["gauges"]["serve.queue_depth"] == 7.0

    def test_prefix_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_snapshots(_pair(), gauge_prefixes=["only-one"])


class TestContract:
    def test_empty_list_merges_to_empty_snapshot(self):
        merged = merge_snapshots([])
        assert merged == {
            "spans": {},
            "counters": {},
            "observations": {},
            "gauges": {},
        }

    def test_bucket_layout_mismatch_rejected(self):
        a, b = _pair()
        bad = b["observations"]["serve.request.latency_seconds"]
        bad["buckets"] = bad["buckets"][:-1]
        with pytest.raises(ValueError, match="bucket layouts differ"):
            merge_snapshots([a, b])

    def test_merged_snapshot_renders_as_prometheus(self):
        merged = merge_snapshots(_pair(), gauge_prefixes=["w0", "w1"])
        text = render_prometheus(merged)
        families = validate_prometheus(text)
        assert "repro_serve_request_latency_seconds" in families
        assert "repro_w0_serve_queue_depth" in families
