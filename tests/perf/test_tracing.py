"""Tracer: lifecycle events, ring buffer bounds, slow-request JSONL."""

import json
import threading

from repro.perf.tracing import LIFECYCLE_EVENTS, Tracer


def finish_one(tracer, events=LIFECYCLE_EVENTS, t_step=0.001):
    trace = tracer.start()
    t = 0.0
    for name in events:
        trace.event(name, t)
        t += t_step
    tracer.finish(trace)
    return trace


class TestTrace:
    def test_ids_are_unique_and_ordered(self):
        tracer = Tracer()
        ids = [tracer.start().trace_id for _ in range(5)]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_total_and_queue_wait(self):
        tracer = Tracer()
        trace = tracer.start()
        trace.event("enqueue", 1.0)
        trace.event("batch_assembly", 1.25)
        trace.event("complete", 2.0)
        assert trace.total_s == 1.0
        assert trace.queue_wait_s == 0.25

    def test_as_dict_relative_timestamps(self):
        tracer = Tracer()
        trace = finish_one(tracer)
        d = trace.as_dict()
        names = [e["name"] for e in d["events"]]
        assert names == list(LIFECYCLE_EVENTS)
        times = [e["t_ms"] for e in d["events"]]
        assert times[0] == 0.0
        assert times == sorted(times)
        assert d["total_ms"] == times[-1]


class TestRing:
    def test_ring_bounded_newest_kept(self):
        tracer = Tracer(ring_size=3, slow_threshold_s=100.0)
        for _ in range(10):
            finish_one(tracer)
        recent = tracer.recent()
        assert len(recent) == 3
        # Newest first, and the oldest seven were evicted.
        assert recent[0]["trace_id"] == "req-000010"
        assert recent[-1]["trace_id"] == "req-000008"
        stats = tracer.stats()
        assert stats["finished"] == 10
        assert stats["in_ring"] == 3

    def test_recent_limit(self):
        tracer = Tracer(ring_size=10)
        for _ in range(5):
            finish_one(tracer)
        assert len(tracer.recent(limit=2)) == 2

    def test_concurrent_finish_is_safe(self):
        tracer = Tracer(ring_size=64)
        threads = [
            threading.Thread(
                target=lambda: [finish_one(tracer) for _ in range(50)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.stats()["finished"] == 200
        assert len(tracer.recent()) == 64


class TestSlowLog:
    def test_slow_request_logged_as_jsonl(self, tmp_path):
        log = tmp_path / "slow" / "requests.jsonl"
        tracer = Tracer(slow_threshold_s=0.005, slow_log_path=log)
        finish_one(tracer, t_step=0.0001)  # fast: 0.5ms total
        slow = finish_one(tracer, t_step=0.01)  # slow: 50ms total
        assert tracer.stats()["slow"] == 1
        lines = log.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["trace_id"] == slow.trace_id
        assert [e["name"] for e in entry["events"]] == list(LIFECYCLE_EVENTS)

    def test_no_log_path_still_counts(self):
        tracer = Tracer(slow_threshold_s=0.001)
        finish_one(tracer, t_step=0.01)
        assert tracer.stats()["slow"] == 1

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            Tracer(ring_size=0)
