"""WorkerPool: output integrity, crash propagation, backpressure, telemetry.

Uses the ``spawn`` start method throughout (the pool's default), so the
helper model classes here must be importable by worker processes —
they live at module top level for exactly that reason.
"""

import time

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.schema import NUM_CLASSES
from repro.models import create_model, export_state
from repro.models.base import RiskModel
from repro.serve import (
    EngineConfig,
    InferenceEngine,
    PoolConfig,
    PoolSaturatedError,
    WorkerCrashError,
    WorkerPool,
    run_pool_bench,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


class SlowModel(RiskModel):
    """Deterministic model whose scoring blocks for a fixed delay.

    Lets tests hold a worker busy (crash injection mid-request) or let
    the request queue back up (backpressure) without timing races on
    real model speed.
    """

    name = "Slow"

    def __init__(self, delay_s: float = 0.2) -> None:
        super().__init__()
        self.delay_s = delay_s
        self.weights = np.linspace(1.0, 2.0, NUM_CLASSES)

    def _fit(self, train, validation) -> None:
        pass

    def _predict(self, windows):
        return self._predict_proba(windows).argmax(axis=1)

    def _predict_proba(self, windows):
        time.sleep(self.delay_s)
        probs = np.tile(self.weights, (len(windows), 1))
        return probs / probs.sum(axis=1, keepdims=True)


def _slow_pool(delay_s=0.2, **kwargs) -> WorkerPool:
    model = SlowModel(delay_s).fit(["w"])
    defaults = dict(num_workers=1, engine=EngineConfig(max_batch_size=4))
    defaults.update(kwargs)
    return WorkerPool(model, PoolConfig(**defaults))


@pytest.fixture(scope="module")
def fitted_logreg(small_splits):
    model = create_model("logreg")
    model.fit(small_splits.train, small_splits.validation)
    return model


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(num_workers=0)
        with pytest.raises(ValueError):
            PoolConfig(max_pending=0)
        with pytest.raises(ValueError):
            PoolConfig(start_method="teleport")
        with pytest.raises(ValueError):
            PoolConfig(startup_timeout_s=0)

    def test_exactly_one_model_source(self, fitted_logreg):
        with pytest.raises(ModelError):
            WorkerPool()
        with pytest.raises(ModelError):
            WorkerPool(fitted_logreg, state=export_state(fitted_logreg))


class TestOutputIntegrity:
    def test_bitwise_identical_to_single_engine(
        self, fitted_logreg, small_splits
    ):
        windows = list(small_splits.test)
        config = PoolConfig(num_workers=2, engine=EngineConfig(max_batch_size=4))
        with InferenceEngine(fitted_logreg, config.engine) as engine:
            single = engine.predict_many(windows)
        with WorkerPool(fitted_logreg, config) as pool:
            pooled = pool.predict_many(windows, timeout=60.0)
            labels = pool.predict_labels(windows, timeout=60.0)
        np.testing.assert_array_equal(pooled, single)  # bitwise, float64
        np.testing.assert_array_equal(labels, single.argmax(axis=1))

    def test_from_exported_state(self, fitted_logreg, small_splits):
        windows = list(small_splits.test)[:4]
        state = export_state(fitted_logreg)
        config = PoolConfig(num_workers=1, engine=EngineConfig(max_batch_size=4))
        with WorkerPool(state=state, config=config) as pool:
            pooled = pool.predict_many(windows, timeout=60.0)
        np.testing.assert_array_equal(
            pooled, fitted_logreg.predict_proba(windows)
        )

    def test_empty_input(self, fitted_logreg):
        config = PoolConfig(num_workers=1)
        with WorkerPool(fitted_logreg, config) as pool:
            out = pool.predict_many([])
        assert out.shape == (0, NUM_CLASSES)

    def test_submit_resolves_future(self, fitted_logreg, small_splits):
        windows = list(small_splits.test)[:3]
        with WorkerPool(fitted_logreg, PoolConfig(num_workers=1)) as pool:
            future = pool.submit(windows)
            probs = future.result(timeout=60.0)
        assert probs.shape == (3, NUM_CLASSES)


class TestCrashPropagation:
    def test_in_flight_futures_fail_instead_of_hanging(self):
        pool = _slow_pool(delay_s=0.5)
        try:
            futures = [pool.submit(["w"] * 2) for _ in range(3)]
            time.sleep(0.1)  # let the worker start chewing on the first
            pool.debug_kill_worker(0)
            for future in futures:
                with pytest.raises(WorkerCrashError):
                    future.result(timeout=30.0)
            assert pool.broken
        finally:
            pool.close()

    def test_broken_pool_rejects_new_work(self):
        pool = _slow_pool(delay_s=0.05)
        try:
            pool.debug_kill_worker(0)
            deadline = time.monotonic() + 30.0
            while not pool.broken and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.broken
            with pytest.raises(WorkerCrashError):
                pool.submit(["w"])
        finally:
            pool.close()

    def test_worker_request_error_fails_only_that_future(self, fitted_logreg):
        with WorkerPool(fitted_logreg, PoolConfig(num_workers=1)) as pool:
            bad = pool.submit([object()])  # unscoreable payload
            with pytest.raises(Exception) as excinfo:
                bad.result(timeout=30.0)
            assert not isinstance(excinfo.value, WorkerCrashError)
            assert not pool.broken  # worker survived the poison request
            good = pool.submit([])
            assert good.result(timeout=30.0).shape == (0, NUM_CLASSES)


class TestBackpressure:
    def test_saturated_queue_raises_instead_of_blocking(self):
        pool = _slow_pool(delay_s=0.5, max_pending=1)
        try:
            first = pool.submit(["w"], block=False)
            deadline = time.monotonic() + 10.0
            # Wait for the worker to take the first request off the queue.
            while pool._request_q.qsize() > 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            queued = pool.submit(["w"], block=False)  # fills the queue
            with pytest.raises(PoolSaturatedError):
                pool.submit(["w"], block=False)
            assert first.result(timeout=30.0).shape == (1, NUM_CLASSES)
            assert queued.result(timeout=30.0).shape == (1, NUM_CLASSES)
        finally:
            pool.close()


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_submissions(self):
        pool = _slow_pool(delay_s=0.01)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(["w"])
        with pytest.raises(RuntimeError):
            pool.predict_many(["w"])

    def test_context_manager(self, fitted_logreg):
        with WorkerPool(fitted_logreg, PoolConfig(num_workers=1)) as pool:
            assert pool.stats()["workers_alive"] == 1
        assert pool.stats()["workers_alive"] == 0


class TestTelemetry:
    def test_worker_snapshots_merge(self, fitted_logreg, small_splits):
        windows = list(small_splits.test)
        config = PoolConfig(num_workers=2, engine=EngineConfig(max_batch_size=2))
        with WorkerPool(fitted_logreg, config) as pool:
            pool.predict_many(windows, timeout=60.0)
        snaps = pool.worker_snapshots
        assert sorted(snaps) == [0, 1]
        merged = pool.merged_telemetry(include_parent=False)
        # Workers together scored every window exactly once.
        assert merged["counters"]["serve.requests"] == len(windows)
        span = merged["spans"]["serve.predict_many"]
        assert span["calls"] == sum(
            s["spans"]["serve.predict_many"]["calls"]
            for s in snaps.values()
            if "serve.predict_many" in s["spans"]
        )
        # Per-worker gauges survive, namespaced.
        assert all(
            key.startswith("pool.worker") for key in merged["gauges"]
        )

    def test_parent_latency_histogram(self, fitted_logreg, small_splits):
        from repro import perf

        windows = list(small_splits.test)[:4]
        with WorkerPool(fitted_logreg, PoolConfig(num_workers=1)) as pool:
            pool.predict_many(windows, timeout=60.0)
        obs = perf.snapshot()["observations"]
        assert "serve.pool.request.latency_seconds" in obs


@pytest.mark.perf_smoke
def test_pool_smoke_bench(fitted_logreg, small_splits):
    """End-to-end pool bench on real traffic: integrity + liveness."""
    result = run_pool_bench(
        fitted_logreg,
        list(small_splits.test),
        requests=48,
        config=PoolConfig(num_workers=2, engine=EngineConfig(max_batch_size=8)),
    )
    assert result.labels_identical
    assert result.probs_bitwise_identical  # float64 mode
    assert result.pool_throughput > 0
    assert result.latency["count"] > 0
    assert result.arena_nbytes > 0
