"""InferenceEngine: batching, caching, lifecycle, output integrity."""

import numpy as np
import pytest

from repro import perf
from repro.core.errors import ModelError
from repro.models import create_model
from repro.serve import EngineConfig, InferenceEngine, run_serve_bench


@pytest.fixture(scope="module")
def fitted_logreg(small_splits):
    model = create_model("logreg")
    model.fit(small_splits.train, small_splits.validation)
    return model


@pytest.fixture()
def engine(fitted_logreg):
    with InferenceEngine(fitted_logreg, EngineConfig(max_batch_size=8)) as eng:
        yield eng


def test_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(max_batch_size=0)
    with pytest.raises(ValueError):
        EngineConfig(max_wait_s=-1.0)
    with pytest.raises(ValueError):
        EngineConfig(num_workers=0)


def test_multiple_workers_match_direct(fitted_logreg, small_splits):
    windows = small_splits.test
    direct = fitted_logreg.predict_proba(windows)
    config = EngineConfig(max_batch_size=2, max_wait_s=0.01, num_workers=3)
    with InferenceEngine(fitted_logreg, config) as eng:
        futures = [eng.submit(w) for w in windows]
        rows = np.vstack([f.result(timeout=10.0) for f in futures])
    np.testing.assert_allclose(rows, direct, atol=1e-12)


def test_requires_fitted_model():
    with pytest.raises(ModelError):
        InferenceEngine(create_model("logreg"))


def test_predict_many_matches_predict_proba(engine, fitted_logreg, small_splits):
    windows = small_splits.test
    direct = fitted_logreg.predict_proba(windows)
    batched = engine.predict_many(windows)
    np.testing.assert_allclose(batched, direct, atol=1e-12)
    np.testing.assert_array_equal(
        batched.argmax(axis=1), direct.argmax(axis=1)
    )


def test_predict_many_empty(engine):
    assert engine.predict_many([]).shape[0] == 0


def test_predict_labels(engine, fitted_logreg, small_splits):
    labels = engine.predict_labels(small_splits.test)
    expected = fitted_logreg.predict_proba(small_splits.test).argmax(axis=1)
    np.testing.assert_array_equal(labels, expected)


def test_async_submit_matches_direct(engine, fitted_logreg, small_splits):
    windows = small_splits.test[:6]
    futures = [engine.submit(w) for w in windows]
    rows = np.vstack([f.result(timeout=10.0) for f in futures])
    direct = fitted_logreg.predict_proba(windows)
    np.testing.assert_allclose(rows, direct, atol=1e-12)


def test_predict_one(engine, fitted_logreg, small_splits):
    window = small_splits.test[0]
    row = engine.predict_one(window, timeout=10.0)
    np.testing.assert_allclose(
        row, fitted_logreg.predict_proba([window])[0], atol=1e-12
    )


def test_micro_batching_coalesces(fitted_logreg, small_splits):
    windows = small_splits.test[:8]
    config = EngineConfig(max_batch_size=16, max_wait_s=0.05)
    with InferenceEngine(fitted_logreg, config) as eng:
        futures = [eng.submit(w) for w in windows]
        for future in futures:
            future.result(timeout=10.0)
        stats = eng.stats()
    assert stats["batched_items"] == len(windows)
    assert stats["batches"] < len(windows)  # some coalescing happened
    assert stats["mean_batch_size"] > 1.0


def test_stats_shape(engine, small_splits):
    engine.predict_many(small_splits.test[:4])
    stats = engine.stats()
    assert stats["batches"] >= 1
    assert stats["batched_items"] >= 4
    assert set(stats["tokenization_cache"]) >= {"hits", "misses", "size"}


def test_closed_engine_rejects_work(fitted_logreg, small_splits):
    eng = InferenceEngine(fitted_logreg)
    eng.close()
    with pytest.raises(RuntimeError):
        eng.predict_many(small_splits.test[:1])
    with pytest.raises(RuntimeError):
        eng.submit(small_splits.test[0])
    eng.close()  # idempotent


def test_error_propagates_to_futures(fitted_logreg):
    with InferenceEngine(fitted_logreg) as eng:
        future = eng.submit("not a window")
        with pytest.raises(Exception):
            future.result(timeout=10.0)


class TestTracing:
    def test_async_request_is_traced_with_lifecycle_events(
        self, fitted_logreg, small_splits
    ):
        from repro.perf.tracing import LIFECYCLE_EVENTS

        with InferenceEngine(fitted_logreg) as eng:
            future = eng.submit(small_splits.test[0])
            future.result(timeout=10.0)
            traces = eng.recent_traces()
        assert len(traces) == 1
        trace = traces[0]
        names = [e["name"] for e in trace["events"]]
        assert names == list(LIFECYCLE_EVENTS)
        times = [e["t_ms"] for e in trace["events"]]
        assert times == sorted(times)
        assert trace["total_ms"] > 0
        assert trace["metadata"]["batch_size"] == 1

    def test_slow_request_hits_ring_and_jsonl(
        self, fitted_logreg, small_splits, tmp_path, monkeypatch
    ):
        """A deliberately slow request must surface in the trace ring
        buffer AND the slow-request JSONL with all six lifecycle events
        in order."""
        import json
        import time as _time

        from repro.perf.tracing import LIFECYCLE_EVENTS

        real_predict = fitted_logreg.predict_proba

        def slow_predict(windows):
            _time.sleep(0.05)
            return real_predict(windows)

        monkeypatch.setattr(fitted_logreg, "predict_proba", slow_predict)
        log = tmp_path / "slow_requests.jsonl"
        config = EngineConfig(
            slow_threshold_s=0.02, slow_log_path=str(log)
        )
        with InferenceEngine(fitted_logreg, config) as eng:
            future = eng.submit(small_splits.test[0])
            future.result(timeout=10.0)
            ring = eng.recent_traces()
            stats = eng.stats()

        assert stats["traces"]["slow"] == 1
        assert len(ring) == 1
        entries = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(entries) == 1
        entry = entries[0]
        assert entry["trace_id"] == ring[0]["trace_id"]
        names = [e["name"] for e in entry["events"]]
        assert names == list(LIFECYCLE_EVENTS)
        times = [e["t_ms"] for e in entry["events"]]
        assert times == sorted(times)
        assert entry["total_ms"] >= 20.0

    def test_tracing_disabled_records_nothing(
        self, fitted_logreg, small_splits
    ):
        config = EngineConfig(tracing=False)
        with InferenceEngine(fitted_logreg, config) as eng:
            future = eng.submit(small_splits.test[0])
            future.result(timeout=10.0)
            assert eng.recent_traces() == []
            assert eng.stats()["traces"]["finished"] == 0

    def test_latency_observations_feed_registry(
        self, fitted_logreg, small_splits
    ):
        perf.reset()
        with InferenceEngine(fitted_logreg) as eng:
            futures = [eng.submit(w) for w in small_splits.test[:4]]
            for f in futures:
                f.result(timeout=10.0)
        snap = perf.snapshot()
        lat = snap["observations"]["serve.request.latency_seconds"]
        assert lat["hist"]["count"] == 4
        assert "serve.request.queue_wait_seconds" in snap["observations"]
        assert "serve.queue_depth" in snap["gauges"]
        assert "serve.in_flight_batches" in snap["gauges"]
        perf.reset()

    def test_ring_buffer_is_bounded(self, fitted_logreg, small_splits):
        config = EngineConfig(trace_ring_size=4)
        with InferenceEngine(fitted_logreg, config) as eng:
            futures = [
                eng.submit(small_splits.test[i % len(small_splits.test)])
                for i in range(10)
            ]
            for f in futures:
                f.result(timeout=10.0)
            traces = eng.recent_traces()
            stats = eng.stats()
        assert len(traces) == 4
        assert stats["traces"]["finished"] == 10


def test_tokenization_cache_restored_after_close(small_splits, small_dataset):
    from repro.models.neural_common import TrainerConfig
    from repro.models.plm import PLMConfig
    from repro.models.roberta import RobertaRiskModel

    model = RobertaRiskModel(
        config=PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32,
                         max_len=64),
        trainer=TrainerConfig(epochs=1, batch_size=8, patience=2, seed=0),
        pretrain_texts=small_dataset.pretrain_texts[:200],
        pretrain_steps=1,
        seed=0,
    )
    model.fit(small_splits.train, small_splits.validation)
    original = model.pipeline.encode_post
    with InferenceEngine(model) as eng:
        assert model.pipeline.encode_post is not original
        eng.predict_many(small_splits.test)
        eng.predict_many(small_splits.test)  # second pass hits the cache
        cache = eng.stats()["tokenization_cache"]
    assert cache["hits"] > 0
    assert model.pipeline.encode_post == original  # shadow removed


@pytest.mark.perf_smoke
def test_engine_throughput_beats_per_window(fitted_logreg, small_splits):
    # Best of three: single-shot wall-clock ratios flake under CPU
    # contention; the batching advantage itself is stable.
    results = [
        run_serve_bench(
            fitted_logreg,
            small_splits.test,
            requests=128,
            config=EngineConfig(max_batch_size=32),
        )
        for _ in range(3)
    ]
    assert all(r.labels_identical for r in results)
    assert all(r.max_prob_diff < 1e-9 for r in results)
    assert max(r.speedup for r in results) > 1.2


@pytest.mark.perf_smoke
def test_serve_counters_flow_through_perf(fitted_logreg, small_splits):
    windows = small_splits.test[:8]
    perf.reset()
    with InferenceEngine(fitted_logreg) as eng:
        eng.predict_many(windows)
    report = perf.report()

    def total(counter):
        return sum(
            stat["count"] for path, stat in report.items()
            if path.rsplit("/", 1)[-1] == counter
        )

    assert total("serve.requests") == len(windows)
    assert total("serve.batches") >= 1
    assert any(path.endswith("serve.predict_many") for path in report)
