"""REPRO-TWIN: true positives and false positives (cross-file rule)."""

import textwrap

from repro.analysis.engine import LintEngine
from repro.analysis.rules.twin import ReferenceTwinRule, twin_candidates


def run_twin(tmp_path, kernel_source: str, test_source: str | None = None):
    """Lint one kernel module inside a throwaway project root."""
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir(exist_ok=True)
    if test_source is not None:
        (tests_dir / "test_equiv.py").write_text(
            textwrap.dedent(test_source), encoding="utf-8"
        )
    kernel = tmp_path / "kernels.py"
    kernel.write_text(textwrap.dedent(kernel_source), encoding="utf-8")
    engine = LintEngine(rules=[ReferenceTwinRule()], root=tmp_path)
    return engine.run([kernel]).findings


def test_twin_candidates_handle_underscore_and_infix_forms():
    assert twin_candidates("scatter_add_rows_reference") == {
        "scatter_add_rows"
    }
    assert twin_candidates("_train_reference") == {"_train", "train"}
    assert twin_candidates("_train_reference_from_frequencies") == {
        "_train_from_frequencies", "train_from_frequencies",
    }


# -- true positives ----------------------------------------------------------


def test_reference_without_twin_is_flagged(tmp_path):
    findings = run_twin(tmp_path, """\
    def scan_reference(xs):
        return sorted(xs)
    """)
    assert [f.rule for f in findings] == ["REPRO-TWIN"]
    assert "no fast twin" in findings[0].message


def test_reference_without_equivalence_test_is_flagged(tmp_path):
    findings = run_twin(tmp_path, """\
    def scan(xs):
        return sorted(xs)


    def scan_reference(xs):
        return sorted(xs)
    """, test_source="def test_unrelated():\n    assert True\n")
    assert [f.rule for f in findings] == ["REPRO-TWIN"]
    assert "equivalence test" in findings[0].message


def test_twin_in_another_module_does_not_count(tmp_path):
    (tmp_path / "fast.py").write_text(
        "def scan(xs):\n    return sorted(xs)\n", encoding="utf-8"
    )
    findings = run_twin(tmp_path, """\
    def scan_reference(xs):
        return sorted(xs)
    """, test_source="from kernels import scan_reference\n")
    # fast.py is not even linted; same-module means same module.
    assert [f.rule for f in findings] == ["REPRO-TWIN"]


# -- false positives ---------------------------------------------------------


def test_paired_and_tested_reference_is_clean(tmp_path):
    assert run_twin(tmp_path, """\
    def scan(xs):
        return sorted(xs)


    def scan_reference(xs):
        return sorted(xs)
    """, test_source="""\
    from kernels import scan, scan_reference


    def test_equivalence():
        assert scan([2, 1]) == scan_reference([2, 1])
    """) == []


def test_private_reference_with_public_twin_is_clean(tmp_path):
    assert run_twin(tmp_path, """\
    class Tok:
        def train(self, xs):
            return xs

        def _train_reference(self, xs):
            return xs
    """, test_source="# exercises Tok._train_reference against train\n") == []


def test_function_without_reference_marker_is_out_of_scope(tmp_path):
    assert run_twin(tmp_path, """\
    def preference_score(xs):
        return sum(xs)
    """) == []


def test_noqa_on_the_def_line_suppresses(tmp_path):
    assert run_twin(tmp_path, """\
    def scan_reference(xs):  # repro: noqa[REPRO-TWIN]
        return sorted(xs)
    """) == []
