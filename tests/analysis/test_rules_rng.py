"""REPRO-RNG: true positives and false positives."""

import textwrap

from repro.analysis.engine import LintEngine
from repro.analysis.rules.rng import RngDisciplineRule


def lint(source: str):
    engine = LintEngine(rules=[RngDisciplineRule()])
    return engine.check_source(textwrap.dedent(source), path="mod.py")


# -- true positives ----------------------------------------------------------


def test_np_random_seed_is_flagged():
    findings = lint("""\
    import numpy as np

    np.random.seed(0)
    """)
    assert [f.rule for f in findings] == ["REPRO-RNG"]
    assert "np.random.seed" in findings[0].message


def test_np_random_sampling_calls_are_flagged():
    findings = lint("""\
    import numpy as np

    a = np.random.rand(3)
    b = np.random.randint(0, 10)
    np.random.shuffle(a)
    """)
    assert len(findings) == 3


def test_numpy_random_module_alias_is_flagged():
    findings = lint("""\
    import numpy.random as npr

    x = npr.normal(0.0, 1.0)
    """)
    assert len(findings) == 1


def test_from_numpy_import_random_alias_is_flagged():
    findings = lint("""\
    from numpy import random as nprand

    x = nprand.uniform()
    """)
    assert len(findings) == 1


def test_from_numpy_random_import_legacy_name_is_flagged():
    findings = lint("from numpy.random import shuffle\n")
    assert len(findings) == 1


def test_stdlib_random_module_calls_are_flagged():
    findings = lint("""\
    import random

    x = random.choice([1, 2, 3])
    random.seed(7)
    """)
    assert len(findings) == 2


def test_from_random_import_global_fn_is_flagged():
    findings = lint("from random import shuffle\n")
    assert len(findings) == 1


def test_use_before_late_import_is_still_flagged():
    # Imports are pre-scanned, so lexical order does not matter.
    findings = lint("""\
    def f():
        import random
        return random.random()
    """)
    assert len(findings) == 1


# -- false positives ---------------------------------------------------------


def test_default_rng_and_generator_api_are_clean():
    assert lint("""\
    import numpy as np

    rng = np.random.default_rng(1234)
    x = rng.random(8)
    rng.shuffle(x)
    ss = np.random.SeedSequence(5)
    gen: np.random.Generator = np.random.default_rng(ss)
    """) == []


def test_seeded_random_random_instance_is_clean():
    assert lint("""\
    import random

    rng = random.Random(7)
    x = rng.choice([1, 2, 3])
    """) == []


def test_unrelated_module_named_random_attribute_is_clean():
    # 'self.random' / 'config.random' are not the stdlib module.
    assert lint("""\
    def f(config):
        return config.random.choice([1])
    """) == []


def test_non_legacy_from_imports_are_clean():
    assert lint("from numpy.random import default_rng, Generator\n") == []
