"""Baseline mechanics: matching, line drift, staleness, justification."""

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.engine import LintEngine
from repro.analysis.rules.rng import RngDisciplineRule


def _lint_file(tmp_path, source: str):
    target = tmp_path / "mod.py"
    target.write_text(source, encoding="utf-8")
    engine = LintEngine(rules=[RngDisciplineRule()], root=tmp_path)
    return engine.run([target]).findings


VIOLATION = "x = random.random()"


def _entry(description="grandfathered while the sampler migrates"):
    return BaselineEntry(
        rule="REPRO-RNG",
        path="mod.py",
        context=VIOLATION,
        description=description,
    )


def test_matching_entry_moves_finding_out_of_new(tmp_path):
    findings = _lint_file(tmp_path, f"import random\n{VIOLATION}\n")
    new, baselined, stale = Baseline(entries=[_entry()]).apply(findings)
    assert new == []
    assert [f.rule for f in baselined] == ["REPRO-RNG"]
    assert stale == []


def test_matching_survives_line_number_drift(tmp_path):
    # Same violation, pushed down by unrelated edits: the entry matches
    # on (rule, path, context), not on the line number.
    findings = _lint_file(
        tmp_path,
        "import random\n\n\nVERSION = 2\n\n" + VIOLATION + "\n",
    )
    assert findings[0].line == 6
    new, baselined, stale = Baseline(entries=[_entry()]).apply(findings)
    assert new == [] and stale == []


def test_unmatched_entry_is_stale(tmp_path):
    findings = _lint_file(
        tmp_path, "import numpy as np\nrng = np.random.default_rng(0)\n"
    )
    new, baselined, stale = Baseline(entries=[_entry()]).apply(findings)
    assert findings == [] and new == [] and baselined == []
    assert stale == [_entry()]


def test_one_entry_may_cover_repeated_identical_lines(tmp_path):
    findings = _lint_file(
        tmp_path, f"import random\n{VIOLATION}\n{VIOLATION}\n"
    )
    assert len(findings) == 2
    new, baselined, stale = Baseline(entries=[_entry()]).apply(findings)
    assert new == [] and len(baselined) == 2 and stale == []


def test_write_load_roundtrip(tmp_path):
    path = Baseline(entries=[_entry()]).write(tmp_path / "baseline.json")
    assert Baseline.load(path).entries == [_entry()]


def test_empty_description_is_rejected(tmp_path):
    path = Baseline(entries=[_entry(description="  ")]).write(
        tmp_path / "baseline.json"
    )
    with pytest.raises(BaselineError, match="empty description"):
        Baseline.load(path)


def test_missing_keys_are_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps({"version": 1, "entries": [{"rule": "REPRO-RNG"}]}),
        encoding="utf-8",
    )
    with pytest.raises(BaselineError, match="missing"):
        Baseline.load(path)


def test_malformed_json_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(BaselineError, match="cannot read"):
        Baseline.load(path)


# -- CLI integration ---------------------------------------------------------


def test_cli_baselined_finding_exits_zero(tmp_path, capsys):
    from repro.analysis.cli import main

    (tmp_path / "mod.py").write_text(
        f"import random\n{VIOLATION}\n", encoding="utf-8"
    )
    baseline_path = Baseline(entries=[_entry()]).write(
        tmp_path / "baseline.json"
    )
    rc = main([
        str(tmp_path / "mod.py"), "--root", str(tmp_path),
        "--baseline", str(baseline_path),
    ])
    assert rc == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_stale_entry_exits_one(tmp_path, capsys):
    from repro.analysis.cli import main

    # The violation was fixed but its baseline entry was not deleted.
    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    baseline_path = Baseline(entries=[_entry()]).write(
        tmp_path / "baseline.json"
    )
    rc = main([
        str(tmp_path / "mod.py"), "--root", str(tmp_path),
        "--baseline", str(baseline_path),
    ])
    assert rc == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_no_baseline_flag_reports_grandfathered_findings(tmp_path, capsys):
    from repro.analysis.cli import main

    (tmp_path / "mod.py").write_text(
        f"import random\n{VIOLATION}\n", encoding="utf-8"
    )
    Baseline(entries=[_entry()]).write(tmp_path / "lint_baseline.json")
    assert main([str(tmp_path / "mod.py"), "--root", str(tmp_path)]) == 0
    rc = main([
        str(tmp_path / "mod.py"), "--root", str(tmp_path), "--no-baseline",
    ])
    assert rc == 1


def test_cli_malformed_baseline_exits_two(tmp_path, capsys):
    from repro.analysis.cli import main

    (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
    bad = tmp_path / "baseline.json"
    bad.write_text("[]", encoding="utf-8")
    rc = main([
        str(tmp_path / "mod.py"), "--root", str(tmp_path),
        "--baseline", str(bad),
    ])
    assert rc == 2
    assert "repro lint:" in capsys.readouterr().err
