"""REPRO-LOCK: true positives and false positives."""

import textwrap

from repro.analysis.engine import LintEngine
from repro.analysis.rules.lock import LockDisciplineRule


def lint(source: str):
    engine = LintEngine(rules=[LockDisciplineRule()])
    return engine.check_source(textwrap.dedent(source), path="mod.py")


HEADER = """\
import threading


class Shared:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self._total = 0
"""


# -- true positives ----------------------------------------------------------


def test_plain_assign_outside_lock_is_flagged():
    findings = lint(HEADER + """
    def clear(self):
        self._items = {}
""")
    assert [f.rule for f in findings] == ["REPRO-LOCK"]
    assert "self._items" in findings[0].message


def test_augassign_outside_lock_is_flagged():
    findings = lint(HEADER + """
    def bump(self):
        self._total += 1
""")
    assert len(findings) == 1


def test_subscript_store_outside_lock_is_flagged():
    findings = lint(HEADER + """
    def put(self, key, value):
        self._items[key] = value
""")
    assert len(findings) == 1


def test_delete_outside_lock_is_flagged():
    findings = lint(HEADER + """
    def drop(self):
        del self._items
""")
    assert len(findings) == 1


def test_tuple_target_assign_outside_lock_is_flagged():
    findings = lint(HEADER + """
    def swap(self, total):
        self._total, total = total, self._total
""")
    assert len(findings) == 1


def test_mutation_in_closure_is_flagged_even_under_with():
    # The closure may run on another thread long after the 'with' exits.
    findings = lint(HEADER + """
    def make(self):
        with self._lock:
            def cb():
                self._total += 1
            return cb
""")
    assert len(findings) == 1


def test_rlock_counts_as_a_lock():
    findings = lint("""\
    import threading


    class Shared:
        def __init__(self):
            self._lock = threading.RLock()
            self._total = 0

        def bump(self):
            self._total += 1
    """)
    assert len(findings) == 1


# -- false positives ---------------------------------------------------------


def test_mutation_under_with_lock_is_clean():
    assert lint(HEADER + """
    def put(self, key, value):
        with self._lock:
            self._items[key] = value
""") == []


def test_mutation_in_nested_block_under_with_lock_is_clean():
    assert lint(HEADER + """
    def put(self, key, value):
        with self._lock:
            if key not in self._items:
                self._items[key] = value
""") == []


def test_init_is_exempt():
    assert lint(HEADER) == []


def test_class_without_lock_is_out_of_scope():
    assert lint("""\
    class Plain:
        def __init__(self):
            self._items = {}

        def put(self, key, value):
            self._items[key] = value
    """) == []


def test_local_and_nested_attribute_mutations_are_clean():
    assert lint(HEADER + """
    def read(self, key):
        total = 0
        total += 1
        self._local.stack = []
        return self._items.get(key, total)
""") == []


def test_method_call_mutation_is_left_to_review():
    # append()/clear() through a method call is out of static reach.
    assert lint(HEADER + """
    def reset(self):
        self._items.clear()
""") == []
