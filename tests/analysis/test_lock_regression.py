"""Regression guard: REPRO-LOCK must catch the original PR 3 bug class.

``pr3_registry_prefix.py`` vendors the pre-fix ``PerfRegistry`` hot path
(see its docstring for the adaptation note). If a refactor of the lock
rule ever stops flagging those unlocked read-modify-writes, this test —
not a production data race — is what fails.
"""

from pathlib import Path

import pytest

from repro.analysis.engine import LintEngine
from repro.analysis.rules.lock import LockDisciplineRule

FIXTURE = Path(__file__).with_name("pr3_registry_prefix.py")


@pytest.mark.perf_smoke
def test_prefix_perf_registry_unlocked_writes_are_flagged():
    engine = LintEngine(rules=[LockDisciplineRule()], root=FIXTURE.parent)
    result = engine.run([FIXTURE])
    findings = [f for f in result.findings if f.rule == "REPRO-LOCK"]
    # One unlocked store in span()'s finally block, one in count().
    assert len(findings) == 2, [f.as_dict() for f in result.findings]
    for finding in findings:
        assert "self._stats[path] = stat" in finding.context
        assert "outside 'with self._lock'" in finding.message
    assert {f.line for f in findings} == {
        lineno
        for lineno, line in enumerate(
            FIXTURE.read_text(encoding="utf-8").splitlines(), start=1
        )
        if "unlocked read-modify-write" in line
    }


@pytest.mark.perf_smoke
def test_fixed_registry_no_longer_trips_the_rule():
    # The shipped registry (post-hotfix) must be lint-clean: the guard
    # proves the rule separates the pre-fix and fixed implementations.
    repo_root = FIXTURE.resolve().parents[2]
    engine = LintEngine(rules=[LockDisciplineRule()], root=repo_root)
    result = engine.run([repo_root / "src" / "repro" / "perf"])
    assert result.findings == [], [f.as_dict() for f in result.findings]
