"""The repo's own sources must satisfy the repro lint rules.

This is the dogfood gate: ``src/`` must be clean modulo the checked-in
baseline (mirroring the CI lint job), every baseline entry must still
match a real finding, and the RNG discipline audited for ``tests/`` and
``scripts/`` stays a regression test rather than a one-off sweep.
"""

from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintEngine
from repro.analysis.reporters import LintReport, render_text
from repro.analysis.rules.rng import RngDisciplineRule

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_is_clean_modulo_checked_in_baseline():
    engine = LintEngine(root=REPO_ROOT)
    result = engine.run([REPO_ROOT / "src"])
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    new, baselined, stale = baseline.apply(result.findings)
    report = LintReport(
        new=new, baselined=baselined, stale=stale,
        files_checked=result.files_checked, suppressed=result.suppressed,
    )
    assert report.exit_code == 0, "\n" + render_text(report)
    assert new == [], [f.as_dict() for f in new]
    assert stale == [], "baseline entries no longer match — delete them"


def test_checked_in_baseline_entries_are_justified():
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    assert baseline.entries, "baseline exists, so it must carry entries"
    for entry in baseline.entries:
        assert len(entry.description) > 20, entry


def test_no_legacy_rng_in_tests_or_scripts():
    engine = LintEngine(rules=[RngDisciplineRule()], root=REPO_ROOT)
    result = engine.run([REPO_ROOT / "tests", REPO_ROOT / "scripts"])
    assert result.findings == [], [f.as_dict() for f in result.findings]
