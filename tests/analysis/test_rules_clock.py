"""REPRO-CLOCK: true positives and false positives."""

import textwrap

from repro.analysis.engine import LintEngine
from repro.analysis.rules.clock import WallClockRule


def lint(source: str, module: str = "repro.core.mod", path: str = "mod.py"):
    engine = LintEngine(rules=[WallClockRule()])
    return engine.check_source(
        textwrap.dedent(source), path=path, module=module
    )


# -- true positives ----------------------------------------------------------


def test_time_time_is_flagged():
    findings = lint("""\
    import time

    stamp = time.time()
    """)
    assert [f.rule for f in findings] == ["REPRO-CLOCK"]
    assert "time.time()" in findings[0].message


def test_time_module_alias_is_flagged():
    findings = lint("""\
    import time as clk

    stamp = clk.time()
    """)
    assert len(findings) == 1


def test_from_time_import_time_is_flagged():
    findings = lint("""\
    from time import time

    stamp = time()
    """)
    assert len(findings) == 1


def test_datetime_now_and_utcnow_are_flagged():
    findings = lint("""\
    from datetime import datetime

    a = datetime.now()
    b = datetime.utcnow()
    """)
    assert len(findings) == 2


def test_date_today_is_flagged():
    findings = lint("""\
    from datetime import date

    d = date.today()
    """)
    assert len(findings) == 1


def test_datetime_module_attribute_form_is_flagged():
    findings = lint("""\
    import datetime

    a = datetime.datetime.now()
    b = datetime.date.today()
    """)
    assert len(findings) == 2


def test_fixture_paths_without_repro_module_are_not_exempt():
    findings = lint("""\
    import time

    stamp = time.time()
    """, module=None, path="scripts/tool.py")
    assert len(findings) == 1


# -- false positives ---------------------------------------------------------


def test_perf_and_serve_modules_are_allowlisted():
    source = """\
    import time

    stamp = time.time()
    """
    assert lint(source, module="repro.perf.tracing") == []
    assert lint(source, module="repro.serve.engine") == []
    # The worker pool reads wall clocks for request latency accounting;
    # pin that it stays covered by the repro.serve allowlist prefix.
    assert lint(source, module="repro.serve.pool") == []


def test_allowlist_applies_via_path_inference():
    source = """\
    import time

    stamp = time.time()
    """
    assert lint(source, module=None, path="src/repro/perf/custom.py") == []


def test_monotonic_clocks_are_always_fine():
    assert lint("""\
    import time

    t0 = time.perf_counter()
    t1 = time.monotonic()
    dt = time.perf_counter() - t0
    """) == []


def test_datetime_constructor_and_parsing_are_clean():
    assert lint("""\
    from datetime import datetime

    a = datetime(2024, 1, 1)
    b = datetime.fromisoformat("2024-01-01T00:00:00")
    c = datetime.combine(a.date(), a.time())
    """) == []


def test_unrelated_time_attribute_is_clean():
    assert lint("""\
    def f(row):
        return row.time()
    """) == []
