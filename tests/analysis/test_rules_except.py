"""REPRO-EXCEPT: true positives and false positives."""

import textwrap

from repro.analysis.engine import LintEngine
from repro.analysis.rules.excepts import BroadExceptRule


def lint(source: str):
    engine = LintEngine(rules=[BroadExceptRule()])
    return engine.check_source(textwrap.dedent(source), path="mod.py")


# -- true positives ----------------------------------------------------------


def test_silent_except_exception_is_flagged():
    findings = lint("""\
    def f():
        try:
            risky()
        except Exception:
            pass
    """)
    assert [f.rule for f in findings] == ["REPRO-EXCEPT"]
    assert "except Exception" in findings[0].message


def test_bare_except_is_flagged():
    findings = lint("""\
    def f():
        try:
            risky()
        except:
            return None
    """)
    assert len(findings) == 1
    assert "bare except" in findings[0].message


def test_broad_member_of_tuple_is_flagged():
    findings = lint("""\
    def f():
        try:
            risky()
        except (ValueError, Exception):
            return None
    """)
    assert len(findings) == 1


def test_logging_without_reraise_is_still_flagged():
    findings = lint("""\
    def f(log):
        try:
            risky()
        except BaseException as exc:
            log.warning("boom %s", exc)
    """)
    assert len(findings) == 1


# -- false positives ---------------------------------------------------------


def test_reraise_is_clean():
    assert lint("""\
    def f():
        try:
            risky()
        except Exception:
            cleanup()
            raise
    """) == []


def test_raise_from_is_clean():
    assert lint("""\
    def f():
        try:
            risky()
        except Exception as exc:
            raise RuntimeError("wrapped") from exc
    """) == []


def test_failing_a_future_is_clean():
    assert lint("""\
    def f(fut):
        try:
            risky()
        except Exception as exc:
            fut.set_exception(exc)
    """) == []


def test_justifying_comment_on_the_handler_is_clean():
    assert lint("""\
    def f():
        try:
            risky()
        except Exception:  # deliberate: a corrupt entry is a cache miss
            return None
    """) == []


def test_justifying_comment_between_except_and_body_is_clean():
    assert lint("""\
    def f():
        try:
            risky()
        except Exception:
            # Deliberate degradation: a corrupt entry is a cache miss
            # and the caller rebuilds it; the event is counted.
            return None
    """) == []


def test_narrow_handlers_are_out_of_scope():
    assert lint("""\
    def f():
        try:
            risky()
        except (OSError, ValueError):
            return None
    """) == []
