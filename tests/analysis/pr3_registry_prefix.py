"""Vendored pre-fix PerfRegistry snippet — REPRO-LOCK regression fixture.

Condensed from ``src/repro/perf/__init__.py`` as of the commit before
PR 3's thread-safety hotfix ("Fix PerfRegistry thread safety and
write_json key clobbering"): the registry shared one ``_stats`` dict and
one ``_stack`` across every thread and updated them with unlocked
read-modify-writes, so the micro-batching engine's batcher + worker
threads silently corrupted span trees. The ``setdefault`` of the
original is spelled out as the get/store it performs, and the class owns
the ``threading.Lock`` the hotfix introduced — with ``span``/``count``
still mutating outside it, which is precisely the intermediate state
REPRO-LOCK exists to reject.

This file is analyzer *input* (tests/analysis/test_lock_regression.py);
it is never imported by production code and must not be "fixed".
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class PerfStat:
    path: str
    total_s: float = 0.0
    calls: int = 0
    count: int = 0


class PerfRegistry:
    """Pre-fix registry: lock-owning, but the hot path ignores the lock."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._stats: dict[str, PerfStat] = {}
        self._stack: list[str] = []

    def _path(self, name: str) -> str:
        return "/".join([*self._stack, name])

    @contextmanager
    def span(self, name: str):
        path = self._path(name)
        self._stack.append(name)
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            self._stack.pop()
            stat = self._stats.get(path)
            if stat is None:
                stat = PerfStat(path)
                self._stats[path] = stat  # unlocked read-modify-write
            stat.total_s += elapsed
            stat.calls += 1

    def count(self, name: str, n: int = 1) -> None:
        path = self._path(name)
        stat = self._stats.get(path)
        if stat is None:
            stat = PerfStat(path)
            self._stats[path] = stat  # unlocked read-modify-write
        stat.count += n

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
