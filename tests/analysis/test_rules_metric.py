"""REPRO-METRIC: true/false positives plus static↔runtime agreement."""

import textwrap

import pytest

from repro.analysis.engine import LintEngine, Severity
from repro.analysis.rules.metric import MetricNameRule, is_renderable


def lint(source: str):
    engine = LintEngine(rules=[MetricNameRule()])
    return engine.check_source(textwrap.dedent(source), path="mod.py")


# -- true positives ----------------------------------------------------------


def test_newline_in_metric_name_is_an_error():
    findings = lint('perf.count("serve\\nbatch")\n')
    assert [f.rule for f in findings] == ["REPRO-METRIC"]
    assert findings[0].severity is Severity.ERROR
    assert "invalid Prometheus" in findings[0].message


def test_style_violation_is_a_warning_only():
    findings = lint('with perf.span("Serve.Batch"):\n    pass\n')
    assert [f.severity for f in findings] == [Severity.WARNING]
    assert "lowercase dotted style" in findings[0].message


def test_registry_named_receivers_are_in_scope():
    findings = lint('registry.gauge("Bad Name")\n'
                    '_REGISTRY.observe("Also Bad", 1.0)\n')
    assert len(findings) == 2


# -- false positives ---------------------------------------------------------


def test_repo_style_names_are_clean():
    assert lint(
        'perf.count("cache.read_error")\n'
        'perf.gauge("serve.queue_depth", 3)\n'
        'with perf.span("run_repeated.seeds"):\n    pass\n'
        'perf.observe("serve.request.latency_seconds", 0.1)\n'
    ) == []


def test_str_and_list_count_receivers_are_out_of_scope():
    assert lint("""\
    def f(text, xs):
        return text.count("ABC") + xs.count(0)
    """) == []


def test_dynamic_names_are_left_to_runtime():
    assert lint("""\
    def f(name):
        perf.count(name)
        perf.count("prefix." + name)
        perf.count(f"serve.{name}")
    """) == []


def test_call_without_args_is_ignored():
    assert lint("perf.count()\n") == []


# -- static/runtime agreement ------------------------------------------------

AGREEMENT_FIXTURES = [
    "serve.batch",
    "run_repeated.seeds",
    "serve.request.latency_seconds",
    "Serve.Batch",          # style-only: renderable, wrong case
    "metric-name",          # style-only: renderable after sanitisation
    "a\nb",                 # newline splits the # HELP line
    "bad\nname.with\nnewlines",
]


@pytest.mark.parametrize("name", AGREEMENT_FIXTURES)
def test_static_verdict_matches_runtime_export_pipeline(name):
    from repro.perf.export import render_prometheus, validate_prometheus

    try:
        validate_prometheus(render_prometheus({"counters": {name: 1}}))
        runtime_ok = True
    except ValueError:
        runtime_ok = False

    assert is_renderable(name) == runtime_ok

    findings = lint(f"perf.count({name!r})\n")
    static_error = any(f.severity is Severity.ERROR for f in findings)
    assert static_error == (not runtime_ok), (
        f"static analyzer and repro.perf.export disagree on {name!r}"
    )
