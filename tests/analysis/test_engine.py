"""Engine mechanics: noqa suppression scope, parse errors, reporters, CLI."""

import json
import textwrap

import pytest

from repro.analysis.engine import (
    PARSE_RULE_ID,
    LintEngine,
    Severity,
    module_name,
)
from repro.analysis.reporters import LintReport, render_json, render_text
from repro.analysis.rules.clock import WallClockRule
from repro.analysis.rules.rng import RngDisciplineRule


def lint(source: str, rules, module: str = "repro.core.mod"):
    engine = LintEngine(rules=rules)
    return engine.check_source(
        textwrap.dedent(source), path="mod.py", module=module
    )


BOTH_RULES_SOURCE = """\
import random
import time


def f():
    return random.random() + time.time(){noqa}
"""


def test_line_violating_two_rules_yields_two_findings():
    findings = lint(
        BOTH_RULES_SOURCE.format(noqa=""),
        [RngDisciplineRule(), WallClockRule()],
    )
    assert sorted(f.rule for f in findings) == ["REPRO-CLOCK", "REPRO-RNG"]


def test_noqa_silences_exactly_the_named_rule_on_that_line():
    findings = lint(
        BOTH_RULES_SOURCE.format(noqa="  # repro: noqa[REPRO-RNG]"),
        [RngDisciplineRule(), WallClockRule()],
    )
    # REPRO-RNG is silenced; the co-located REPRO-CLOCK finding survives.
    assert [f.rule for f in findings] == ["REPRO-CLOCK"]


def test_noqa_accepts_comma_separated_rule_ids():
    findings = lint(
        BOTH_RULES_SOURCE.format(
            noqa="  # repro: noqa[REPRO-RNG, REPRO-CLOCK]"
        ),
        [RngDisciplineRule(), WallClockRule()],
    )
    assert findings == []


def test_noqa_on_another_line_does_not_suppress():
    source = """\
    import random

    # repro: noqa[REPRO-RNG]
    x = random.random()
    """
    findings = lint(source, [RngDisciplineRule()])
    assert [f.rule for f in findings] == ["REPRO-RNG"]


def test_noqa_inside_a_string_literal_is_not_a_suppression():
    source = """\
    import random

    x = random.random(); s = "# repro: noqa[REPRO-RNG]"
    """
    findings = lint(source, [RngDisciplineRule()])
    assert [f.rule for f in findings] == ["REPRO-RNG"]


def test_suppressions_are_counted(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import random\n"
        "x = random.random()  # repro: noqa[REPRO-RNG]\n",
        encoding="utf-8",
    )
    result = LintEngine(
        rules=[RngDisciplineRule()], root=tmp_path
    ).run([target])
    assert result.findings == []
    assert result.suppressed == 1
    assert result.files_checked == 1


def test_syntax_error_becomes_parse_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n    pass\n", encoding="utf-8")
    result = LintEngine(rules=[], root=tmp_path).run([target])
    assert [f.rule for f in result.findings] == [PARSE_RULE_ID]
    assert result.findings[0].severity is Severity.ERROR


def test_module_name_inference():
    assert module_name("src/repro/serve/engine.py") == "repro.serve.engine"
    assert module_name("src/repro/perf/export.py") == "repro.perf.export"
    assert module_name("scripts/lint.py") is None


def test_findings_are_sorted_by_path_line_rule(tmp_path):
    (tmp_path / "b.py").write_text(
        "import random\nx = random.random()\n", encoding="utf-8"
    )
    (tmp_path / "a.py").write_text(
        "import random\ny = random.choice([1])\n", encoding="utf-8"
    )
    result = LintEngine(
        rules=[RngDisciplineRule()], root=tmp_path
    ).run([tmp_path])
    assert [f.path for f in result.findings] == ["a.py", "b.py"]


# -- reporters ---------------------------------------------------------------


def _report_with_one_finding():
    findings = lint(
        BOTH_RULES_SOURCE.format(noqa=""), [WallClockRule()]
    )
    return LintReport(new=findings, files_checked=1)


def test_text_reporter_shows_location_rule_and_context():
    text = render_text(_report_with_one_finding())
    assert "mod.py:6: REPRO-CLOCK error:" in text
    assert "return random.random() + time.time()" in text
    assert "FAILED" in text


def test_json_reporter_is_machine_readable():
    payload = json.loads(render_json(_report_with_one_finding()))
    assert payload["summary"]["errors"] == 1
    assert payload["summary"]["exit_code"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "REPRO-CLOCK"
    assert finding["path"] == "mod.py"
    assert finding["line"] == 6


def test_warnings_do_not_fail_the_exit_code():
    finding = lint(BOTH_RULES_SOURCE.format(noqa=""), [WallClockRule()])[0]
    downgraded = LintReport(
        new=[
            type(finding)(
                rule=finding.rule,
                severity=Severity.WARNING,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                context=finding.context,
            )
        ]
    )
    assert downgraded.exit_code == 0
    assert len(downgraded.warnings) == 1


# -- CLI ---------------------------------------------------------------------


@pytest.fixture
def bad_file(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(
        "import random\nx = random.random()\n", encoding="utf-8"
    )
    return target


def test_cli_exits_nonzero_on_new_error(bad_file, tmp_path, capsys):
    from repro.analysis.cli import main

    assert main([str(bad_file), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REPRO-RNG" in out
    assert "FAILED" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    from repro.analysis.cli import main

    good = tmp_path / "good.py"
    good.write_text("import numpy as np\nrng = np.random.default_rng(0)\n",
                    encoding="utf-8")
    assert main([str(good), "--root", str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_output_writes_json_report(bad_file, tmp_path, capsys):
    from repro.analysis.cli import main

    report_path = tmp_path / "lint_report.json"
    rc = main([
        str(bad_file), "--root", str(tmp_path),
        "--format", "json", "--output", str(report_path),
    ])
    assert rc == 1
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["summary"]["errors"] == 1
    # The summary line still lands on stdout for CI logs.
    assert "repro lint:" in capsys.readouterr().out


def test_repro_cli_lint_subcommand_is_wired(bad_file, tmp_path, capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(bad_file), "--root", str(tmp_path)]) == 1
    assert "REPRO-RNG" in capsys.readouterr().out
