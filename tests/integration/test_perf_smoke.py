"""Fast perf sanity checks (``-m perf_smoke``; scripts/bench_smoke.py).

Each test times a vectorized kernel against its ``_reference`` twin on a
workload large enough that the vectorized path should win comfortably; the
assertions use generous margins so a loaded CI machine doesn't flake.
"""

import time

import numpy as np
import pytest

from repro.boosting.tree import RegressionTree, TreeParams
from repro.core.cache import BuildCache, build_dataset_cached, fingerprint
from repro.core.config import AnnotationConfig, CorpusConfig
from repro.preprocess.dedup import MinHasher, shingles

pytestmark = pytest.mark.perf_smoke


def _clock(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestKernelSmoke:
    def test_split_scan_beats_reference(self):
        # Node-level workload: many scans at the few-hundred-row node
        # sizes a growing tree actually sees.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 20))
        g = rng.normal(size=200)
        h = np.ones(200)
        tree = RegressionTree(TreeParams())
        rows = np.arange(200)
        cols = np.arange(20)
        args = (x, g, h, rows, cols, float(g.sum()), float(h.sum()))
        fast = _clock(lambda: [tree._best_split(*args) for _ in range(50)])
        slow = _clock(
            lambda: [tree._best_split_reference(*args) for _ in range(50)]
        )
        assert tree._best_split(*args)[1] == tree._best_split_reference(*args)[1]
        assert fast < slow  # usually ~3x below; margin for CI noise

    def test_minhash_beats_reference(self):
        hasher = MinHasher(num_perm=128)
        sets = [
            shingles(f"sample text number {i} with several shared words " * 3)
            for i in range(50)
        ]
        fast = _clock(lambda: [hasher.signature(s) for s in sets])
        slow = _clock(lambda: [hasher._signature_reference(s) for s in sets])
        assert fast < slow * 1.5


class TestCacheSmoke:
    def test_warm_cache_beats_cold_build(self, tmp_path):
        config = CorpusConfig().scaled(0.05)
        annotation = AnnotationConfig(seed=config.seed)
        cache = BuildCache(root=tmp_path / "cache")
        start = time.perf_counter()
        cold = build_dataset_cached(
            config, annotation, near_dedup=False, cache=cache
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = build_dataset_cached(
            config, annotation, near_dedup=False, cache=cache
        )
        warm_s = time.perf_counter() - start
        assert cache.has(fingerprint(config, annotation, True, False))
        assert warm.dataset.labels == cold.dataset.labels
        assert warm_s < cold_s  # disk load vs full pipeline
