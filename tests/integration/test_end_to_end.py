"""Integration tests across the full stack."""

import numpy as np

from repro import CorpusConfig, RiskAssessor, RiskLevel, build_dataset
from repro.boosting import GBMParams
from repro.eval.metrics import EvalReport, macro_f1


class TestFullPipeline:
    def test_build_fit_assess(self, small_dataset):
        assessor = RiskAssessor(
            "xgboost", params=GBMParams(n_estimators=8), max_tfidf_features=80
        ).fit(small_dataset)
        histories = small_dataset.histories()
        for author in small_dataset.most_active_users(3):
            level = assessor.assess(histories[author])
            assert level in set(RiskLevel)

    def test_model_beats_chance(self, small_dataset):
        splits = small_dataset.splits()
        assessor = RiskAssessor("xgboost").fit_windows(
            splits.train, splits.validation
        )
        y = np.array([int(w.label) for w in splits.test])
        pred = assessor.model.predict(splits.test)
        prior = np.bincount(
            [int(w.label) for w in splits.train], minlength=4
        ).max() / len(splits.train)
        report = EvalReport.compute("xgb", y, pred)
        # Better than always predicting the majority class, with slack
        # for the small test split.
        assert report.accuracy > prior - 0.15
        assert report.macro_f1 > 0.15

    def test_temporal_signal_exists(self, small_dataset):
        """Night-posting ratio correlates with user-level severity."""
        windows = small_dataset.windows()
        from repro.temporal.features import temporal_stats

        high = [
            temporal_stats(list(w.posts)).night_ratio
            for w in windows
            if w.label >= RiskLevel.BEHAVIOR
        ]
        low = [
            temporal_stats(list(w.posts)).night_ratio
            for w in windows
            if w.label == RiskLevel.INDICATOR
        ]
        assert np.mean(high) > np.mean(low)


class TestReproducibility:
    def test_same_seed_same_dataset(self):
        a = build_dataset(CorpusConfig(seed=321).scaled(0.03),
                          near_dedup=False).dataset
        b = build_dataset(CorpusConfig(seed=321).scaled(0.03),
                          near_dedup=False).dataset
        assert a.num_posts == b.num_posts
        assert [p.body for p in a.posts[:30]] == [p.body for p in b.posts[:30]]
        assert a.kappa == b.kappa

    def test_different_seed_different_dataset(self):
        a = build_dataset(CorpusConfig(seed=321).scaled(0.03),
                          near_dedup=False).dataset
        c = build_dataset(CorpusConfig(seed=654).scaled(0.03),
                          near_dedup=False).dataset
        assert [p.body for p in a.posts[:30]] != [p.body for p in c.posts[:30]]


class TestDataQualityChain:
    def test_no_dirty_text_reaches_models(self, small_dataset):
        for post in small_dataset.posts:
            assert "http" not in post.body.lower()
            assert "​" not in post.body  # zero-width

    def test_labels_correlate_with_oracle(self, small_dataset):
        """Campaign labels are a high-fidelity (not perfect) copy of truth."""
        y_true = [int(p.oracle_label) for p in small_dataset.posts]
        y_camp = [int(small_dataset.labels[p.post_id]) for p in small_dataset.posts]
        agreement = np.mean(np.array(y_true) == np.array(y_camp))
        assert 0.85 < agreement < 1.0
        assert macro_f1(y_true, y_camp) > 0.8
