"""Fused input-projection recurrence vs the per-step reference scan."""

import numpy as np
import pytest

from repro.nn import GRU, LSTM, Tensor

ATOL = 1e-8


def _pair(rnn_cls, seed=0, input_dim=5, hidden=4, bidirectional=False):
    """Two identically-initialised models (separate graphs for grad checks)."""
    a = rnn_cls(input_dim, hidden, np.random.default_rng(seed), bidirectional)
    b = rnn_cls(input_dim, hidden, np.random.default_rng(seed), bidirectional)
    return a, b


def _grads(module):
    return [p.grad for p in module.parameters()]


@pytest.mark.parametrize("rnn_cls", [GRU, LSTM])
class TestFusedScanEquivalence:
    def test_outputs_match(self, rnn_cls):
        rnn, _ = _pair(rnn_cls)
        x = np.random.default_rng(1).normal(size=(3, 6, 5))
        out_fast, h_fast = rnn._scan(rnn.fwd, Tensor(x), None, reverse=False)
        out_slow, h_slow = rnn._scan_reference(
            rnn.fwd, Tensor(x), None, reverse=False
        )
        np.testing.assert_allclose(out_fast.data, out_slow.data, atol=ATOL)
        np.testing.assert_allclose(h_fast.data, h_slow.data, atol=ATOL)

    def test_masked_reverse_match(self, rnn_cls):
        rnn, _ = _pair(rnn_cls, seed=3)
        x = np.random.default_rng(2).normal(size=(2, 5, 5))
        mask = np.ones((2, 5))
        mask[0, 3:] = 0.0
        mask[1, 4:] = 0.0
        out_fast, _ = rnn._scan(rnn.fwd, Tensor(x), mask, reverse=True)
        out_slow, _ = rnn._scan_reference(rnn.fwd, Tensor(x), mask, reverse=True)
        np.testing.assert_allclose(out_fast.data, out_slow.data, atol=ATOL)

    def test_gradients_match(self, rnn_cls):
        fast, slow = _pair(rnn_cls, seed=5)
        x = np.random.default_rng(4).normal(size=(2, 6, 5))
        out, _ = fast._scan(fast.fwd, Tensor(x), None, reverse=False)
        (out * out).sum().backward()
        out_ref, _ = slow._scan_reference(slow.fwd, Tensor(x), None, reverse=False)
        (out_ref * out_ref).sum().backward()
        for g_fast, g_slow in zip(_grads(fast), _grads(slow)):
            np.testing.assert_allclose(g_fast, g_slow, atol=ATOL)

    def test_input_gradients_match(self, rnn_cls):
        fast, slow = _pair(rnn_cls, seed=7)
        data = np.random.default_rng(6).normal(size=(2, 4, 5))
        x_fast = Tensor(data.copy(), requires_grad=True)
        x_slow = Tensor(data.copy(), requires_grad=True)
        _, h = fast._scan(fast.fwd, x_fast, None, reverse=False)
        h.sum().backward()
        _, h_ref = slow._scan_reference(slow.fwd, x_slow, None, reverse=False)
        h_ref.sum().backward()
        np.testing.assert_allclose(x_fast.grad, x_slow.grad, atol=ATOL)

    def test_bidirectional_forward_matches(self, rnn_cls):
        fast, _ = _pair(rnn_cls, seed=9, bidirectional=True)
        x = np.random.default_rng(8).normal(size=(2, 5, 5))
        out, final = fast(Tensor(x))
        out_f, _ = fast._scan_reference(fast.fwd, Tensor(x), None, reverse=False)
        out_b, _ = fast._scan_reference(fast.bwd, Tensor(x), None, reverse=True)
        np.testing.assert_allclose(
            out.data, np.concatenate([out_f.data, out_b.data], axis=2), atol=ATOL
        )
