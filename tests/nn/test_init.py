"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn.init import normal, orthogonal, xavier_uniform


class TestXavier:
    def test_bounds(self, rng):
        w = xavier_uniform(rng, 30, 40)
        limit = np.sqrt(6.0 / 70)
        assert w.shape == (30, 40)
        assert np.abs(w).max() <= limit

    def test_custom_shape(self, rng):
        w = xavier_uniform(rng, 10, 10, shape=(2, 10, 10))
        assert w.shape == (2, 10, 10)


class TestNormal:
    def test_std(self, rng):
        w = normal(rng, (200, 200), std=0.02)
        assert abs(w.std() - 0.02) < 0.002
        assert abs(w.mean()) < 0.002


class TestOrthogonal:
    def test_square_is_orthogonal(self, rng):
        q = orthogonal(rng, (16, 16))
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-10)

    @pytest.mark.parametrize("shape", [(8, 20), (20, 8)])
    def test_rectangular_shapes(self, rng, shape):
        q = orthogonal(rng, shape)
        assert q.shape == shape
        # The smaller dimension stays orthonormal.
        if shape[0] < shape[1]:
            gram = q @ q.T
        else:
            gram = q.T @ q
        assert np.allclose(gram, np.eye(min(shape)), atol=1e-10)
