"""Tests for attention mechanisms and transformer encoders."""

import numpy as np
import pytest

from repro.core.errors import ShapeError
from repro.nn import (
    DisentangledSelfAttention,
    DisentangledTransformerEncoder,
    MultiHeadAttention,
    TemporalDecayAttention,
    Tensor,
    TransformerEncoder,
    mean_pool,
    relative_position_index,
)
from repro.nn.attention import merge_heads, split_heads


class TestHeadSplitting:
    def test_roundtrip(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 8)))
        assert np.allclose(merge_heads(split_heads(x, 4)).data, x.data)

    def test_split_shape(self):
        x = Tensor(np.zeros((2, 5, 8)))
        assert split_heads(x, 2).shape == (2, 2, 5, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ShapeError):
            split_heads(Tensor(np.zeros((1, 2, 7))), 2)


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 6, 8)))
        assert mha(x).shape == (3, 6, 8)

    def test_mask_blocks_padding(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0)
        base = np.random.default_rng(2).normal(size=(1, 4, 8))
        x1 = base.copy()
        x2 = base.copy()
        x2[0, 3] = 99.0  # padded position content should not matter
        mask = np.array([[1, 1, 1, 0]], dtype=float)
        out1 = mha(Tensor(x1), mask=mask).data[:, :3]
        out2 = mha(Tensor(x2), mask=mask).data[:, :3]
        assert np.allclose(out1, out2)

    def test_cross_attention_shapes(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0)
        q = Tensor(np.zeros((2, 3, 8)))
        kv = Tensor(np.zeros((2, 7, 8)))
        assert mha(q, kv).shape == (2, 3, 8)

    def test_gradients_reach_all_projections(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0)
        x = Tensor(np.random.default_rng(3).normal(size=(2, 4, 8)))
        (mha(x) ** 2).mean().backward()
        for name, param in mha.named_parameters():
            assert param.grad is not None, name


class TestTemporalDecayAttention:
    def test_decay_suppresses_distant_past(self, rng):
        attn = TemporalDecayAttention(8, 2, rng, dropout=0.0)
        attn.decay.data[:] = 5.0  # strong decay
        x = np.random.default_rng(4).normal(size=(1, 3, 8))
        near = np.array([[0.0, 1.0, 2.0]])
        far = np.array([[0.0, 1.0, 5000.0]])
        out_near = attn(Tensor(x), near).data
        out_far = attn(Tensor(x), far).data
        # with different time geometry, outputs must differ
        assert not np.allclose(out_near, out_far)

    def test_learnable_decay_parameter(self, rng):
        attn = TemporalDecayAttention(8, 2, rng, dropout=0.0)
        x = Tensor(np.random.default_rng(5).normal(size=(1, 4, 8)))
        hours = np.arange(4, dtype=float)[None, :]
        (attn(x, hours) ** 2).mean().backward()
        assert attn.decay.grad is not None


class TestRelativePositions:
    def test_index_symmetric_structure(self):
        idx = relative_position_index(5, 2)
        assert idx.shape == (5, 5)
        assert idx[0, 0] == 2       # distance 0 -> centre bucket
        assert idx[0, 4] == 4       # clipped at +2
        assert idx[4, 0] == 0       # clipped at -2

    def test_clipping(self):
        idx = relative_position_index(10, 3)
        assert idx.max() == 6
        assert idx.min() == 0


class TestDisentangledAttention:
    def test_output_shape(self, rng):
        attn = DisentangledSelfAttention(8, 2, 4, rng, dropout=0.0)
        x = Tensor(np.random.default_rng(6).normal(size=(2, 5, 8)))
        assert attn(x).shape == (2, 5, 8)

    def test_position_sensitivity(self, rng):
        """Same bag of inputs in different order → different outputs
        (disentangled attention sees relative positions)."""
        attn = DisentangledSelfAttention(8, 2, 4, rng, dropout=0.0)
        base = np.random.default_rng(7).normal(size=(1, 4, 8))
        reversed_ = base[:, ::-1, :].copy()
        out_a = attn(Tensor(base)).data.sum(axis=1)
        out_b = attn(Tensor(reversed_)).data.sum(axis=1)
        assert not np.allclose(out_a, out_b)

    def test_rel_embedding_gradient(self, rng):
        attn = DisentangledSelfAttention(8, 2, 4, rng, dropout=0.0)
        x = Tensor(np.random.default_rng(8).normal(size=(1, 5, 8)))
        (attn(x) ** 2).mean().backward()
        assert attn.rel_embed.grad is not None
        assert np.abs(attn.rel_embed.grad).sum() > 0


class TestEncoders:
    def test_roberta_style_shapes(self, rng):
        enc = TransformerEncoder(50, 16, 2, 4, 32, rng, dropout=0.0)
        ids = np.random.default_rng(9).integers(5, 50, size=(3, 10))
        assert enc(ids).shape == (3, 10, 16)

    def test_deberta_style_shapes(self, rng):
        enc = DisentangledTransformerEncoder(50, 16, 2, 4, 32, rng, dropout=0.0)
        ids = np.random.default_rng(10).integers(5, 50, size=(3, 10))
        assert enc(ids).shape == (3, 10, 16)

    def test_default_mask_from_pad(self, rng):
        enc = TransformerEncoder(50, 16, 1, 4, 32, rng, dropout=0.0, pad_id=0)
        ids = np.array([[5, 6, 0, 0]])
        ids2 = np.array([[5, 6, 0, 0]])
        out = enc(ids).data
        # changing a pad token id is impossible (pad=0) but changing
        # nothing must be deterministic in eval mode
        enc.eval()
        assert np.allclose(enc(ids).data, enc(ids2).data)

    def test_absolute_positions_make_encoder_order_aware(self, rng):
        enc = TransformerEncoder(50, 16, 1, 4, 32, rng, dropout=0.0)
        enc.eval()
        a = np.array([[7, 8, 9]])
        b = np.array([[9, 8, 7]])
        assert not np.allclose(
            enc(a).data.mean(axis=1), enc(b).data.mean(axis=1)
        )

    def test_mean_pool_ignores_padding(self):
        states = Tensor(np.arange(12, dtype=float).reshape(1, 3, 4))
        mask = np.array([[1.0, 1.0, 0.0]])
        pooled = mean_pool(states, mask).data
        assert np.allclose(pooled, states.data[:, :2].mean(axis=1))

    def test_mean_pool_all_padding_safe(self):
        states = Tensor(np.ones((1, 3, 4)))
        mask = np.zeros((1, 3))
        assert np.isfinite(mean_pool(states, mask).data).all()
