"""Gradient checks and semantics tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.errors import GradientError, ShapeError
from repro.nn.tensor import Tensor


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar-valued fn wrt array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        f_plus = fn()
        x[idx] = old - eps
        f_minus = fn()
        x[idx] = old
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_grad(build, data, tol=1e-7):
    """build(tensor) must return a scalar Tensor."""
    x = Tensor(data.copy(), requires_grad=True)
    out = build(x)
    out.backward()
    num = numerical_grad(lambda: float(build(Tensor(x.data)).data), x.data)
    assert np.abs(num - x.grad).max() < tol, (
        f"analytic={x.grad}, numeric={num}"
    )


RNG = np.random.default_rng(0)


class TestElementwiseGrads:
    def test_add_mul(self):
        data = RNG.normal(size=(3, 4))
        check_grad(lambda x: ((x + 2.0) * (x * 0.5) + x).sum(), data)

    def test_sub_div(self):
        data = RNG.normal(size=(3, 4)) + 5.0
        check_grad(lambda x: ((x - 1.0) / (x + 10.0)).sum(), data)

    def test_pow(self):
        data = np.abs(RNG.normal(size=(5,))) + 0.5
        check_grad(lambda x: (x**3).sum(), data)

    def test_exp_log_sqrt(self):
        data = np.abs(RNG.normal(size=(4,))) + 0.5
        check_grad(lambda x: (x.exp().log() + x.sqrt()).sum(), data)

    def test_tanh_sigmoid_relu(self):
        data = RNG.normal(size=(6,))
        check_grad(lambda x: (x.tanh() + x.sigmoid()).sum(), data)
        # relu grad away from the kink
        data = data + np.sign(data) * 0.1
        check_grad(lambda x: x.relu().sum(), data)

    def test_gelu(self):
        data = RNG.normal(size=(6,))
        check_grad(lambda x: x.gelu().sum(), data, tol=1e-6)

    def test_neg(self):
        check_grad(lambda x: (-x).sum(), RNG.normal(size=(3,)))


class TestBroadcastingGrads:
    def test_row_broadcast(self):
        a = RNG.normal(size=(4, 3))
        b = RNG.normal(size=(3,))
        x = Tensor(a, requires_grad=True)
        y = Tensor(b, requires_grad=True)
        (x * y).sum().backward()
        assert x.grad.shape == a.shape
        assert y.grad.shape == b.shape
        assert np.allclose(y.grad, a.sum(axis=0))

    def test_scalar_broadcast(self):
        x = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        (x + 3.0).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_keepdim_broadcast(self):
        a = RNG.normal(size=(4, 3))
        check_grad(lambda x: (x - x.mean(axis=1, keepdims=True)).sum(), a)


class TestMatmulGrads:
    def test_2d(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 2))
        x = Tensor(a, requires_grad=True)
        y = Tensor(b, requires_grad=True)
        (x @ y).sum().backward()
        assert np.allclose(x.grad, np.ones((3, 2)) @ b.T)
        assert np.allclose(y.grad, a.T @ np.ones((3, 2)))

    def test_batched(self):
        a = RNG.normal(size=(2, 3, 4))
        check_grad(
            lambda x: (x @ Tensor(np.ones((2, 4, 5)))).sum(), a, tol=1e-6
        )

    def test_batched_rhs_grad(self):
        b = RNG.normal(size=(2, 4, 5))
        a = RNG.normal(size=(2, 3, 4))
        y = Tensor(b, requires_grad=True)
        (Tensor(a) @ y).sum().backward()
        expected = np.swapaxes(a, -1, -2) @ np.ones((2, 3, 5))
        assert np.allclose(y.grad, expected)

    def test_broadcast_lhs(self):
        a = RNG.normal(size=(3, 4))        # broadcast against batch
        b = RNG.normal(size=(2, 4, 5))
        x = Tensor(a, requires_grad=True)
        (x @ Tensor(b)).sum().backward()
        assert x.grad.shape == a.shape

    def test_batched_lhs_2d_rhs_grad(self):
        # (B, T, D) @ (D, K) — the tensordot fast path for the RHS grad
        a = RNG.normal(size=(2, 3, 4))
        b = RNG.normal(size=(4, 5))
        y = Tensor(b, requires_grad=True)
        g = RNG.normal(size=(2, 3, 5))
        (Tensor(a) @ y).backward(g)
        expected = np.tensordot(a, g, axes=((0, 1), (0, 1)))
        assert np.allclose(y.grad, expected)
        check_grad(lambda w: (Tensor(a) @ w).sum(), b, tol=1e-6)


class TestReductionGrads:
    def test_sum_axis(self):
        check_grad(lambda x: x.sum(axis=0).sum(), RNG.normal(size=(3, 4)))

    def test_mean(self):
        data = RNG.normal(size=(4, 4))
        x = Tensor(data, requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 16)

    def test_max(self):
        data = np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 0.0]])
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.array([[0, 1, 0], [1, 0, 0]], dtype=float)
        assert np.allclose(x.grad, expected)

    def test_max_tie_splitting(self):
        data = np.array([[2.0, 2.0]])
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape_grad(self):
        check_grad(lambda x: (x.reshape(6) * 2).sum(), RNG.normal(size=(2, 3)))

    def test_transpose_grad(self):
        a = RNG.normal(size=(2, 3, 4))
        check_grad(lambda x: (x.transpose(2, 0, 1) ** 2).sum(), a)

    def test_swapaxes(self):
        a = RNG.normal(size=(2, 3))
        x = Tensor(a, requires_grad=True)
        assert x.swapaxes(0, 1).shape == (3, 2)

    def test_getitem_slice_grad(self):
        a = RNG.normal(size=(4, 5))
        x = Tensor(a, requires_grad=True)
        x[1:3, ::2].sum().backward()
        assert x.grad.sum() == pytest.approx(2 * 3)

    def test_getitem_fancy_grad(self):
        a = RNG.normal(size=(4, 5))
        x = Tensor(a, requires_grad=True)
        x[np.array([0, 0, 2]), np.array([1, 1, 3])].sum().backward()
        assert x.grad[0, 1] == pytest.approx(2.0)  # repeated index accumulates
        assert x.grad[2, 3] == pytest.approx(1.0)

    def test_concat_grad(self):
        a = RNG.normal(size=(2, 3))
        b = RNG.normal(size=(2, 2))
        x = Tensor(a, requires_grad=True)
        y = Tensor(b, requires_grad=True)
        Tensor.concat([x, y], axis=1).sum().backward()
        assert np.allclose(x.grad, 1.0)
        assert np.allclose(y.grad, 1.0)

    def test_stack_grad(self):
        tensors = [Tensor(RNG.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        Tensor.stack(tensors, axis=0).sum().backward()
        for t in tensors:
            assert np.allclose(t.grad, 1.0)

    def test_unbind_matches_getitem(self):
        a = RNG.normal(size=(3, 4, 5))
        x = Tensor(a, requires_grad=True)
        y = Tensor(a.copy(), requires_grad=True)
        pieces = x.unbind(axis=1)
        assert len(pieces) == 4
        for t, piece in enumerate(pieces):
            assert np.array_equal(piece.data, a[:, t, :])
        Tensor.stack(pieces, axis=1).sum().backward()
        Tensor.stack([y[:, t, :] for t in range(4)], axis=1).sum().backward()
        assert np.allclose(x.grad, y.grad)

    def test_unbind_piece_reused_accumulates(self):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        first = x.unbind(axis=0)[0]
        (first + first).sum().backward()
        assert np.allclose(x.grad[0], 2.0)
        assert np.allclose(x.grad[1], 0.0)

    def test_take_rows_grad(self):
        table = Tensor(RNG.normal(size=(10, 4)), requires_grad=True)
        ids = np.array([[1, 1], [3, 9]])
        table.take_rows(ids).sum().backward()
        assert table.grad[1].sum() == pytest.approx(8.0)  # used twice
        assert table.grad[0].sum() == 0.0


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(5, 7)))
        assert np.allclose(x.softmax(axis=-1).data.sum(axis=-1), 1.0)

    def test_log_softmax_grad(self):
        a = RNG.normal(size=(3, 5))
        check_grad(lambda x: (x.log_softmax(axis=-1) ** 2).sum(), a, tol=1e-6)

    def test_softmax_grad(self):
        a = RNG.normal(size=(3, 5))
        check_grad(lambda x: (x.softmax(axis=-1) ** 2).sum(), a, tol=1e-6)

    def test_softmax_stability(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        assert np.allclose(x.softmax(axis=-1).data, 0.5)

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        out = x.masked_fill(mask, -9.0)
        assert out.data[0, 0] == -9.0
        out.sum().backward()
        assert x.grad[0, 0] == 0.0
        assert x.grad[1, 1] == 1.0


class TestGraphSemantics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_on_constant_rejected(self):
        x = Tensor(np.ones(3))
        with pytest.raises(GradientError):
            x.backward()

    def test_explicit_output_grad_shape_checked(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ShapeError):
            (x * 2).backward(np.ones(4))

    def test_grad_accumulates_over_backwards(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        assert np.allclose(x.grad, 4.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x.sum()).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_grad(self):
        # y = x*x + x*x reuses x twice through shared subexpression
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        assert np.allclose(x.grad, 12.0)

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, max_side=4),
            elements=st.floats(-3, 3),
        )
    )
    def test_sum_grad_is_ones_property(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(data))
