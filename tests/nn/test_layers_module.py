"""Tests for Module registration and the basic layers."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Sequential,
    Tanh,
    Tensor,
)
from repro.nn.module import Module, ModuleList, Parameter


class TestModule:
    def test_parameter_registration(self, rng):
        layer = Linear(3, 4, rng)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_registration(self, rng):
        model = Sequential(Linear(3, 4, rng), Tanh(), Linear(4, 2, rng))
        names = list(dict(model.named_parameters()))
        assert "0.weight" in names and "2.bias" in names

    def test_parameters_deduplicated(self, rng):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, rng)
                self.b = self.a  # shared module

        assert len(list(Shared().parameters())) == 2

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self, rng):
        a = Linear(3, 4, rng)
        b = Linear(3, 4, np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self, rng):
        a = Linear(3, 4, rng)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            Linear(3, 4, rng).load_state_dict(state)

    def test_state_dict_shape_checked(self, rng):
        a = Linear(3, 4, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            Linear(3, 4, rng).load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5, rng), Linear(2, 2, rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_module_list(self, rng):
        items = ModuleList(Linear(2, 2, rng) for _ in range(3))
        assert len(items) == 3
        assert items[1] is list(items)[1]
        assert len(list(items.named_parameters())) == 6


class TestLinear:
    def test_affine(self, rng):
        layer = Linear(3, 2, rng)
        x = np.ones((4, 3))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((1, 3)))).data.sum() == 0.0


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 3]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[1, 0], out.data[1, 1])

    def test_padding_row_zero(self, rng):
        emb = Embedding(10, 4, rng, padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_gradient_flows_to_used_rows_only(self, rng):
        emb = Embedding(10, 4, rng)
        emb(np.array([2, 2, 5])).sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[5], 1.0)
        assert np.allclose(emb.weight.grad[7], 0.0)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8)))
        out = norm(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_trainable(self):
        norm = LayerNorm(4)
        assert isinstance(norm.gamma, Parameter)
        assert isinstance(norm.beta, Parameter)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng)
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(drop(x).data, 1.0)

    def test_train_mode_scales(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((200, 200)))
        out = drop(x).data
        # inverted dropout: surviving entries scaled by 1/keep
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.05

    def test_zero_p_identity(self, rng):
        drop = Dropout(0.0, rng)
        x = Tensor(np.ones((3, 3)))
        assert np.allclose(drop(x).data, 1.0)

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
