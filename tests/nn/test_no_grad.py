"""Inference-mode (`no_grad`) semantics of the autograd Tensor."""

import numpy as np
import pytest

from repro.nn import Linear, Tensor, is_grad_enabled, no_grad


def test_grad_enabled_by_default():
    assert is_grad_enabled()


def test_no_grad_restores_state():
    with no_grad():
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_restores_on_exception():
    with pytest.raises(RuntimeError):
        with no_grad():
            raise RuntimeError("boom")
    assert is_grad_enabled()


def test_no_grad_nesting():
    with no_grad():
        with no_grad():
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_output_has_no_graph():
    x = Tensor(np.ones((2, 3)), requires_grad=True)
    with no_grad():
        y = (x * 2.0).sum()
    assert not y.requires_grad
    assert y._parents == ()
    assert y._backward is None


def test_values_bitwise_match_grad_mode(rng):
    layer = Linear(5, 3, rng=np.random.default_rng(0))
    x = Tensor(rng.normal(size=(4, 5)))
    with_grad = layer(x).data
    with no_grad():
        without = layer(x).data
    np.testing.assert_array_equal(with_grad, without)


def test_params_trainable_after_no_grad(rng):
    layer = Linear(4, 2, rng=np.random.default_rng(0))
    x = Tensor(rng.normal(size=(3, 4)))
    with no_grad():
        layer(x)
    out = layer(x).sum()
    out.backward()
    assert layer.weight.grad is not None
    assert np.abs(layer.weight.grad).sum() > 0


def test_no_grad_is_thread_local():
    import threading

    seen = {}

    def worker():
        seen["worker"] = is_grad_enabled()

    with no_grad():
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["worker"] is True  # other threads keep autograd on
