"""Tests for LSTM/GRU cells and masked recurrent scans."""

import numpy as np
import pytest

from repro.nn import GRU, GRUCell, LSTM, LSTMCell, Tensor


class TestCells:
    def test_lstm_cell_shapes(self, rng):
        cell = LSTMCell(6, 5, rng)
        h, c = cell(
            Tensor(np.zeros((3, 6))), Tensor(np.zeros((3, 5))), Tensor(np.zeros((3, 5)))
        )
        assert h.shape == (3, 5)
        assert c.shape == (3, 5)

    def test_gru_cell_shapes(self, rng):
        cell = GRUCell(6, 5, rng)
        h = cell(Tensor(np.zeros((3, 6))), Tensor(np.zeros((3, 5))))
        assert h.shape == (3, 5)

    def test_gru_zero_input_zero_state_bounded(self, rng):
        cell = GRUCell(4, 4, rng)
        h = cell(Tensor(np.zeros((1, 4))), Tensor(np.zeros((1, 4))))
        assert (np.abs(h.data) <= 1.0).all()

    def test_lstm_forget_bias_initialised(self, rng):
        cell = LSTMCell(4, 4, rng)
        bias = cell.bias.data
        assert np.allclose(bias[4:8], 1.0)


class TestScan:
    @pytest.mark.parametrize("rnn_cls", [GRU, LSTM])
    def test_output_shapes(self, rng, rnn_cls):
        rnn = rnn_cls(6, 5, rng)
        out, final = rnn(Tensor(np.zeros((2, 7, 6))))
        assert out.shape == (2, 7, 5)
        assert final.shape == (2, 5)

    @pytest.mark.parametrize("rnn_cls", [GRU, LSTM])
    def test_bidirectional_shapes(self, rng, rnn_cls):
        rnn = rnn_cls(6, 5, rng, bidirectional=True)
        out, final = rnn(Tensor(np.zeros((2, 7, 6))))
        assert out.shape == (2, 7, 10)
        assert final.shape == (2, 10)

    @pytest.mark.parametrize("rnn_cls", [GRU, LSTM])
    def test_padding_invariance(self, rng, rnn_cls):
        rnn = rnn_cls(4, 3, rng, bidirectional=True)
        x = np.random.default_rng(1).normal(size=(1, 3, 4))
        padded = np.zeros((1, 6, 4))
        padded[:, :3] = x
        mask = np.zeros((1, 6))
        mask[:, :3] = 1.0
        out_short, final_short = rnn(Tensor(x))
        out_padded, final_padded = rnn(Tensor(padded), mask=mask)
        assert np.allclose(
            out_short.data, out_padded.data[:, :3, :], atol=1e-12
        )
        # forward half of the final state matches
        assert np.allclose(
            final_short.data[:, :3], final_padded.data[:, :3], atol=1e-12
        )

    def test_final_state_is_last_output_forward(self, rng):
        rnn = GRU(4, 3, rng)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 5, 4)))
        out, final = rnn(x)
        assert np.allclose(out.data[:, -1, :], final.data)

    def test_gradients_flow_through_time(self, rng):
        rnn = LSTM(3, 3, rng)
        x = Tensor(np.random.default_rng(3).normal(size=(1, 6, 3)),
                   requires_grad=True)
        out, final = rnn(x)
        final.sum().backward()
        # every timestep's input influences the final state
        assert (np.abs(x.grad) > 0).any(axis=(0, 2)).all()

    def test_trainable_on_toy_task(self, rng):
        """GRU learns to output sign of the first input element."""
        from repro.nn import Adam, Linear, cross_entropy

        gru = GRU(2, 8, rng)
        head = Linear(8, 2, rng)
        params = list(gru.parameters()) + list(head.parameters())
        opt = Adam(params, lr=1e-2)
        data_rng = np.random.default_rng(5)
        x = data_rng.normal(size=(64, 4, 2))
        y = (x[:, 0, 0] > 0).astype(int)
        for _ in range(60):
            _, final = gru(Tensor(x))
            loss = cross_entropy(head(final), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        _, final = gru(Tensor(x))
        acc = (head(final).data.argmax(-1) == y).mean()
        assert acc > 0.9
