"""Property-based tests of core nn invariants (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import LayerNorm, Tensor
from repro.nn.attention import relative_position_index

floats = st.floats(-5, 5, allow_nan=False)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=floats)


class TestSoftmaxProperties:
    @settings(max_examples=40, deadline=None)
    @given(arrays((3, 6)))
    def test_rows_are_distributions(self, data):
        probs = Tensor(data).softmax(axis=-1).data
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert (probs >= 0).all()

    @settings(max_examples=40, deadline=None)
    @given(arrays((2, 5)), st.floats(-3, 3))
    def test_shift_invariance(self, data, shift):
        a = Tensor(data).softmax(axis=-1).data
        b = Tensor(data + shift).softmax(axis=-1).data
        assert np.allclose(a, b, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(arrays((4, 4)))
    def test_log_softmax_consistent_with_softmax(self, data):
        log_p = Tensor(data).log_softmax(axis=-1).data
        p = Tensor(data).softmax(axis=-1).data
        assert np.allclose(np.exp(log_p), p, atol=1e-9)


class TestLayerNormProperties:
    @settings(max_examples=40, deadline=None)
    @given(arrays((5, 8)))
    def test_output_standardised(self, data):
        # avoid degenerate all-constant rows
        data = data + np.arange(8) * 0.1
        out = LayerNorm(8)(Tensor(data)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(arrays((3, 8)), st.floats(0.1, 5))
    def test_scale_invariance(self, data, scale):
        data = data + np.arange(8) * 0.5  # ensure spread
        # eps breaks exact invariance once scale**2 * var nears eps, so
        # keep rows clear of the degenerate near-constant regime.
        assume(data.var(axis=-1).min() >= 0.5)
        norm = LayerNorm(8)
        a = norm(Tensor(data)).data
        b = norm(Tensor(data * scale)).data
        assert np.allclose(a, b, atol=1e-2)


class TestAutogradProperties:
    @settings(max_examples=40, deadline=None)
    @given(arrays((3, 4)), arrays((3, 4)))
    def test_sum_rule(self, a, b):
        """d/dx sum(x + y) == ones."""
        x = Tensor(a, requires_grad=True)
        y = Tensor(b, requires_grad=True)
        (x + y).sum().backward()
        assert np.allclose(x.grad, 1.0)
        assert np.allclose(y.grad, 1.0)

    @settings(max_examples=40, deadline=None)
    @given(arrays((2, 3)))
    def test_product_rule_with_self(self, a):
        """d/dx sum(x*x) == 2x."""
        x = Tensor(a, requires_grad=True)
        (x * x).sum().backward()
        assert np.allclose(x.grad, 2 * a, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(arrays((4,)))
    def test_linearity_of_backward(self, a):
        x = Tensor(a, requires_grad=True)
        (x.sum() * 3.0).backward()
        assert np.allclose(x.grad, 3.0)


class TestRelativePositionProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 10))
    def test_bucket_bounds(self, length, max_dist):
        idx = relative_position_index(length, max_dist)
        assert idx.min() >= 0
        assert idx.max() <= 2 * max_dist
        assert (np.diag(idx) == max_dist).all()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 20), st.integers(1, 8))
    def test_antisymmetry_within_clip(self, length, max_dist):
        idx = relative_position_index(length, max_dist)
        centred = idx - max_dist
        clipped = np.clip(
            np.arange(length)[None, :] - np.arange(length)[:, None],
            -max_dist, max_dist,
        )
        assert (centred == clipped).all()
