"""Tests for batching utilities and checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    batches,
    class_balanced_indices,
    load_checkpoint,
    pad_feature_sequences,
    pad_sequences,
    save_checkpoint,
)
from repro.nn.layers import Linear


class TestPadSequences:
    def test_padding_and_mask(self):
        ids, mask = pad_sequences([[1, 2, 3], [4]], pad_value=0)
        assert ids.tolist() == [[1, 2, 3], [4, 0, 0]]
        assert mask.tolist() == [[1, 1, 1], [1, 0, 0]]

    def test_truncation_keeps_tail(self):
        ids, mask = pad_sequences([[1, 2, 3, 4, 5]], max_len=3)
        assert ids.tolist() == [[3, 4, 5]]

    def test_empty_input(self):
        ids, mask = pad_sequences([])
        assert ids.shape == (0, 0)

    def test_custom_pad_value(self):
        ids, _ = pad_sequences([[1], [2, 3]], pad_value=9)
        assert ids[0, 1] == 9


class TestPadFeatures:
    def test_shape_and_mask(self):
        seqs = [np.ones((2, 4)), np.ones((5, 4))]
        out, mask = pad_feature_sequences(seqs)
        assert out.shape == (2, 5, 4)
        assert mask.sum() == 7

    def test_max_len_truncates_tail_kept(self):
        seq = np.arange(12).reshape(6, 2).astype(float)
        out, _ = pad_feature_sequences([seq], max_len=2)
        assert np.allclose(out[0], seq[-2:])


class TestBatches:
    def test_covers_everything_once(self):
        seen = np.concatenate(list(batches(10, 3)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_shuffled_with_rng(self, rng):
        order = np.concatenate(list(batches(50, 10, rng=rng)))
        assert sorted(order.tolist()) == list(range(50))
        assert order.tolist() != list(range(50))

    def test_drop_last(self):
        got = list(batches(10, 3, drop_last=True))
        assert all(len(b) == 3 for b in got)
        assert len(got) == 3

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batches(10, 0))


class TestClassBalance:
    def test_equalises_class_counts(self, rng):
        labels = np.array([0] * 50 + [1] * 5 + [2] * 10)
        idx = class_balanced_indices(labels, rng)
        balanced = labels[idx]
        counts = np.bincount(balanced)
        assert counts[0] == counts[1] == counts[2]

    def test_per_class_override(self, rng):
        labels = np.array([0, 0, 1])
        idx = class_balanced_indices(labels, rng, per_class=4)
        assert len(idx) == 8


class TestCheckpoint:
    def test_roundtrip(self, tmp_path, rng):
        layer = Linear(4, 3, rng)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(layer, path)
        other = Linear(4, 3, np.random.default_rng(123))
        assert not np.allclose(other.weight.data, layer.weight.data)
        load_checkpoint(other, path)
        assert np.allclose(other.weight.data, layer.weight.data)
        assert np.allclose(other.bias.data, layer.bias.data)

    def test_creates_parent_dirs(self, tmp_path, rng):
        path = tmp_path / "deep" / "nest" / "model.npz"
        save_checkpoint(Linear(2, 2, rng), path)
        assert path.exists()
