"""bincount-based scatter-add vs the np.add.at reference."""

import numpy as np
import pytest

from repro.nn.tensor import scatter_add_rows, scatter_add_rows_reference

ATOL = 1e-8


class TestScatterAddRows:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_with_duplicates(self, seed):
        rng = np.random.default_rng(seed)
        target_a = rng.normal(size=(20, 8))
        target_b = target_a.copy()
        idx = rng.integers(0, 20, size=50)  # heavy duplication
        rows = rng.normal(size=(50, 8))
        scatter_add_rows(target_a, idx, rows)
        scatter_add_rows_reference(target_b, idx, rows)
        np.testing.assert_allclose(target_a, target_b, atol=ATOL)

    def test_three_dimensional_rows(self):
        rng = np.random.default_rng(11)
        target_a = rng.normal(size=(10, 4))
        target_b = target_a.copy()
        idx = rng.integers(0, 10, size=(6, 3))   # (B, K) negatives-style
        rows = rng.normal(size=(6, 3, 4))
        scatter_add_rows(target_a, idx, rows)
        scatter_add_rows_reference(target_b, idx, rows)
        np.testing.assert_allclose(target_a, target_b, atol=ATOL)

    def test_untouched_rows_unchanged(self):
        target = np.zeros((5, 3))
        scatter_add_rows(target, np.array([1, 1]), np.ones((2, 3)))
        np.testing.assert_array_equal(target[0], 0.0)
        np.testing.assert_array_equal(target[1], 2.0)
        np.testing.assert_array_equal(target[2:], 0.0)

    def test_empty_indices_noop(self):
        target = np.ones((4, 2))
        scatter_add_rows(
            target, np.zeros(0, dtype=np.int64), np.zeros((0, 2))
        )
        np.testing.assert_array_equal(target, 1.0)
