"""Tests for optimizers, schedules, and losses."""

import numpy as np
import pytest

from repro.core.errors import ShapeError
from repro.nn import (
    SGD,
    Adam,
    AdamW,
    IGNORE_INDEX,
    Tensor,
    WarmupLinearDecay,
    clip_grad_norm,
    cross_entropy,
    mse_loss,
)
from repro.nn.module import Parameter


def quadratic_params():
    return [Parameter(np.array([5.0, -3.0]))]


class TestSGD:
    def test_descends_quadratic(self):
        params = quadratic_params()
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (params[0] ** 2).sum().backward()
            opt.step()
        assert np.abs(params[0].data).max() < 1e-3

    def test_momentum_accelerates(self):
        slow = quadratic_params()
        fast = quadratic_params()
        for _ in range(20):
            for params, opt in (
                (slow, SGD(slow, lr=0.01)),
                (fast, SGD(fast, lr=0.01, momentum=0.9)),
            ):
                pass
        # run properly: persistent optimizers
        slow = quadratic_params()
        fast = quadratic_params()
        opt_slow = SGD(slow, lr=0.01)
        opt_fast = SGD(fast, lr=0.01, momentum=0.9)
        for _ in range(50):
            for params, opt in ((slow, opt_slow), (fast, opt_fast)):
                opt.zero_grad()
                (params[0] ** 2).sum().backward()
                opt.step()
        assert np.abs(fast[0].data).sum() < np.abs(slow[0].data).sum()

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD(quadratic_params(), lr=0.0)


class TestAdam:
    def test_descends_quadratic(self):
        params = quadratic_params()
        opt = Adam(params, lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            (params[0] ** 2).sum().backward()
            opt.step()
        assert np.abs(params[0].data).max() < 1e-2

    def test_skips_gradless_params(self):
        p = Parameter(np.ones(2))
        Adam([p], lr=0.1).step()  # no grad -> no movement
        assert np.allclose(p.data, 1.0)

    def test_adamw_decays_weights(self):
        p = Parameter(np.array([10.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 10.0


class TestClip:
    def test_scales_to_max_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_small_grads_untouched(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.01)
        clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)


class TestSchedule:
    def test_warmup_then_decay(self):
        params = quadratic_params()
        opt = Adam(params, lr=1.0)
        sched = WarmupLinearDecay(opt, warmup_steps=10, total_steps=100)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[4] < lrs[9]            # warming up
        assert max(lrs) == pytest.approx(1.0, abs=0.11)
        assert lrs[-1] == pytest.approx(0.0, abs=0.02)

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            WarmupLinearDecay(Adam(quadratic_params(), lr=1.0), 1, 0)


class TestCrossEntropy:
    def test_matches_manual_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1]])), requires_grad=True)
        loss = cross_entropy(logits, np.array([0]))
        assert loss.item() == pytest.approx(-np.log(0.7), abs=1e-6)

    def test_ignore_index_excluded(self):
        logits = Tensor(np.zeros((3, 4)), requires_grad=True)
        targets = np.array([1, IGNORE_INDEX, 2])
        loss = cross_entropy(logits, targets)
        assert loss.item() == pytest.approx(np.log(4.0), abs=1e-9)

    def test_all_ignored_rejected(self):
        logits = Tensor(np.zeros((2, 4)), requires_grad=True)
        with pytest.raises(ShapeError):
            cross_entropy(logits, np.array([IGNORE_INDEX, IGNORE_INDEX]))

    def test_class_weights(self):
        logits = Tensor(np.zeros((2, 2)), requires_grad=True)
        weights = np.array([1.0, 3.0])
        loss = cross_entropy(logits, np.array([0, 1]), class_weights=weights)
        # weighted mean of identical per-sample losses = same value
        assert loss.item() == pytest.approx(np.log(2.0))
        loss.backward()
        # class-1 sample carries 3x the gradient mass of class-0 sample
        g = logits.grad
        assert abs(g[1]).sum() > abs(g[0]).sum() * 2

    def test_label_smoothing_increases_loss_on_confident_correct(self):
        logits = Tensor(np.array([[10.0, -10.0]]), requires_grad=True)
        plain = cross_entropy(logits, np.array([0]))
        smooth = cross_entropy(logits, np.array([0]), label_smoothing=0.2)
        assert smooth.item() > plain.item()

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros(4), requires_grad=True), np.array([0]))
        with pytest.raises(ShapeError):
            cross_entropy(
                Tensor(np.zeros((2, 4)), requires_grad=True), np.array([0])
            )

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        probs = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = probs.copy()
        expected[0, 1] -= 1.0
        assert np.allclose(logits.grad, expected, atol=1e-9)


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
