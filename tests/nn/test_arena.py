"""Arena pack/unpack: zero-copy views, dedup, alignment, float32 cast."""

import json
import pickle

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.arena import ARENA_ALIGN, pack, unpack


def _payload():
    shared = np.arange(12, dtype=np.float64).reshape(3, 4)
    return {
        "a": shared,
        "b": shared,  # same object twice — identity must survive
        "ints": np.arange(5, dtype=np.int32),
        "flags": np.array([True, False]),
        "text": "hello",
        "nested": {"deep": [np.ones(3), 7]},
    }


class TestRoundTrip:
    def test_values_and_dtypes_survive(self):
        packed = pack(_payload())
        out = unpack(packed.skeleton, packed.manifest, packed.arena)
        np.testing.assert_array_equal(out["a"], _payload()["a"])
        assert out["ints"].dtype == np.int32
        assert out["flags"].dtype == np.bool_
        assert out["text"] == "hello"
        np.testing.assert_array_equal(out["nested"]["deep"][0], np.ones(3))

    def test_shared_arrays_stay_shared(self):
        packed = pack(_payload())
        out = unpack(packed.skeleton, packed.manifest, packed.arena)
        assert out["a"] is out["b"]
        # ...and deduplication means one arena slot, not two.
        shapes = [tuple(e["shape"]) for e in packed.manifest["entries"]]
        assert shapes.count((3, 4)) == 1

    def test_views_are_zero_copy_and_read_only(self):
        packed = pack(_payload())
        out = unpack(packed.skeleton, packed.manifest, packed.arena)
        assert np.shares_memory(out["a"], packed.arena)
        assert not out["a"].flags.writeable
        with pytest.raises(ValueError):
            out["a"][0, 0] = 99.0

    def test_copy_mode_gives_private_writable_arrays(self):
        packed = pack(_payload())
        out = unpack(packed.skeleton, packed.manifest, packed.arena, copy=True)
        assert out["a"].flags.writeable
        assert not np.shares_memory(out["a"], packed.arena)
        out["a"][0, 0] = 99.0  # must not raise

    def test_bytes_buffer_accepted(self):
        packed = pack(_payload())
        out = unpack(packed.skeleton, packed.manifest, packed.arena.tobytes())
        np.testing.assert_array_equal(out["a"], _payload()["a"])

    def test_non_contiguous_input(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        packed = pack({"strided": arr})
        out = unpack(packed.skeleton, packed.manifest, packed.arena)
        np.testing.assert_array_equal(out["strided"], arr)

    def test_empty_and_scalar_shaped_arrays(self):
        obj = {"empty": np.zeros((0, 3)), "scalar": np.array(3.5)}
        packed = pack(obj)
        out = unpack(packed.skeleton, packed.manifest, packed.arena)
        assert out["empty"].shape == (0, 3)
        assert out["scalar"].shape == ()
        assert float(out["scalar"]) == 3.5


class TestManifest:
    def test_offsets_are_aligned(self):
        packed = pack(_payload())
        assert all(
            e["offset"] % ARENA_ALIGN == 0
            for e in packed.manifest["entries"]
        )

    def test_manifest_is_json_serialisable(self):
        packed = pack(_payload())
        restored = json.loads(json.dumps(packed.manifest))
        out = unpack(packed.skeleton, restored, packed.arena)
        np.testing.assert_array_equal(out["a"], _payload()["a"])

    def test_unknown_manifest_rejected(self):
        packed = pack(_payload())
        with pytest.raises(ValueError):
            unpack(packed.skeleton, {"format": "tarball"}, packed.arena)

    def test_object_arrays_ride_in_the_skeleton(self):
        obj = {"objs": np.array([1, "x"], dtype=object)}
        packed = pack(obj)
        assert packed.manifest["entries"] == []
        out = unpack(packed.skeleton, packed.manifest, packed.arena)
        assert list(out["objs"]) == [1, "x"]


class TestFloat32Cast:
    def test_halves_float64_slots_and_restores_dtype(self):
        data = np.linspace(0.0, 1.0, 64)
        full = pack({"w": data})
        cast = pack({"w": data}, cast_float32=True)
        assert cast.nbytes < full.nbytes
        out = unpack(cast.skeleton, cast.manifest, cast.arena)
        assert out["w"].dtype == np.float64
        np.testing.assert_allclose(out["w"], data, rtol=1e-6)

    def test_non_float64_slots_untouched(self):
        cast = pack({"i": np.arange(4, dtype=np.int64)}, cast_float32=True)
        (entry,) = cast.manifest["entries"]
        assert entry["stored_dtype"] == entry["dtype"]


class TestTensorPickling:
    def test_tensor_round_trips_as_leaf(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True, name="w")
        clone = pickle.loads(pickle.dumps(t))
        np.testing.assert_array_equal(clone.data, t.data)
        assert clone.requires_grad and clone.name == "w"
        assert clone.grad is None and clone._parents == ()

    def test_graph_state_is_dropped_not_pickled(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = (a * 2.0).sum()  # has _backward closure + parents
        clone = pickle.loads(pickle.dumps(b))
        assert clone._backward is None
        assert clone._parents == ()

    def test_tensor_inside_arena_pack(self):
        t = Tensor(np.arange(6, dtype=np.float64), requires_grad=True)
        packed = pack({"t": t})
        out = unpack(packed.skeleton, packed.manifest, packed.arena)
        assert isinstance(out["t"], Tensor)
        assert np.shares_memory(out["t"].data, packed.arena)
