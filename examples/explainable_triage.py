"""Explainable triage: assess users and show *why* (extension demo).

Combines the high-level assessor, the feature-level explainer, and the
risk-evolution analytics into the kind of inspectable triage report a
clinical-deployment discussion (paper §IV/§V) calls for.

Usage::

    python examples/explainable_triage.py
"""

from repro import CorpusConfig, RiskLevel, analyse_evolution, build_dataset
from repro.boosting import GBMParams
from repro.eval.calibration import calibration_report
from repro.eval.explain import RiskExplainer
from repro.models import XGBoostBaseline

import numpy as np


def main() -> None:
    dataset = build_dataset(CorpusConfig().scaled(0.1)).dataset
    splits = dataset.splits()

    model = XGBoostBaseline(params=GBMParams(n_estimators=30, max_depth=4))
    model.fit(splits.train, splits.validation)
    explainer = RiskExplainer(model, splits.train)

    print("=== global importances (top 8) ===")
    for name, weight in explainer.global_importances(8):
        print(f"  {name:<28} {weight:.3f}")

    print("\n=== per-class feature profiles (top 3 each) ===")
    for level, profile in explainer.class_profiles(k=3).items():
        features = ", ".join(f"{n} (z={z:+.1f})" for n, z in profile)
        print(f"  {level.label:<10} {features}")

    print("\n=== triage queue (test users, highest predicted risk first) ===")
    preds = model.predict(splits.test)
    probs = model.predict_proba(splits.test)
    order = np.argsort(preds)[::-1][:5]
    for idx in order:
        window = splits.test[int(idx)]
        level = RiskLevel(int(preds[idx]))
        confidence = probs[idx, int(level)]
        print(f"\n  {window.author}  ->  {level.label} "
              f"(p={confidence:.2f}, true={window.label.label})")
        for line in explainer.render(window, k=3).splitlines()[1:]:
            print(line)

    print("\n=== calibration of the triage scores ===")
    y = np.array([int(w.label) for w in splits.test])
    report = calibration_report(probs, y)
    print(f"  ECE {report.ece:.3f}   MCE {report.mce:.3f}   "
          f"Brier {report.brier:.3f}")

    print("\n=== population risk evolution ===")
    evolution = analyse_evolution(dataset)
    print(f"  users: {evolution.num_users}, "
          f"with >=1 escalation: {evolution.users_with_escalation} "
          f"({100 * evolution.escalation_prevalence:.0f}%)")
    print(f"  median gap before an escalation: "
          f"{evolution.median_escalation_gap_hours:.0f} hours")


if __name__ == "__main__":
    main()
