"""Domain pretraining: masked-language-model a small transformer, then
fine-tune it as the RoBERTa risk baseline.

Shows the two-stage PLM recipe the paper's strongest baselines rely on,
and quantifies how much the MLM stage buys over training from scratch.

Usage::

    python examples/train_language_model.py
"""

import numpy as np

from repro import CorpusConfig, build_dataset
from repro.eval.metrics import EvalReport
from repro.models import RobertaRiskModel

PRETRAIN_STEPS = 250
PRETRAIN_TEXTS = 4000


def main() -> None:
    build = build_dataset(CorpusConfig().scaled(0.12))
    dataset = build.dataset
    splits = dataset.splits()
    print(f"train/val/test users: {splits.sizes}")
    print(f"unannotated pretraining pool: {len(dataset.pretrain_texts)} posts")

    y_test = np.array([int(w.label) for w in splits.test])
    pretrain = dataset.pretrain_texts[:PRETRAIN_TEXTS]

    for steps, tag in ((PRETRAIN_STEPS, "with MLM pretraining"), (0, "from scratch")):
        model = RobertaRiskModel(pretrain_texts=pretrain, pretrain_steps=steps)
        model.fit(splits.train, splits.validation)
        if model.mlm_result is not None:
            losses = model.mlm_result.losses
            print(f"\n[{tag}] MLM loss: {losses[0]:.2f} -> {losses[-1]:.2f} "
                  f"over {len(losses)} steps")
        else:
            print(f"\n[{tag}]")
        report = EvalReport.compute(model.name, y_test, model.predict(splits.test))
        print(f"  test accuracy : {report.accuracy:.2%}")
        print(f"  test macro F1 : {report.macro_f1:.2%}")
        per_class = ", ".join(
            f"{lv.short}={f1:.2f}" for lv, f1 in report.class_f1.items()
        )
        print(f"  per-class F1  : {per_class}")


if __name__ == "__main__":
    main()
