"""Risk-evolution monitoring — the dataset's headline application.

The paper motivates RSD-15K with "modeling the dynamic evolution of
suicide risk". This example trains an assessor, then replays users'
posting histories chronologically and watches the predicted risk level
move, raising an alert when it crosses the Behavior threshold.

Usage::

    python examples/risk_monitoring.py
"""

from repro import CorpusConfig, RiskAssessor, RiskLevel, build_dataset


def sparkline(levels) -> str:
    marks = {0: ".", 1: "-", 2: "=", 3: "#"}
    return "".join(marks[int(lv)] for lv in levels)


def main() -> None:
    dataset = build_dataset(CorpusConfig().scaled(0.1)).dataset
    assessor = RiskAssessor("xgboost").fit(dataset)

    histories = dataset.histories()
    # Watch the most active users: long histories show real evolution.
    watchlist = dataset.most_active_users(8)

    print("risk trajectories ( . IN  - ID  = BR  # AT ):\n")
    for author in watchlist:
        history = histories[author]
        trajectory = assessor.risk_trajectory(history)
        levels = [point.level for point in trajectory]
        alert_at = next(
            (i for i, lv in enumerate(levels) if lv >= RiskLevel.BEHAVIOR), None
        )
        marker = f"  ALERT at post {alert_at + 1}" if alert_at is not None else ""
        print(f"  {author[:18]:<18} {sparkline(levels)}{marker}")

    print("\ncurrent assessments:")
    for author in watchlist[:4]:
        level = assessor.assess(histories[author])
        flag = "!" if level >= RiskLevel.BEHAVIOR else " "
        print(f"  {flag} {author[:18]:<18} -> {level.label}")


if __name__ == "__main__":
    main()
