"""Quickstart: build a dataset, inspect it, train a risk assessor.

Runs in well under a minute by building a reduced-scale corpus; raise
``SCALE`` toward 1.0 for the paper-sized dataset (14,613 posts).

Usage::

    python examples/quickstart.py
"""

from repro import CorpusConfig, RiskAssessor, build_dataset

SCALE = 0.1


def main() -> None:
    # 1. Build the dataset: synthetic crawl -> preprocessing -> simulated
    #    annotation campaign -> anonymised release.
    result = build_dataset(CorpusConfig().scaled(SCALE))
    dataset = result.dataset

    print("=== build report ===")
    for key, value in result.report.as_dict().items():
        print(f"  {key}: {value}")

    print("\n=== Table I style distribution ===")
    for label, count, pct in dataset.label_distribution().as_rows():
        print(f"  {label:<10} {count:>6}  {pct:5.2f}%")
    print(f"  Fleiss kappa of the campaign: {dataset.kappa:.4f}")

    # 2. Train the XGBoost baseline through the high-level API.
    assessor = RiskAssessor("xgboost")
    assessor.fit(dataset)
    report = assessor.validation_report
    print("\n=== validation report (user-level task) ===")
    for key, value in report.as_row().items():
        print(f"  {key}: {value if isinstance(value, str) else round(value, 1)}")

    # 3. Assess a user.
    history = next(iter(dataset.histories().values()))
    level = assessor.assess(history)
    print(f"\nassessed risk of '{history.author}': {level.label}")
    print(f"alert (>= BEHAVIOR)? {assessor.alert(history)}")


if __name__ == "__main__":
    main()
