"""Run the paper's annotation protocol end to end and inspect its QC.

Demonstrates every §II-B2/§II-C1 mechanism: the Label-Studio-like
platform, the 95% training gate, the uncertainty-reporting policy, the
30% joint subset with 3-way voting, the daily plan and inspections, and
the resulting Fleiss κ.

Usage::

    python examples/annotation_campaign.py
"""

import json

from repro.annotation import AnnotationCampaign, interpret_kappa
from repro.core.config import AnnotationConfig, CorpusConfig
from repro.corpus import CorpusGenerator
from repro.preprocess import preprocess


def main() -> None:
    corpus = CorpusGenerator(CorpusConfig().scaled(0.1)).generate()
    clean = preprocess(corpus.annotated_posts, enable_near_dedup=False)
    print(f"posts to annotate: {len(clean.posts)}")

    campaign = AnnotationCampaign(AnnotationConfig())
    result = campaign.run(clean.posts)

    print("\n=== training gate (95% accuracy required) ===")
    for report in result.training_reports:
        print(f"  {report.annotator}: {report.rounds} round(s), "
              f"final accuracy {report.final_accuracy:.2%}")

    print("\n=== campaign outcome ===")
    print(f"  labelled items  : {result.num_labelled}")
    print(f"  joint subset    : {len(result.joint_post_ids)} "
          f"({len(result.joint_post_ids) / result.num_labelled:.0%})")
    print(f"  Fleiss kappa    : {result.kappa:.4f} "
          f"({interpret_kappa(result.kappa)})")
    print(f"  escalations     : {result.num_escalated} "
          f"(uncertainty reporting policy)")
    print(f"  flagged (no 2/3): {result.num_flagged} -> expert review")
    print(f"  residual noise  : {result.label_noise:.2%}")

    print("\n=== daily inspections (10% sample, 85% gate) ===")
    for day in result.daily_logs:
        status = "pass" if day.passed else "FAIL"
        extra = " (remediated)" if day.remediated else ""
        print(f"  day {day.day}: {day.items_labelled} labelled, "
              f"{day.items_escalated} escalated, inspection "
              f"{day.inspection_accuracy:.2%} -> {status}{extra}")

    export = result.project.export()
    print("\n=== Label-Studio style export (first record) ===")
    print(json.dumps(export[0], indent=2)[:600])


if __name__ == "__main__":
    main()
