"""Regression trees on gradient/hessian statistics (XGBoost-style).

Each tree minimises the second-order objective approximation: leaf weight
``w* = −G/(H+λ)`` and split gain

``gain = ½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ``

with exact greedy split search over sorted feature values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TreeParams:
    """Growth hyper-parameters of one tree.

    ``binned_max``: when the feature matrix contains integer bin indices
    in ``[0, binned_max]`` (histogram mode), split search switches from
    sort-based O(n log n) to bincount-based O(n + bins) per feature.
    """

    max_depth: int = 4
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_gain: float = 1e-12
    binned_max: int | None = None


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0
    gain: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class RegressionTree:
    """One fitted tree plus its per-feature gain accounting."""

    params: TreeParams
    root: _Node | None = None
    feature_gains: dict[int, float] = field(default_factory=dict)

    # -- fitting ---------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        sample_idx: np.ndarray | None = None,
        feature_idx: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Grow the tree on (gradient, hessian) statistics.

        ``sample_idx``/``feature_idx`` restrict the rows/columns considered
        (row subsampling and column subsampling).
        """
        if sample_idx is None:
            sample_idx = np.arange(features.shape[0])
        if feature_idx is None:
            feature_idx = np.arange(features.shape[1])
        self.root = self._grow(features, grad, hess, sample_idx, feature_idx, 0)
        return self

    def _leaf_value(self, g_sum: float, h_sum: float) -> float:
        return -g_sum / (h_sum + self.params.reg_lambda)

    def _grow(
        self,
        features: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        depth: int,
    ) -> _Node:
        g_sum = float(grad[rows].sum())
        h_sum = float(hess[rows].sum())
        node = _Node(value=self._leaf_value(g_sum, h_sum))
        if depth >= self.params.max_depth or len(rows) < 2:
            return node

        best = self._best_split(features, grad, hess, rows, cols, g_sum, h_sum)
        if best is None:
            return node
        gain, feature, threshold, left_rows, right_rows = best
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.gain = gain
        self.feature_gains[int(feature)] = (
            self.feature_gains.get(int(feature), 0.0) + gain
        )
        node.left = self._grow(features, grad, hess, left_rows, cols, depth + 1)
        node.right = self._grow(features, grad, hess, right_rows, cols, depth + 1)
        return node

    def _best_split(
        self,
        features: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        g_total: float,
        h_total: float,
    ):
        """Exact split search, vectorized across *all* candidate features.

        One argsort per column (a single ``axis=0`` call), prefix sums over
        the sorted gradient/hessian matrices, and a single gain matrix —
        the per-feature Python loop lives on as
        :meth:`_best_split_reference` for equivalence testing. Gains are
        accumulated column-wise in the same order as the reference, so the
        chosen split is bitwise identical.
        """
        if self.params.binned_max is not None:
            return self._best_split_hist(
                features, grad, hess, rows, cols, g_total, h_total
            )
        lam = self.params.reg_lambda
        parent_score = g_total**2 / (h_total + lam)
        g = grad[rows]
        h = hess[rows]
        values = features[np.ix_(rows, cols)]  # (n, F)
        order = np.argsort(values, axis=0, kind="stable")
        v_sorted = np.take_along_axis(values, order, axis=0)
        g_cum = np.cumsum(g[order], axis=0)
        h_cum = np.cumsum(h[order], axis=0)
        # Candidate boundaries: positions where the sorted value changes.
        is_boundary = v_sorted[:-1] < v_sorted[1:]  # (n-1, F)
        if not is_boundary.any():
            return None
        g_left = g_cum[:-1]
        h_left = h_cum[:-1]
        g_right = g_total - g_left
        h_right = h_total - h_left
        valid = (
            is_boundary
            & (h_left >= self.params.min_child_weight)
            & (h_right >= self.params.min_child_weight)
        )
        if not valid.any():
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            gains = (
                0.5
                * (
                    g_left**2 / (h_left + lam)
                    + g_right**2 / (h_right + lam)
                    - parent_score
                )
                - self.params.gamma
            )
        gains[~valid] = -np.inf
        col_best = gains.max(axis=0)
        f_pos = int(np.argmax(col_best))  # ties → first feature, as reference
        if not col_best[f_pos] > self.params.min_gain:
            return None
        k = int(np.argmax(gains[:, f_pos]))  # ties → lowest boundary
        threshold = 0.5 * (v_sorted[k, f_pos] + v_sorted[k + 1, f_pos])
        mask = values[:, f_pos] <= threshold
        return (
            float(gains[k, f_pos]),
            cols[f_pos],
            float(threshold),
            rows[mask],
            rows[~mask],
        )

    def _best_split_reference(
        self,
        features: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        g_total: float,
        h_total: float,
    ):
        """Naive predecessor of :meth:`_best_split`: one sweep per feature.

        Kept (not exported) purely so tests can assert the vectorized
        kernel picks identical splits.
        """
        lam = self.params.reg_lambda
        parent_score = g_total**2 / (h_total + lam)
        best_gain = self.params.min_gain
        best = None
        g = grad[rows]
        h = hess[rows]
        for feature in cols:
            values = features[rows, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            g_cum = np.cumsum(g[order])
            h_cum = np.cumsum(h[order])
            # Candidate boundaries: positions where the value changes.
            change = np.nonzero(v_sorted[:-1] < v_sorted[1:])[0]
            if change.size == 0:
                continue
            g_left = g_cum[change]
            h_left = h_cum[change]
            g_right = g_total - g_left
            h_right = h_total - h_left
            valid = (h_left >= self.params.min_child_weight) & (
                h_right >= self.params.min_child_weight
            )
            if not valid.any():
                continue
            gains = (
                0.5
                * (
                    g_left**2 / (h_left + lam)
                    + g_right**2 / (h_right + lam)
                    - parent_score
                )
                - self.params.gamma
            )
            gains[~valid] = -np.inf
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                boundary = change[k]
                threshold = 0.5 * (v_sorted[boundary] + v_sorted[boundary + 1])
                mask = values <= threshold
                best_gain = float(gains[k])
                best = (
                    best_gain,
                    feature,
                    threshold,
                    rows[mask],
                    rows[~mask],
                )
        return best

    def _best_split_hist(
        self,
        features: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        g_total: float,
        h_total: float,
    ):
        """Histogram split search: bincount per feature, O(n + bins)."""
        lam = self.params.reg_lambda
        num_bins = int(self.params.binned_max) + 1
        parent_score = g_total**2 / (h_total + lam)
        best_gain = self.params.min_gain
        best = None
        g = grad[rows]
        h = hess[rows]
        for feature in cols:
            values = features[rows, feature].astype(np.int64)
            g_hist = np.bincount(values, weights=g, minlength=num_bins)
            h_hist = np.bincount(values, weights=h, minlength=num_bins)
            occupancy = np.bincount(values, minlength=num_bins)
            g_left = np.cumsum(g_hist)[:-1]
            h_left = np.cumsum(h_hist)[:-1]
            g_right = g_total - g_left
            h_right = h_total - h_left
            occupied_left = np.cumsum(occupancy)[:-1]
            valid = (
                (h_left >= self.params.min_child_weight)
                & (h_right >= self.params.min_child_weight)
                & (occupied_left > 0)
                & (occupied_left < len(rows))
            )
            if not valid.any():
                continue
            gains = (
                0.5
                * (
                    g_left**2 / (h_left + lam)
                    + g_right**2 / (h_right + lam)
                    - parent_score
                )
                - self.params.gamma
            )
            gains[~valid] = -np.inf
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                threshold = k + 0.5  # split between bin k and k+1
                mask = values <= k
                best_gain = float(gains[k])
                best = (best_gain, feature, threshold, rows[mask], rows[~mask])
        return best

    # -- prediction --------------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Leaf values for each row."""
        if self.root is None:
            raise RuntimeError("tree not fitted")
        out = np.empty(features.shape[0])
        # Iterative routing: queue of (node, row indices).
        stack = [(self.root, np.arange(features.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            mask = features[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    def num_leaves(self) -> int:
        if self.root is None:
            return 0
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                stack.extend((node.left, node.right))
        return count
