"""Gradient-boosted tree ensembles (the from-scratch "XGBoost").

Second-order boosting with shrinkage, row/column subsampling, optional
early stopping on a validation set, and gain-based feature importances —
the feature set the paper's XGBoost baseline depends on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro import perf
from repro.core.errors import NotFittedError
from repro.boosting.objectives import LogisticObjective, SoftmaxObjective
from repro.boosting.tree import RegressionTree, TreeParams


@dataclass
class GBMParams:
    """Ensemble hyper-parameters (XGBoost naming).

    ``max_bins``: when set, features are quantile-binned once up front and
    trees split on bin indices — the ``tree_method="hist"`` trade-off
    (much faster split search, slightly coarser thresholds).

    ``auto_hist_rows``: when ``max_bins`` is None and the training set has
    at least this many rows, histogram mode is enabled automatically with
    ``auto_hist_bins`` bins (the ``tree_method="auto"`` behaviour). Set to
    0 to always use the exact sweep.
    """

    n_estimators: int = 60
    learning_rate: float = 0.3
    max_depth: int = 4
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    subsample: float = 1.0
    colsample: float = 1.0
    early_stopping_rounds: int | None = None
    max_bins: int | None = None
    auto_hist_rows: int = 4096
    auto_hist_bins: int = 256
    seed: int = 0

    def effective_bins(self, num_rows: int) -> int | None:
        """Bin count to train with: explicit ``max_bins``, or the auto-hist
        default once the training set crosses ``auto_hist_rows`` rows."""
        if self.max_bins is not None:
            return self.max_bins
        if self.auto_hist_rows and num_rows >= self.auto_hist_rows:
            return self.auto_hist_bins
        return None

    def tree_params(self, binned_max: int | None = None) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            binned_max=self.max_bins if binned_max is None else binned_max,
        )


class QuantileBinner:
    """Per-feature quantile binning for histogram-mode training."""

    def __init__(self, max_bins: int) -> None:
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, features: np.ndarray) -> "QuantileBinner":
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        self.edges_ = [
            np.unique(np.quantile(features[:, j], quantiles))
            for j in range(features.shape[1])
        ]
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner not fitted")
        out = np.empty_like(features)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, features[:, j], side="right")
        return out

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


@dataclass
class _Round:
    trees: list[RegressionTree] = field(default_factory=list)


class GradientBoostingClassifier:
    """Multiclass gradient boosting with softmax objective.

    One regression tree per class per round, trained on the per-class
    gradients — the construction of ``multi:softprob``.
    """

    def __init__(self, params: GBMParams | None = None, **overrides) -> None:
        if params is not None and overrides:
            raise ValueError("pass either params or keyword overrides, not both")
        self.params = params or GBMParams(**overrides)
        self._rounds: list[_Round] = []
        self._binner: QuantileBinner | None = None
        self._objective: SoftmaxObjective | LogisticObjective | None = None
        self.num_classes_: int | None = None
        self.num_features_: int | None = None
        self.best_iteration_: int | None = None
        self.eval_history_: list[float] = []

    # -- fitting --------------------------------------------------------------

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
        sample_weight: np.ndarray | None = None,
    ) -> "GradientBoostingClassifier":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if len(features) != len(targets):
            raise ValueError("features and targets disagree on length")
        rng = np.random.default_rng(self.params.seed)
        self.num_classes_ = int(targets.max()) + 1
        self.num_features_ = features.shape[1]
        self._binner = None
        bins = self.params.effective_bins(len(features))
        tree_params = self.params.tree_params(bins)
        if bins is not None:
            self._binner = QuantileBinner(bins)
            features = self._binner.fit_transform(features)
            if eval_set is not None:
                eval_set = (
                    self._binner.transform(
                        np.asarray(eval_set[0], dtype=np.float64)
                    ),
                    eval_set[1],
                )
        self._objective = SoftmaxObjective(max(2, self.num_classes_))
        self._rounds = []
        self.eval_history_ = []

        scores = self._objective.init_scores(len(features))
        eval_scores = (
            self._objective.init_scores(len(eval_set[0]))
            if eval_set is not None
            else None
        )
        best_loss = np.inf
        rounds_since_best = 0
        n, f = features.shape
        with perf.span("gbm.fit"):
            for _ in range(self.params.n_estimators):
                grad, hess = self._objective.grad_hess(
                    scores, targets, sample_weight
                )
                row_idx = self._subsample(rng, n, self.params.subsample)
                col_idx = self._subsample(rng, f, self.params.colsample)
                this_round = _Round()
                for k in range(self._objective.num_classes):
                    tree = RegressionTree(dataclasses.replace(tree_params)).fit(
                        features, grad[:, k], hess[:, k], row_idx, col_idx
                    )
                    update = tree.predict(features)
                    scores[:, k] += self.params.learning_rate * update
                    this_round.trees.append(tree)
                    if eval_scores is not None:
                        eval_scores[:, k] += (
                            self.params.learning_rate * tree.predict(eval_set[0])
                        )
                self._rounds.append(this_round)
                perf.count("gbm.rounds")
                if eval_scores is not None:
                    loss = self._objective.loss(
                        eval_scores, np.asarray(eval_set[1])
                    )
                    self.eval_history_.append(loss)
                    if loss < best_loss - 1e-9:
                        best_loss = loss
                        self.best_iteration_ = len(self._rounds)
                        rounds_since_best = 0
                    else:
                        rounds_since_best += 1
                        patience = self.params.early_stopping_rounds
                        if patience is not None and rounds_since_best >= patience:
                            break
        if self.best_iteration_ is None:
            self.best_iteration_ = len(self._rounds)
        return self

    @staticmethod
    def _subsample(
        rng: np.random.Generator, total: int, fraction: float
    ) -> np.ndarray:
        if fraction >= 1.0:
            return np.arange(total)
        size = max(1, int(round(total * fraction)))
        return np.sort(rng.choice(total, size=size, replace=False))

    # -- inference ------------------------------------------------------------

    def _raw_scores(self, features: np.ndarray) -> np.ndarray:
        if self._objective is None:
            raise NotFittedError("GradientBoostingClassifier not fitted")
        features = np.asarray(features, dtype=np.float64)
        if self._binner is not None:
            features = self._binner.transform(features)
        scores = self._objective.init_scores(len(features))
        for round_ in self._rounds[: self.best_iteration_]:
            for k, tree in enumerate(round_.trees):
                scores[:, k] += self.params.learning_rate * tree.predict(features)
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._objective is None:
            raise NotFittedError("GradientBoostingClassifier not fitted")
        return self._objective.predict_proba(self._raw_scores(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    # -- introspection ------------------------------------------------------------

    @property
    def feature_importances_(self) -> np.ndarray:
        """Total split gain per feature, normalised to sum to 1."""
        if self._objective is None:
            raise NotFittedError("GradientBoostingClassifier not fitted")
        gains = np.zeros(self.num_features_)
        for round_ in self._rounds[: self.best_iteration_]:
            for tree in round_.trees:
                for feature, gain in tree.feature_gains.items():
                    gains[feature] += gain
        total = gains.sum()
        return gains / total if total > 0 else gains

    @property
    def n_trees_(self) -> int:
        return sum(len(r.trees) for r in self._rounds)
