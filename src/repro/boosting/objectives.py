"""Boosting objectives: gradients/hessians of the training losses."""

from __future__ import annotations

import numpy as np


def softmax(scores: np.ndarray) -> np.ndarray:
    """Row-wise stable softmax."""
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxObjective:
    """Multiclass cross-entropy on raw per-class scores.

    For sample *i* with probabilities ``p`` and one-hot target ``y``:
    ``grad_k = p_k − y_k`` and ``hess_k = 2·p_k·(1 − p_k)`` — the same
    statistics XGBoost's ``multi:softprob`` uses.
    """

    def __init__(self, num_classes: int) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.num_classes = num_classes

    def init_scores(self, n: int) -> np.ndarray:
        return np.zeros((n, self.num_classes))

    def grad_hess(
        self, scores: np.ndarray, targets: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        probs = softmax(scores)
        onehot = np.eye(self.num_classes)[targets]
        grad = probs - onehot
        hess = 2.0 * probs * (1.0 - probs)
        hess = np.maximum(hess, 1e-6)
        if sample_weight is not None:
            grad = grad * sample_weight[:, None]
            hess = hess * sample_weight[:, None]
        return grad, hess

    def loss(self, scores: np.ndarray, targets: np.ndarray) -> float:
        probs = softmax(scores)
        picked = probs[np.arange(len(targets)), targets]
        return float(-np.log(np.maximum(picked, 1e-12)).mean())

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        return softmax(scores)


class LogisticObjective:
    """Binary logistic loss on a single score column."""

    num_classes = 2

    def init_scores(self, n: int) -> np.ndarray:
        return np.zeros((n, 1))

    def grad_hess(
        self, scores: np.ndarray, targets: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        p = 1.0 / (1.0 + np.exp(-scores[:, 0]))
        grad = (p - targets)[:, None]
        hess = np.maximum(p * (1.0 - p), 1e-6)[:, None]
        if sample_weight is not None:
            grad = grad * sample_weight[:, None]
            hess = hess * sample_weight[:, None]
        return grad, hess

    def loss(self, scores: np.ndarray, targets: np.ndarray) -> float:
        p = 1.0 / (1.0 + np.exp(-scores[:, 0]))
        p = np.clip(p, 1e-12, 1 - 1e-12)
        return float(
            -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        )

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        p = 1.0 / (1.0 + np.exp(-scores[:, 0]))
        return np.stack([1 - p, p], axis=1)
