"""From-scratch gradient-boosted trees (XGBoost-style)."""

from repro.boosting.gbm import GBMParams, GradientBoostingClassifier
from repro.boosting.objectives import (
    LogisticObjective,
    SoftmaxObjective,
    softmax,
)
from repro.boosting.tree import RegressionTree, TreeParams

__all__ = [
    "GBMParams",
    "GradientBoostingClassifier",
    "LogisticObjective",
    "SoftmaxObjective",
    "softmax",
    "RegressionTree",
    "TreeParams",
]
