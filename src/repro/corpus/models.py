"""Record types shared across the corpus substrate and the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timezone

from repro.core.schema import RiskLevel


@dataclass(frozen=True)
class RedditPost:
    """One submission as returned by the (simulated) Reddit listing API.

    Attributes
    ----------
    post_id:
        Base-36 style submission id, unique within a simulator instance.
    author:
        Opaque author handle. The privacy module replaces this with a
        salted hash before the data leaves the pipeline.
    subreddit:
        Community the post was submitted to (e.g. ``"SuicideWatch"``).
    title / body:
        Submission title and self-text.
    created_utc:
        Timezone-aware creation timestamp.
    oracle_label:
        Simulation-only ground truth used by the annotator simulator and
        by evaluation. ``None`` for posts outside the risk domain. Real
        crawled data would not carry this field — nothing in the
        *modelling* pipeline reads it except through the annotation
        campaign.
    """

    post_id: str
    author: str
    subreddit: str
    title: str
    body: str
    created_utc: datetime
    oracle_label: RiskLevel | None = None

    @property
    def text(self) -> str:
        """Title and body joined the way the annotation UI shows them."""
        if self.title and self.body:
            return f"{self.title}\n{self.body}"
        return self.title or self.body

    @property
    def timestamp(self) -> float:
        """POSIX timestamp (seconds)."""
        return self.created_utc.timestamp()

    def with_body(self, body: str) -> "RedditPost":
        """Copy of this post with a replaced body (used by cleaning)."""
        return replace(self, body=body)

    def with_author(self, author: str) -> "RedditPost":
        """Copy of this post with a replaced author (used by anonymiser)."""
        return replace(self, author=author)


@dataclass(frozen=True)
class UserProfile:
    """Simulation profile of one author in the synthetic corpus."""

    author: str
    base_level: RiskLevel
    num_posts: int
    night_owl: float
    mean_gap_hours: float


@dataclass
class UserHistory:
    """All posts of one author, kept in chronological order."""

    author: str
    posts: list[RedditPost] = field(default_factory=list)

    def add(self, post: RedditPost) -> None:
        self.posts.append(post)
        self.posts.sort(key=lambda p: p.created_utc)

    @property
    def latest(self) -> RedditPost:
        if not self.posts:
            raise ValueError(f"user {self.author} has no posts")
        return self.posts[-1]

    def __len__(self) -> int:
        return len(self.posts)


def utc_from_timestamp(ts: float) -> datetime:
    """Timezone-aware datetime from a POSIX timestamp."""
    return datetime.fromtimestamp(ts, tz=timezone.utc)
