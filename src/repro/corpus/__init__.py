"""Simulated Reddit substrate and synthetic RSD-15K corpus generation."""

from repro.corpus.generator import (
    SUBREDDIT,
    CorpusGenerator,
    SyntheticCorpus,
    generate_corpus,
)
from repro.corpus.models import RedditPost, UserHistory, UserProfile
from repro.corpus.reddit import Listing, RedditSimulator, Subreddit, crawl

__all__ = [
    "SUBREDDIT",
    "CorpusGenerator",
    "SyntheticCorpus",
    "generate_corpus",
    "RedditPost",
    "UserHistory",
    "UserProfile",
    "Listing",
    "RedditSimulator",
    "Subreddit",
    "crawl",
]
