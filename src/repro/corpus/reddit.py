"""An in-memory simulated Reddit, standing in for the official API.

The paper's raw data was crawled from the ``r/SuicideWatch`` subreddit with
the official Reddit API. That API is a network/service dependency, so this
module provides the smallest faithful substrate: subreddits hold
submissions; a paginated *listing* endpoint returns them newest-first in
pages with an opaque ``after`` cursor, exactly like ``/r/<sub>/new``.

The crawler in :mod:`repro.corpus.generator` only uses this public surface,
so swapping in a real API client would be a one-class change.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from datetime import datetime

from repro.core.errors import CorpusError
from repro.corpus.models import RedditPost

_BASE36 = "0123456789abcdefghijklmnopqrstuvwxyz"


def _to_base36(value: int) -> str:
    if value == 0:
        return "0"
    digits = []
    while value:
        value, rem = divmod(value, 36)
        digits.append(_BASE36[rem])
    return "".join(reversed(digits))


@dataclass
class Listing:
    """One page of a paginated listing response."""

    posts: list[RedditPost]
    after: str | None


@dataclass
class Subreddit:
    """A community holding submissions, newest first."""

    name: str
    posts: list[RedditPost] = field(default_factory=list)
    _sorted: bool = True

    def submit(self, post: RedditPost) -> None:
        if post.subreddit != self.name:
            raise CorpusError(
                f"post {post.post_id} targets r/{post.subreddit}, "
                f"not r/{self.name}"
            )
        self.posts.append(post)
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # Newest first; ties broken by id for determinism.
            self.posts.sort(key=lambda p: (p.created_utc, p.post_id), reverse=True)
            self._sorted = True

    def __len__(self) -> int:
        return len(self.posts)


class RedditSimulator:
    """Minimal Reddit clone exposing the listing API the crawler needs.

    Example
    -------
    >>> reddit = RedditSimulator()
    >>> reddit.create_subreddit("SuicideWatch")
    >>> # ...populate...
    >>> page = reddit.new("SuicideWatch", limit=100)
    >>> next_page = reddit.new("SuicideWatch", limit=100, after=page.after)
    """

    #: Mirror of the real API's maximum page size.
    MAX_PAGE_SIZE = 100

    def __init__(self) -> None:
        self._subreddits: dict[str, Subreddit] = {}
        self._id_counter = itertools.count(1_000_000)
        self.api_calls = 0

    # -- write side -------------------------------------------------------

    def create_subreddit(self, name: str) -> Subreddit:
        """Create (or return the existing) subreddit ``name``."""
        if name not in self._subreddits:
            self._subreddits[name] = Subreddit(name=name)
        return self._subreddits[name]

    def next_post_id(self) -> str:
        """A fresh base-36 submission id (``t3_``-style fullname body)."""
        return _to_base36(next(self._id_counter))

    def submit(self, post: RedditPost) -> None:
        """Add a post to its subreddit (creating the subreddit if needed)."""
        self.create_subreddit(post.subreddit).submit(post)

    # -- read side (the API surface the crawler uses) ----------------------

    def subreddit(self, name: str) -> Subreddit:
        try:
            return self._subreddits[name]
        except KeyError as exc:
            raise CorpusError(f"unknown subreddit: r/{name}") from exc

    def new(
        self,
        subreddit: str,
        limit: int = 25,
        after: str | None = None,
    ) -> Listing:
        """Newest-first page of submissions, as ``GET /r/<sub>/new``.

        Parameters
        ----------
        limit:
            Page size, clamped to :data:`MAX_PAGE_SIZE` like the real API.
        after:
            Opaque cursor (a post id) returned in a previous page; the
            page starts strictly after that post.
        """
        self.api_calls += 1
        sub = self.subreddit(subreddit)
        sub._ensure_sorted()
        limit = max(1, min(int(limit), self.MAX_PAGE_SIZE))
        start = 0
        if after is not None:
            ids = [p.post_id for p in sub.posts]
            try:
                start = ids.index(after) + 1
            except ValueError as exc:
                raise CorpusError(f"unknown cursor: {after!r}") from exc
        page = sub.posts[start : start + limit]
        next_after = page[-1].post_id if len(page) == limit else None
        if start + limit >= len(sub.posts):
            next_after = None
        return Listing(posts=list(page), after=next_after)

    def iterate_all(self, subreddit: str, page_size: int = 100):
        """Yield every submission of a subreddit via repeated listing calls."""
        after: str | None = None
        while True:
            page = self.new(subreddit, limit=page_size, after=after)
            yield from page.posts
            if page.after is None:
                return
            after = page.after


def crawl(
    reddit: RedditSimulator,
    subreddit: str,
    start: datetime,
    end: datetime,
    page_size: int = 100,
) -> list[RedditPost]:
    """Crawl all posts of ``subreddit`` inside ``[start, end]``.

    Mirrors the paper's collection step (§II-A1): exhaustively page the
    listing endpoint and keep submissions whose timestamp falls in the
    crawl window. Returned oldest-first (chronological) for downstream
    temporal processing.
    """
    if start >= end:
        raise CorpusError("crawl window start must precede end")
    kept = [
        post
        for post in reddit.iterate_all(subreddit, page_size=page_size)
        if start <= post.created_utc <= end
    ]
    kept.sort(key=lambda p: (p.created_utc, p.post_id))
    return kept
