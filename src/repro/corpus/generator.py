"""Synthetic RSD-15K corpus builder.

Populates the simulated Reddit with a crawl-sized pool of submissions
(annotated users + background users + off-topic noise + duplicates) and
then replays the paper's collection step: crawl ``r/SuicideWatch`` over
01/2020–12/2021 and select the annotated user slice.

The output is deliberately *dirty* — duplicated posts, URLs, zero-width
characters, hashtag spam, off-topic submissions — so the pre-processing
stage (§II-A2) has real work to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import timedelta

import numpy as np

from repro.core.config import CorpusConfig
from repro.core.rng import SeedSequenceRegistry
from repro.core.schema import RiskLevel
from repro.corpus.lexicon import SentenceSampler
from repro.corpus.models import RedditPost, UserProfile, utc_from_timestamp
from repro.corpus.reddit import RedditSimulator, crawl
from repro.corpus.users import (
    RiskTrajectory,
    risk_transition_matrix,
    sample_gaps_hours,
    sample_post_hours,
    sample_profiles,
    sample_trajectory,
)

SUBREDDIT = "SuicideWatch"

#: Fractions of injected dirt in the raw pool.
DUPLICATE_RATE = 0.02
NOISE_RATE = 0.12
OFFTOPIC_RATE = 0.03


@dataclass
class SyntheticCorpus:
    """Everything the generator produced, before pre-processing.

    Attributes
    ----------
    reddit:
        The populated simulator (kept so examples can re-crawl).
    raw_posts:
        Chronological crawl output (annotated users + background + dirt).
    annotated_authors:
        The authors whose posts form the annotated slice.
    profiles:
        Simulation profiles for the annotated authors.
    config:
        The configuration the corpus was generated under.
    """

    reddit: RedditSimulator
    raw_posts: list[RedditPost]
    annotated_authors: set[str]
    profiles: dict[str, UserProfile] = field(default_factory=dict)
    config: CorpusConfig = field(default_factory=CorpusConfig)

    @property
    def annotated_posts(self) -> list[RedditPost]:
        """Raw posts belonging to annotated authors (still dirty)."""
        return [p for p in self.raw_posts if p.author in self.annotated_authors]

    @property
    def background_posts(self) -> list[RedditPost]:
        """Unannotated crawl pool (used for language-model pretraining)."""
        return [
            p for p in self.raw_posts if p.author not in self.annotated_authors
        ]


class CorpusGenerator:
    """Builds a :class:`SyntheticCorpus` from a :class:`CorpusConfig`."""

    def __init__(self, config: CorpusConfig | None = None) -> None:
        self.config = config or CorpusConfig()
        self._registry = SeedSequenceRegistry(self.config.seed)
        self._kernel = risk_transition_matrix(self.config.label_mix)

    # -- timeline ----------------------------------------------------------

    def _place_timeline(
        self,
        rng: np.random.Generator,
        profile: UserProfile,
        trajectory: RiskTrajectory,
        temporal_strength: float,
    ) -> list[float]:
        """POSIX timestamps for one user's posts inside the crawl window."""
        cfg = self.config
        gaps = sample_gaps_hours(rng, profile, trajectory, temporal_strength)
        span_seconds = float(gaps.sum()) * 3600.0
        window = (cfg.end - cfg.start).total_seconds()
        if span_seconds >= window * 0.95:
            gaps = gaps * (window * 0.95 / max(span_seconds, 1.0) / 3600.0) * 3600.0
            span_seconds = float(gaps.sum()) * 3600.0
        slack = max(0.0, window - span_seconds)
        start_ts = cfg.start.timestamp() + rng.random() * slack
        offsets = np.concatenate([[0.0], np.cumsum(gaps) * 3600.0])
        hours = sample_post_hours(rng, profile, len(offsets))
        timestamps = []
        for off, hour in zip(offsets, hours):
            ts = start_ts + off
            day = utc_from_timestamp(ts).replace(
                hour=0, minute=0, second=0, microsecond=0
            )
            placed = day + timedelta(hours=float(hour), minutes=float(rng.integers(60)))
            timestamps.append(
                min(cfg.end.timestamp(), max(cfg.start.timestamp(), placed.timestamp()))
            )
        timestamps.sort()
        # Enforce strictly increasing times so ordering is unambiguous.
        for i in range(1, len(timestamps)):
            if timestamps[i] <= timestamps[i - 1]:
                timestamps[i] = timestamps[i - 1] + 60.0
        return timestamps

    # -- posts -------------------------------------------------------------

    def _emit_user_posts(
        self,
        reddit: RedditSimulator,
        rng: np.random.Generator,
        sampler: SentenceSampler,
        profile: UserProfile,
    ) -> None:
        trajectory = sample_trajectory(rng, profile, self._kernel)
        timestamps = self._place_timeline(
            rng, profile, trajectory, self.config.temporal_strength
        )
        for level, ts in zip(trajectory.levels, timestamps):
            n_sentences = int(rng.integers(2, 7))
            body = sampler.body(level, n_sentences)
            title = sampler.title(level)
            reddit.submit(
                RedditPost(
                    post_id=reddit.next_post_id(),
                    author=profile.author,
                    subreddit=SUBREDDIT,
                    title=title,
                    body=body,
                    created_utc=utc_from_timestamp(ts),
                    oracle_label=level,
                )
            )

    def _emit_dirt(
        self,
        reddit: RedditSimulator,
        rng: np.random.Generator,
        sampler: SentenceSampler,
        clean_posts: list[RedditPost],
    ) -> None:
        """Inject duplicates, noise-polluted copies, and off-topic posts."""
        n = len(clean_posts)
        # Exact duplicates (same author, text reposted minutes later).
        for post in rng.choice(n, size=int(n * DUPLICATE_RATE), replace=False):
            src = clean_posts[int(post)]
            reddit.submit(
                RedditPost(
                    post_id=reddit.next_post_id(),
                    author=src.author,
                    subreddit=SUBREDDIT,
                    title=src.title,
                    body=src.body,
                    created_utc=src.created_utc + timedelta(minutes=7),
                    oracle_label=src.oracle_label,
                )
            )
        # Off-topic submissions from background accounts.
        num_offtopic = int(n * OFFTOPIC_RATE)
        window = (self.config.end - self.config.start).total_seconds()
        for i in range(num_offtopic):
            ts = self.config.start.timestamp() + rng.random() * window
            reddit.submit(
                RedditPost(
                    post_id=reddit.next_post_id(),
                    author=f"offtopic_{i:05d}",
                    subreddit=SUBREDDIT,
                    title="[OT] " + sampler.offtopic(),
                    body=sampler.offtopic(),
                    created_utc=utc_from_timestamp(ts),
                    oracle_label=None,
                )
            )

    def _pollute_bodies(
        self, rng: np.random.Generator, sampler: SentenceSampler, reddit: RedditSimulator
    ) -> None:
        """Append noise fragments to a fraction of submissions in place."""
        sub = reddit.subreddit(SUBREDDIT)
        for i, post in enumerate(sub.posts):
            if rng.random() < NOISE_RATE:
                sub.posts[i] = post.with_body(post.body + sampler.noise())

    # -- public API ---------------------------------------------------------

    def generate(self) -> SyntheticCorpus:
        """Build the populated simulator and replay the paper's crawl."""
        cfg = self.config
        reddit = RedditSimulator()
        reddit.create_subreddit(SUBREDDIT)

        profile_rng = self._registry.get("profiles")
        annotated = sample_profiles(
            profile_rng,
            cfg.num_users,
            cfg.target_posts,
            cfg.label_mix,
            cfg.temporal_strength,
        )
        # Background (unannotated) pool — same generative process, separate
        # author namespace, sized to the remaining crawl volume.
        bg_posts = max(0, cfg.raw_pool_posts - cfg.target_posts)
        bg_users = max(1, cfg.raw_pool_users - cfg.num_users)
        bg_users = min(bg_users, max(1, bg_posts))  # at least 1 post each
        background = sample_profiles(
            self._registry.get("background-profiles"),
            bg_users,
            max(bg_users, bg_posts),
            cfg.label_mix,
            cfg.temporal_strength,
        )
        background = [
            UserProfile(
                author=f"bg_{p.author}",
                base_level=p.base_level,
                num_posts=p.num_posts,
                night_owl=p.night_owl,
                mean_gap_hours=p.mean_gap_hours,
            )
            for p in background
        ]

        text_rng = self._registry.get("text")
        sampler = SentenceSampler(
            text_rng,
            cfg.lexical_strength,
            hard_fraction=cfg.hard_fraction,
            ambiguity_noise=cfg.ambiguity_noise,
        )
        emit_rng = self._registry.get("emission")
        for profile in annotated + background:
            self._emit_user_posts(reddit, emit_rng, sampler, profile)

        clean = list(reddit.subreddit(SUBREDDIT).posts)
        dirt_rng = self._registry.get("dirt")
        self._emit_dirt(reddit, dirt_rng, sampler, clean)
        self._pollute_bodies(dirt_rng, sampler, reddit)

        raw = crawl(reddit, SUBREDDIT, cfg.start, cfg.end)
        return SyntheticCorpus(
            reddit=reddit,
            raw_posts=raw,
            annotated_authors={p.author for p in annotated},
            profiles={p.author: p for p in annotated},
            config=cfg,
        )


def generate_corpus(
    scale: float = 1.0, seed: int | None = None, **overrides
) -> SyntheticCorpus:
    """Convenience one-call corpus builder.

    Parameters
    ----------
    scale:
        Fraction of the paper-sized corpus to generate (1.0 = 14,613
        annotated posts).
    seed:
        Master seed; defaults to the library default.
    overrides:
        Any :class:`CorpusConfig` field, e.g. ``lexical_strength=0.5``.
    """
    cfg = CorpusConfig(**overrides) if overrides else CorpusConfig()
    if seed is not None:
        import dataclasses

        cfg = dataclasses.replace(cfg, seed=seed)
    if scale != 1.0:
        cfg = cfg.scaled(scale)
    return CorpusGenerator(cfg).generate()
