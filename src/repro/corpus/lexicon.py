"""Class-conditioned language banks for the synthetic corpus.

The generator composes each post from a mixture of *neutral* sentences
(shared across classes) and *signal* sentences drawn from the bank of the
post's risk level. Signal sentences paraphrase the kind of language the
annotation guideline describes for each label, using restrained and
non-graphic wording (no method or instructional content) — the point is to
plant a learnable class-conditional lexical distribution, not to imitate
real crisis text.

Templates contain ``{slot}`` placeholders filled from the pools in
:data:`SLOT_POOLS`; this widens the vocabulary so that bag-of-words models
cannot trivially memorise whole sentences.
"""

from __future__ import annotations

import string

import numpy as np

from repro.core.schema import RiskLevel

#: Risk phrases shared by ALL four hard banks — the phrase itself carries
#: no label; only the frame around it does.
RISK_PHRASES: tuple[str, ...] = (
    "ending it all",
    "taking my own life",
    "an attempt",
    "hurting myself",
    "making a plan",
    "writing the note",
    "being gone",
    "not waking up",
    "giving up for good",
    "going through with it",
)

SLOT_POOLS: dict[str, tuple[str, ...]] = {
    "rp": RISK_PHRASES,
    "feeling": (
        "exhausted", "numb", "hollow", "overwhelmed", "worthless", "trapped",
        "invisible", "drained", "restless", "defeated", "isolated", "heavy",
    ),
    "stressor": (
        "work", "school", "my family", "the bills", "my relationship",
        "the layoffs", "exams", "the pandemic", "my health", "the debt",
        "my job search", "everything at home",
    ),
    "time": (
        "tonight", "lately", "this week", "for months", "every night",
        "since last year", "all day", "again", "these days", "right now",
    ),
    "person": (
        "my brother", "my best friend", "my roommate", "a coworker",
        "my sister", "someone in my class", "my neighbour", "an old friend",
    ),
    "activity": (
        "sleeping", "eating", "getting out of bed", "focusing",
        "talking to people", "keeping up at work", "caring about anything",
    ),
    "place": (
        "my room", "the apartment", "campus", "the office", "the house",
        "my car", "the city",
    ),
    "support": (
        "a therapist", "the hotline", "my doctor", "a counselor",
        "my mom", "a support group", "my partner",
    ),
    "time_season": (
        "last winter", "last spring", "in the summer", "last autumn",
        "around the holidays", "early last year",
    ),
}

#: Sentences that carry no class signal; mixed into every post.
NEUTRAL_SENTENCES: tuple[str, ...] = (
    "I do not really know how to start this post.",
    "Sorry if this is long, I just need to write it down.",
    "I have been dealing with {stressor} {time}.",
    "Things have been hard with {stressor} and I feel {feeling}.",
    "I have trouble {activity} {time}.",
    "I keep staying up late in {place} thinking about things.",
    "Thanks for reading, I just needed to vent somewhere.",
    "I have not told anyone around me about any of this.",
    "Maybe writing here will help me sort out my head.",
    "It has been a rough stretch {time} to be honest.",
    "I feel {feeling} most days and I do not know why.",
    "Everything with {stressor} keeps piling up.",
    "I used to enjoy things but {time} it all feels flat.",
    "My sleep schedule is completely ruined {time}.",
    "I spend most evenings alone in {place}.",
)

#: Class-conditional signal sentences, keyed by risk level.
SIGNAL_SENTENCES: dict[RiskLevel, tuple[str, ...]] = {
    RiskLevel.INDICATOR: (
        "I am worried about {person}, they have been talking about suicide.",
        "To be clear, I am not suicidal, I am asking for {person}.",
        "How do I support {person} who mentioned wanting to die?",
        "{person} scared me with what they said, what should I do?",
        "I promise I am safe, I just want advice for {person}.",
        "I am only here because of {person}, not for myself.",
        "Does anyone know resources I could share with {person}?",
        "I want to help {person} before things get worse for them.",
        "I have no intention of hurting myself, this is about {person}.",
        "Reaching out on behalf of {person} who is struggling badly.",
    ),
    RiskLevel.IDEATION: (
        "I keep wishing I could fall asleep and not wake up.",
        "The thought of ending it crosses my mind {time}.",
        "I do not want to be alive anymore, but I have no plan.",
        "Sometimes I imagine just disappearing from everything.",
        "I think about death a lot more than I should {time}.",
        "Part of me wants out, even though I would never act on it.",
        "I daydream about not existing when {stressor} gets bad.",
        "The wish to be gone comes and goes, mostly at night.",
        "I would not do anything, but the thoughts will not stop.",
        "Living feels pointless and I catch myself wanting it over.",
    ),
    RiskLevel.BEHAVIOR: (
        "I started writing goodbye letters to the people I love.",
        "I have been giving away my things one by one {time}.",
        "I caught myself researching ways and making a plan.",
        "I hurt myself again last night, the urge was too strong.",
        "I picked a date and began putting my affairs in order.",
        "I bought what I would need, it is still sitting in {place}.",
        "The scars on my arm are getting harder to hide.",
        "I rehearsed how I would do it while alone in {place}.",
        "I keep self harming even though I do not want to die yet.",
        "I drafted a note and saved it where someone would find it.",
    ),
    RiskLevel.ATTEMPT: (
        "Last year I attempted and woke up in the hospital.",
        "I survived my attempt {time} and I am still processing it.",
        "After my attempt, the doctors kept me for observation.",
        "This is my second time recovering from an attempt.",
        "I tried to end my life once and barely made it through.",
        "Since the attempt, {support} has been checking on me.",
        "My family found me after the attempt and called for help.",
        "The attempt left me with injuries I am still healing from.",
        "I came close to dying by my own hand and it changed me.",
        "It has been six months since the attempt that nearly worked.",
    ),
}

#: Hard signal sentences deliberately reuse the *vocabulary of adjacent
#: classes* and put the class distinction into composition — negation,
#: third person, tense — which bag-of-words features cannot decode. The
#: fraction of hard sentences is the main difficulty dial of the corpus:
#: it opens the gap between order-blind models (TF-IDF + trees) and
#: order-aware ones (RNNs, transformers), as in the paper's Table III.
#: Each entry below is one *frame*: four surface realisations — one per
#: class — built from the SAME content-word multiset (the shared risk
#: phrase {rp}, a {person} reference, and the verbs think / prepare /
#: start / happen / survive / help). Only subject binding, negation
#: placement, and tense differ, and negations/pronouns are stopwords, so
#: a stopword-dropping unigram bag sees four (nearly) identical
#: distributions while any order-aware reader can recover the label.
_QUAD_FRAMES: tuple[dict[RiskLevel, str], ...] = (
    {
        RiskLevel.INDICATOR: (
            "{person} keeps thinking about {rp} and I do not know how to help them."
        ),
        RiskLevel.IDEATION: (
            "I keep thinking about {rp} and {person} does not know how to help me."
        ),
        RiskLevel.BEHAVIOR: (
            "I stopped only thinking about {rp}; {person} does not know I am past help."
        ),
        RiskLevel.ATTEMPT: (
            "I once went beyond thinking about {rp}; {person} knows, they had to help me."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "{person} started preparing for {rp}; it has not happened yet and I want to stop it."
        ),
        RiskLevel.IDEATION: (
            "I think about preparing for {rp}, but nothing has started or happened, whatever {person} fears."
        ),
        RiskLevel.BEHAVIOR: (
            "I started preparing for {rp}; it has not happened yet and {person} suspects nothing."
        ),
        RiskLevel.ATTEMPT: (
            "It happened, {rp}; I had started preparing long before {person} knew anything."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "{person} survived {rp} {time_season} and I am learning how to support them."
        ),
        RiskLevel.IDEATION: (
            "I wonder if I would survive {rp}; {time_season} the wondering began, and it stayed wondering."
        ),
        RiskLevel.BEHAVIOR: (
            "Whether I survive {rp} stopped being a question {time_season}; I began arranging it."
        ),
        RiskLevel.ATTEMPT: (
            "I survived {rp} {time_season}; it was real and I am still recovering from it."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "The plan for {rp} was {person}'s, never mine, and finding it out broke me."
        ),
        RiskLevel.IDEATION: (
            "There is no plan for {rp}, only the thought of it returning to me {time}."
        ),
        RiskLevel.BEHAVIOR: (
            "There is a plan for {rp} now, written by me {time}, and the thought has settled."
        ),
        RiskLevel.ATTEMPT: (
            "The plan for {rp} was carried out by me once; the thought of it returning scares {person}."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "Talking about {rp} is what {person} does every night; I listen and panic quietly."
        ),
        RiskLevel.IDEATION: (
            "Thinking about {rp} is what I do every night, though talking to {person} quiets the panic."
        ),
        RiskLevel.BEHAVIOR: (
            "Getting ready for {rp} is what I do every night now; talking to {person} stopped."
        ),
        RiskLevel.ATTEMPT: (
            "Recovering from {rp} is what I do every night since it happened; {person} stays close."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "Nothing about {rp} lives in my head; it lives in {person}'s, and I am scared for them."
        ),
        RiskLevel.IDEATION: (
            "{rp} lives in my head {time}, nothing more; {person} would be scared to know."
        ),
        RiskLevel.BEHAVIOR: (
            "{rp} moved out of my head and into {place} {time}; {person} would be scared to look."
        ),
        RiskLevel.ATTEMPT: (
            "{rp} left my head and became that night {time_season}; {person} was scared I was gone."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "I asked {person} if they were close to {rp} and their answer kept me up all night."
        ),
        RiskLevel.IDEATION: (
            "How close I feel to {rp} is something I cannot ask {person} to understand; it is only a feeling."
        ),
        RiskLevel.BEHAVIOR: (
            "How close I am to {rp} would stun {person}; the first steps are already behind me."
        ),
        RiskLevel.ATTEMPT: (
            "How close {rp} came to ending me is something {person} saw from the hospital chair."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "The note about {rp} I found was written by {person}, and I have not slept since."
        ),
        RiskLevel.IDEATION: (
            "No note about {rp} exists; I only compose it in my head when {person} is asleep."
        ),
        RiskLevel.BEHAVIOR: (
            "The note about {rp} exists now; I wrote it while {person} was asleep."
        ),
        RiskLevel.ATTEMPT: (
            "The note about {rp} was already written the night it happened; {person} found it after."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "Help arrived for {person} before {rp} could happen, and I am the one who called it."
        ),
        RiskLevel.IDEATION: (
            "Help feels pointless when {rp} is only a thought I carry; nothing has happened to {person} or me."
        ),
        RiskLevel.BEHAVIOR: (
            "Help would ruin what I have set in motion toward {rp}; {person} must not call anyone."
        ),
        RiskLevel.ATTEMPT: (
            "Help arrived too late to stop {rp} from happening to me, yet {person}'s call saved my life."
        ),
    },
    {
        RiskLevel.INDICATOR: (
            "Every step toward {rp} was taken by {person}, and I keep replaying how I missed it."
        ),
        RiskLevel.IDEATION: (
            "No step toward {rp} has been taken by me; the replaying happens only in my mind, {person} knows."
        ),
        RiskLevel.BEHAVIOR: (
            "Every step toward {rp} I planned is done except the last; {person} keeps missing the signs."
        ),
        RiskLevel.ATTEMPT: (
            "Every step toward {rp} was taken by me {time_season}; {person} keeps replaying how they missed it."
        ),
    },
)

HARD_SIGNAL_SENTENCES: dict[RiskLevel, tuple[str, ...]] = {
    level: tuple(frame[level] for frame in _QUAD_FRAMES) for level in RiskLevel
}

#: Titles follow the same pattern, shorter.
TITLE_TEMPLATES: dict[RiskLevel, tuple[str, ...]] = {
    RiskLevel.INDICATOR: (
        "Worried about {person}",
        "How to help {person}?",
        "Advice for supporting {person}",
        "Not for me, asking for {person}",
    ),
    RiskLevel.IDEATION: (
        "I do not want to wake up",
        "Tired of existing",
        "The thoughts will not stop",
        "Feeling {feeling} and done",
    ),
    RiskLevel.BEHAVIOR: (
        "I started preparing",
        "Wrote the note",
        "Relapsed into self harm",
        "Making arrangements",
    ),
    RiskLevel.ATTEMPT: (
        "After my attempt",
        "I survived",
        "Second attempt anniversary",
        "Back from the hospital",
    ),
}

#: Off-topic sentences used for the irrelevant posts the crawler also
#: returns (removed by the relevance filter in pre-processing).
OFFTOPIC_SENTENCES: tuple[str, ...] = (
    "Does anyone have recommendations for a budget laptop?",
    "Selling two concert tickets for this weekend, DM me.",
    "What is the best pizza place near {place}?",
    "Looking for a study group for the statistics final.",
    "My cat knocked over the router again, classic.",
    "Anyone else watching the game tonight?",
    "Promo code inside, check out this great deal!",
)

#: Noise fragments appended to some raw posts (removed by cleaning).
NOISE_FRAGMENTS: tuple[str, ...] = (
    " http://tracking.example.com/c?id=12345 ",
    " https://bit.ly/3abcXYZ ",
    " ​​​ ",
    " !!!!!!!!!! ",
    " ????????? ",
    " #help #advice #late",
    " [removed by editor] ",
    " visit www.spam-offer.example for deals ",
)


class SentenceSampler:
    """Samples filled-in sentences for a given risk level.

    Parameters
    ----------
    rng:
        Numpy random generator (stream-owned by the caller).
    lexical_strength:
        Probability that any given sentence is drawn from the class's
        signal bank rather than the neutral bank.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        lexical_strength: float,
        hard_fraction: float = 0.5,
        ambiguity_noise: float = 0.0,
    ) -> None:
        self._rng = rng
        self._lexical_strength = float(lexical_strength)
        self._hard_fraction = float(hard_fraction)
        self._ambiguity_noise = float(ambiguity_noise)

    def _noisy_level(self, level: RiskLevel) -> RiskLevel:
        """With prob ``ambiguity_noise``, drift to an adjacent severity level.

        Real posts mix language of neighbouring risk levels (people recall
        past states, hedge, or escalate mid-post); this is the corpus's
        irreducible-error dial.
        """
        if self._rng.random() >= self._ambiguity_noise:
            return level
        candidates = [
            RiskLevel(v)
            for v in (int(level) - 1, int(level) + 1)
            if 0 <= v <= 3
        ]
        return candidates[int(self._rng.integers(len(candidates)))]

    def fill(self, template: str) -> str:
        """Fill every ``{slot}`` in a template from :data:`SLOT_POOLS`."""
        out = template
        for _, slot, _, _ in string.Formatter().parse(template):
            if slot is None:
                continue
            pool = SLOT_POOLS[slot]
            value = pool[int(self._rng.integers(len(pool)))]
            out = out.replace("{" + slot + "}", value, 1)
        return out

    def sentence(self, level: RiskLevel) -> str:
        """One sentence: signal with prob ``lexical_strength``, else neutral.

        A signal sentence is *hard* (adjacent-class vocabulary, the label
        carried by composition only) with prob ``hard_fraction``.
        """
        if self._rng.random() < self._lexical_strength:
            emitted = self._noisy_level(level)
            if self._rng.random() < self._hard_fraction:
                bank = HARD_SIGNAL_SENTENCES[emitted]
            else:
                bank = SIGNAL_SENTENCES[emitted]
        else:
            bank = NEUTRAL_SENTENCES
        template = bank[int(self._rng.integers(len(bank)))]
        return self.fill(template)

    def title(self, level: RiskLevel) -> str:
        """A short title; carries *easy* signal with reduced probability
        (hard posts keep neutral titles so the title is not a shortcut)."""
        signal_p = self._lexical_strength * (1.0 - self._hard_fraction)
        if self._rng.random() < signal_p:
            bank = TITLE_TEMPLATES[level]
        else:
            bank = ("Need to get this off my chest", "Just venting", "A long post")
        template = bank[int(self._rng.integers(len(bank)))]
        return self.fill(template)

    def body(self, level: RiskLevel, num_sentences: int) -> str:
        """A body of ``num_sentences`` sentences for the risk level."""
        sentences = [self.sentence(level) for _ in range(max(1, num_sentences))]
        return " ".join(sentences)

    def offtopic(self) -> str:
        """An off-topic sentence (for crawl-pool noise)."""
        bank = OFFTOPIC_SENTENCES
        template = bank[int(self._rng.integers(len(bank)))]
        return self.fill(template)

    def noise(self) -> str:
        """A noise fragment (URL, zero-width chars, hashtag spam...)."""
        bank = NOISE_FRAGMENTS
        return bank[int(self._rng.integers(len(bank)))]
