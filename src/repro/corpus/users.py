"""User-level simulation: who posts, how often, when, and at what risk.

Each synthetic author carries a latent risk process — a Markov chain over
the four severity levels whose stationary distribution equals the corpus
label mix (Table I) — plus temporal habits (night-owl tendency, mean
inter-post gap) that are *coupled to severity* so temporal features carry
signal, as the paper's XGBoost feature-importance analysis reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schema import ALL_LEVELS, NUM_CLASSES, RiskLevel
from repro.corpus.models import UserProfile

#: Self-transition mass of the latent risk chain; the remainder is
#: redistributed according to the corpus label mix, which makes the mix the
#: chain's stationary distribution.
RISK_PERSISTENCE = 0.68


def risk_transition_matrix(label_mix: dict[RiskLevel, float]) -> np.ndarray:
    """Markov kernel ``P[i, j]`` with stationary distribution ``label_mix``.

    ``P = RISK_PERSISTENCE * I + (1 - RISK_PERSISTENCE) * 1·mixᵀ`` — a lazy
    chain that jumps to an independent draw from the mix. Any convex
    combination of the identity and a rank-one kernel with row ``mix`` has
    ``mix`` as its stationary distribution, while the identity part gives
    users *persistent* risk states so that histories look like slow
    evolutions rather than i.i.d. noise.
    """
    mix = np.array([label_mix[level] for level in ALL_LEVELS], dtype=float)
    mix = mix / mix.sum()
    kernel = RISK_PERSISTENCE * np.eye(NUM_CLASSES) + (1 - RISK_PERSISTENCE) * mix
    return kernel


def sample_posts_per_user(
    rng: np.random.Generator,
    num_users: int,
    target_total: int,
    max_posts: int = 200,
) -> np.ndarray:
    """Heavy-tailed posts-per-user counts summing ≈ ``target_total``.

    The paper's Fig. 1 shows most users with < 20 posts and a long tail of
    very active users. A discrete log-normal reproduces that shape; counts
    are then iteratively rescaled to land within one post per user of the
    requested total.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    if target_total < num_users:
        raise ValueError("target_total must be >= num_users (min 1 post each)")
    raw = rng.lognormal(mean=1.6, sigma=1.05, size=num_users)
    counts = np.clip(np.round(raw), 1, max_posts).astype(int)
    # Multiplicative correction toward the target, then exact trim/pad.
    for _ in range(8):
        total = counts.sum()
        if total == target_total:
            break
        factor = target_total / total
        counts = np.clip(np.round(counts * factor), 1, max_posts).astype(int)
    delta = int(target_total - counts.sum())
    order = rng.permutation(num_users)
    idx = 0
    while delta != 0 and idx < 4 * num_users:
        user = order[idx % num_users]
        if delta > 0 and counts[user] < max_posts:
            counts[user] += 1
            delta -= 1
        elif delta < 0 and counts[user] > 1:
            counts[user] -= 1
            delta += 1
        idx += 1
    return counts


def sample_profiles(
    rng: np.random.Generator,
    num_users: int,
    target_total: int,
    label_mix: dict[RiskLevel, float],
    temporal_strength: float,
) -> list[UserProfile]:
    """Draw the full population of user profiles.

    Severity couples to temporal habits with strength ``temporal_strength``:
    higher-risk users skew toward night posting and shorter gaps between
    posts, which is the signal the paper's temporal features exploit.
    """
    counts = sample_posts_per_user(rng, num_users, target_total)
    mix = np.array([label_mix[level] for level in ALL_LEVELS], dtype=float)
    mix = mix / mix.sum()
    base_levels = rng.choice(NUM_CLASSES, size=num_users, p=mix)
    profiles = []
    for i in range(num_users):
        level = RiskLevel(int(base_levels[i]))
        severity = level / (NUM_CLASSES - 1)  # 0..1
        night = float(
            np.clip(
                rng.beta(2, 5) + temporal_strength * 0.45 * severity, 0.0, 0.95
            )
        )
        # Baseline ~5 days between posts; severe users post more often.
        gap_hours = float(
            rng.lognormal(mean=np.log(120.0), sigma=0.5)
            * (1.0 - temporal_strength * 0.55 * severity)
        )
        profiles.append(
            UserProfile(
                author=f"user_{i:05d}",
                base_level=level,
                num_posts=int(counts[i]),
                night_owl=night,
                mean_gap_hours=max(2.0, gap_hours),
            )
        )
    return profiles


@dataclass
class RiskTrajectory:
    """Realisation of one user's latent risk chain across their posts."""

    levels: list[RiskLevel]

    @property
    def final(self) -> RiskLevel:
        return self.levels[-1]


def sample_trajectory(
    rng: np.random.Generator,
    profile: UserProfile,
    kernel: np.ndarray,
) -> RiskTrajectory:
    """Run the latent chain for ``profile.num_posts`` steps.

    The chain starts at the user's base level and evolves under
    ``kernel``; consecutive posts therefore tend to share a level, with
    occasional escalations/de-escalations — the "dynamic evolution of
    suicide risk" the dataset is designed to expose.
    """
    state = int(profile.base_level)
    levels = [RiskLevel(state)]
    for _ in range(profile.num_posts - 1):
        state = int(rng.choice(NUM_CLASSES, p=kernel[state]))
        levels.append(RiskLevel(state))
    return RiskTrajectory(levels=levels)


def sample_post_hours(
    rng: np.random.Generator, profile: UserProfile, n: int
) -> np.ndarray:
    """Hour-of-day for ``n`` posts, mixing a day peak and a night peak.

    With probability ``night_owl`` the post lands in a late-night window
    (23:00–04:00), otherwise in a daytime window centred mid-afternoon.
    """
    night = rng.random(n) < profile.night_owl
    day_hours = np.clip(rng.normal(15.0, 3.5, size=n), 6, 22)
    night_hours = (23.0 + rng.exponential(2.0, size=n)) % 24.0
    return np.where(night, night_hours, day_hours)


def sample_gaps_hours(
    rng: np.random.Generator,
    profile: UserProfile,
    trajectory: RiskTrajectory,
    temporal_strength: float,
) -> np.ndarray:
    """Inter-post gaps (hours); gaps shrink as the latent risk rises.

    Returns an array of length ``len(trajectory.levels) - 1``.
    """
    n = len(trajectory.levels) - 1
    if n <= 0:
        return np.zeros(0)
    severities = np.array([lvl / (NUM_CLASSES - 1) for lvl in trajectory.levels])
    shrink = 1.0 - temporal_strength * 0.6 * severities[1:]
    base = rng.lognormal(
        mean=np.log(profile.mean_gap_hours), sigma=0.8, size=n
    )
    return np.maximum(0.25, base * shrink)
