"""Annotation platform substrate, simulated annotators, and QC protocol."""

from repro.annotation.agreement import (
    cohen_kappa,
    fleiss_kappa,
    fleiss_kappa_from_annotations,
    interpret_kappa,
    percent_agreement,
    rating_matrix,
)
from repro.annotation.annotators import (
    ExpertSupervisor,
    Judgement,
    SimulatedAnnotator,
    confusion_matrix,
)
from repro.annotation.platform import (
    AnnotationTask,
    LabelingProject,
    TaskStatus,
)
from repro.annotation.process import (
    AnnotationCampaign,
    CampaignResult,
    DailyLog,
    TrainingReport,
    annotate_corpus,
)

__all__ = [
    "cohen_kappa",
    "fleiss_kappa",
    "fleiss_kappa_from_annotations",
    "interpret_kappa",
    "percent_agreement",
    "rating_matrix",
    "ExpertSupervisor",
    "Judgement",
    "SimulatedAnnotator",
    "confusion_matrix",
    "AnnotationTask",
    "LabelingProject",
    "TaskStatus",
    "AnnotationCampaign",
    "CampaignResult",
    "DailyLog",
    "TrainingReport",
    "annotate_corpus",
]
