"""A Label-Studio-like annotation platform substrate.

The paper deployed Label Studio (community edition, Docker, text
classification template) and had annotators connect over the network. The
substrate below reproduces the *workflow-relevant* surface of that stack:
projects hold tasks, tasks are assigned to annotators, submissions are
recorded per annotator, and the project can be exported in a
Label-Studio-compatible JSON shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.errors import AnnotationError
from repro.core.schema import RiskLevel
from repro.corpus.models import RedditPost


class TaskStatus(enum.Enum):
    """Lifecycle of a labelling task."""

    PENDING = "pending"
    IN_PROGRESS = "in_progress"
    ESCALATED = "escalated"
    COMPLETED = "completed"
    FLAGGED = "flagged"


@dataclass
class AnnotationTask:
    """One unit of labelling work.

    ``ambiguity`` is a simulation-only scalar in [0, 1] expressing how
    intrinsically hard the item is; it drives annotator disagreement and
    the uncertainty-reporting channel.
    """

    task_id: int
    post: RedditPost
    ambiguity: float = 0.0
    assigned_to: list[str] = field(default_factory=list)
    submissions: dict[str, RiskLevel] = field(default_factory=dict)
    escalated_by: list[str] = field(default_factory=list)
    status: TaskStatus = TaskStatus.PENDING
    final_label: RiskLevel | None = None
    resolution: str | None = None  # "single" | "vote" | "joint-decision" | "review"

    @property
    def num_submissions(self) -> int:
        return len(self.submissions)


class LabelingProject:
    """A project: ordered task queue plus submission bookkeeping."""

    def __init__(self, name: str, label_choices: Iterable[RiskLevel] = tuple(RiskLevel)):
        self.name = name
        self.label_choices = tuple(label_choices)
        self.tasks: dict[int, AnnotationTask] = {}
        self._next_id = 0

    # -- task management ---------------------------------------------------

    def add_task(self, post: RedditPost, ambiguity: float = 0.0) -> AnnotationTask:
        task = AnnotationTask(task_id=self._next_id, post=post, ambiguity=ambiguity)
        self.tasks[task.task_id] = task
        self._next_id += 1
        return task

    def add_tasks(
        self, posts: Iterable[RedditPost], ambiguities: Iterable[float] | None = None
    ) -> list[AnnotationTask]:
        posts = list(posts)
        if ambiguities is None:
            ambiguities = [0.0] * len(posts)
        else:
            ambiguities = list(ambiguities)
        if len(ambiguities) != len(posts):
            raise AnnotationError("one ambiguity per post required")
        return [self.add_task(p, a) for p, a in zip(posts, ambiguities)]

    def get(self, task_id: int) -> AnnotationTask:
        try:
            return self.tasks[task_id]
        except KeyError as exc:
            raise AnnotationError(f"unknown task id {task_id}") from exc

    def assign(self, task_id: int, annotator: str) -> None:
        task = self.get(task_id)
        if annotator not in task.assigned_to:
            task.assigned_to.append(annotator)
        if task.status == TaskStatus.PENDING:
            task.status = TaskStatus.IN_PROGRESS

    # -- submissions --------------------------------------------------------

    def submit(self, task_id: int, annotator: str, label: RiskLevel) -> None:
        task = self.get(task_id)
        if annotator not in task.assigned_to:
            raise AnnotationError(
                f"{annotator} is not assigned to task {task_id}"
            )
        task.submissions[annotator] = RiskLevel.from_any(label)

    def escalate(self, task_id: int, annotator: str) -> None:
        """Record an uncertainty report for a task."""
        task = self.get(task_id)
        if annotator not in task.assigned_to:
            raise AnnotationError(
                f"{annotator} is not assigned to task {task_id}"
            )
        if annotator not in task.escalated_by:
            task.escalated_by.append(annotator)
        task.status = TaskStatus.ESCALATED

    def finalise(
        self, task_id: int, label: RiskLevel, resolution: str
    ) -> None:
        task = self.get(task_id)
        task.final_label = RiskLevel.from_any(label)
        task.resolution = resolution
        task.status = TaskStatus.COMPLETED

    def flag(self, task_id: int) -> None:
        self.get(task_id).status = TaskStatus.FLAGGED

    # -- queries ------------------------------------------------------------

    def by_status(self, status: TaskStatus) -> list[AnnotationTask]:
        return [t for t in self.tasks.values() if t.status == status]

    @property
    def completed(self) -> list[AnnotationTask]:
        return self.by_status(TaskStatus.COMPLETED)

    @property
    def progress(self) -> float:
        if not self.tasks:
            return 1.0
        return len(self.completed) / len(self.tasks)

    # -- export ---------------------------------------------------------------

    def export(self) -> list[dict]:
        """Label-Studio-flavoured JSON export of completed tasks."""
        out = []
        for task in sorted(self.completed, key=lambda t: t.task_id):
            out.append(
                {
                    "id": task.task_id,
                    "data": {"text": task.post.text},
                    "annotations": [
                        {
                            "completed_by": annotator,
                            "result": [
                                {
                                    "type": "choices",
                                    "value": {"choices": [label.label]},
                                }
                            ],
                        }
                        for annotator, label in sorted(task.submissions.items())
                    ],
                    "meta": {
                        "final_label": task.final_label.label
                        if task.final_label is not None
                        else None,
                        "resolution": task.resolution,
                    },
                }
            )
        return out
