"""Inter-annotator agreement statistics.

Implements Fleiss' κ (the paper's §II-C1 metric, reported as 0.7206 on the
30% jointly-labelled subset), Cohen's κ for pairwise checks, and raw
percent agreement.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import AnnotationError
from repro.core.schema import NUM_CLASSES, RiskLevel


def rating_matrix(
    annotations: Sequence[Sequence[RiskLevel | int]],
    num_categories: int = NUM_CLASSES,
) -> np.ndarray:
    """Subject × category count matrix from per-subject rating lists.

    Each inner sequence holds the ratings that subject received (one per
    annotator). All subjects must have the same number of ratings for
    Fleiss' κ to be defined.
    """
    if not annotations:
        raise AnnotationError("no annotations supplied")
    n_raters = len(annotations[0])
    if n_raters < 2:
        raise AnnotationError("Fleiss' kappa requires >= 2 ratings per subject")
    matrix = np.zeros((len(annotations), num_categories), dtype=np.int64)
    for i, ratings in enumerate(annotations):
        if len(ratings) != n_raters:
            raise AnnotationError(
                f"subject {i} has {len(ratings)} ratings, expected {n_raters}"
            )
        for rating in ratings:
            matrix[i, int(rating)] += 1
    return matrix


def fleiss_kappa(matrix: np.ndarray) -> float:
    """Fleiss' κ from a subject × category count matrix.

    κ = (P̄ − P̄ₑ) / (1 − P̄ₑ), where P̄ is the mean observed pairwise
    agreement per subject and P̄ₑ the chance agreement implied by the
    marginal category proportions (Fleiss, 1971).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise AnnotationError("rating matrix must be 2-D")
    n_subjects, _ = matrix.shape
    raters_per_subject = matrix.sum(axis=1)
    if n_subjects == 0:
        raise AnnotationError("rating matrix is empty")
    n_raters = raters_per_subject[0]
    if not np.all(raters_per_subject == n_raters):
        raise AnnotationError("all subjects must have the same number of ratings")
    if n_raters < 2:
        raise AnnotationError("Fleiss' kappa requires >= 2 ratings per subject")

    p_j = matrix.sum(axis=0) / (n_subjects * n_raters)
    p_i = (np.square(matrix).sum(axis=1) - n_raters) / (n_raters * (n_raters - 1))
    p_bar = p_i.mean()
    p_e = float(np.square(p_j).sum())
    if np.isclose(p_e, 1.0):
        return 1.0  # degenerate: everyone always used one category
    return float((p_bar - p_e) / (1.0 - p_e))


def fleiss_kappa_from_annotations(
    annotations: Sequence[Sequence[RiskLevel | int]],
    num_categories: int = NUM_CLASSES,
) -> float:
    """Fleiss' κ straight from per-subject rating lists."""
    return fleiss_kappa(rating_matrix(annotations, num_categories))


def cohen_kappa(
    rater_a: Sequence[RiskLevel | int],
    rater_b: Sequence[RiskLevel | int],
    num_categories: int = NUM_CLASSES,
) -> float:
    """Cohen's κ between two raters over the same subjects."""
    if len(rater_a) != len(rater_b):
        raise AnnotationError("raters must label the same subjects")
    if not rater_a:
        raise AnnotationError("no annotations supplied")
    a = np.array([int(x) for x in rater_a])
    b = np.array([int(x) for x in rater_b])
    n = len(a)
    confusion = np.zeros((num_categories, num_categories), dtype=np.float64)
    for i, j in zip(a, b):
        confusion[i, j] += 1
    p_o = np.trace(confusion) / n
    p_e = float((confusion.sum(axis=1) / n) @ (confusion.sum(axis=0) / n))
    if np.isclose(p_e, 1.0):
        return 1.0
    return float((p_o - p_e) / (1.0 - p_e))


def percent_agreement(
    annotations: Sequence[Sequence[RiskLevel | int]],
) -> float:
    """Mean pairwise percent agreement across subjects."""
    if not annotations:
        raise AnnotationError("no annotations supplied")
    total, agreeing = 0, 0
    for ratings in annotations:
        ints = [int(r) for r in ratings]
        for i in range(len(ints)):
            for j in range(i + 1, len(ints)):
                total += 1
                agreeing += int(ints[i] == ints[j])
    if total == 0:
        raise AnnotationError("need >= 2 ratings per subject")
    return agreeing / total


def interpret_kappa(kappa: float) -> str:
    """Landis & Koch qualitative band for a κ value."""
    if kappa < 0.0:
        return "poor"
    if kappa <= 0.20:
        return "slight"
    if kappa <= 0.40:
        return "fair"
    if kappa <= 0.60:
        return "moderate"
    if kappa <= 0.80:
        return "substantial"
    return "almost perfect"
