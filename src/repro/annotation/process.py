"""The full annotation campaign of paper §II-B2/§II-C1, in simulation.

Protocol, exactly as described:

1. **Training gate** — 100 expert-annotated samples; each annotator must
   reach 95% accuracy, re-reviewing and re-annotating until they do.
2. **Main phase** — a 30% *joint* subset is labelled by all three
   annotators (for Fleiss' κ and 3-way voting); the remaining 70% is split
   between annotators and labelled independently.
3. **Uncertainty policy** — annotators escalate ambiguous items instead of
   guessing; escalated items are decided jointly by the supervisors at the
   end of each day.
4. **Voting** — on the joint subset, items without a 2-of-3 majority are
   flagged and resolved by expert review.
5. **Daily plan** — 500 items per annotator per day.
6. **Daily inspection** — experts re-check a random 10% of each day's
   output; the day passes only if accuracy ≥ 85%.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AnnotationConfig
from repro.core.errors import InspectionError, TrainingGateError
from repro.core.rng import SeedSequenceRegistry
from repro.core.schema import RiskLevel
from repro.corpus.models import RedditPost
from repro.annotation.agreement import fleiss_kappa_from_annotations
from repro.annotation.annotators import ExpertSupervisor, SimulatedAnnotator
from repro.annotation.platform import LabelingProject, TaskStatus


@dataclass
class TrainingReport:
    """Outcome of the pre-campaign training gate for one annotator."""

    annotator: str
    rounds: int
    final_accuracy: float


@dataclass
class DailyLog:
    """One simulated working day of the campaign."""

    day: int
    items_labelled: int
    items_escalated: int
    inspection_sample: int
    inspection_accuracy: float
    passed: bool
    remediated: bool = False  # day failed first inspection, expert-reviewed


@dataclass
class CampaignResult:
    """Everything the campaign produced."""

    labels: dict[str, RiskLevel]  # post_id -> final label
    joint_post_ids: list[str]
    kappa: float
    training_reports: list[TrainingReport]
    daily_logs: list[DailyLog]
    project: LabelingProject
    num_escalated: int
    num_flagged: int
    label_noise: float  # fraction of final labels differing from oracle

    @property
    def num_labelled(self) -> int:
        return len(self.labels)


class AnnotationCampaign:
    """Drives the simulated annotators through the full protocol."""

    def __init__(self, config: AnnotationConfig | None = None) -> None:
        self.config = config or AnnotationConfig()
        registry = SeedSequenceRegistry(self.config.seed).spawn("annotation")
        jitters = registry.get("jitter").normal(0.0, 0.015, self.config.num_annotators)
        self.annotators = [
            SimulatedAnnotator(
                name=f"annotator-{i + 1}",
                accuracy=self.config.annotator_accuracy,
                uncertainty_rate=self.config.uncertainty_rate,
                rng=registry.get(f"annotator-{i}"),
                skill_jitter=float(jitters[i]),
            )
            for i in range(self.config.num_annotators)
        ]
        self.supervisors = [
            ExpertSupervisor(f"supervisor-{i + 1}", registry.get(f"supervisor-{i}"))
            for i in range(self.config.num_supervisors)
        ]
        self._rng = registry.get("campaign")

    # -- protocol pieces ------------------------------------------------------

    def joint_decision(self, true_label: RiskLevel) -> RiskLevel:
        """Supervisors decide an item together (majority of expert votes)."""
        votes = Counter(s.decide(true_label) for s in self.supervisors)
        return votes.most_common(1)[0][0]

    def run_training_gate(
        self, training_posts: list[RedditPost]
    ) -> list[TrainingReport]:
        """Train annotators on expert-labelled samples until ≥ gate accuracy.

        Each failed round reviews the errors and re-annotates with boosted
        accuracy — in simulation, a round of
        :meth:`SimulatedAnnotator.relabel_after_review`.
        """
        gate = self.config.training_accuracy_gate
        reports = []
        gold = {p.post_id: p.oracle_label for p in training_posts}
        for annotator in self.annotators:
            rounds = 0
            accuracy = 0.0
            max_rounds = 24
            while rounds < max_rounds:
                rounds += 1
                correct = 0
                for post in training_posts:
                    true = gold[post.post_id]
                    if rounds == 1:
                        judgement = annotator.annotate(true, ambiguity=0.0)
                        produced = judgement.label
                        if produced is None:  # escalations resolve via experts
                            produced = self.joint_decision(true)
                    else:
                        produced = annotator.relabel_after_review(
                            true, review_rounds=rounds - 1
                        )
                    correct += int(produced == true)
                accuracy = correct / len(training_posts)
                if accuracy >= gate:
                    break
            else:  # pragma: no cover - defensive
                raise TrainingGateError(
                    f"{annotator.name} failed the training gate after "
                    f"{max_rounds} rounds (accuracy {accuracy:.3f})"
                )
            if accuracy < gate:
                raise TrainingGateError(
                    f"{annotator.name} failed the training gate "
                    f"(accuracy {accuracy:.3f} < {gate})"
                )
            reports.append(
                TrainingReport(
                    annotator=annotator.name, rounds=rounds, final_accuracy=accuracy
                )
            )
        return reports

    # -- main phase ------------------------------------------------------------

    def run(self, posts: list[RedditPost]) -> CampaignResult:
        """Execute the full campaign over annotated-slice posts.

        ``posts`` must carry oracle labels (the synthetic ground truth the
        simulated humans perceive).
        """
        labelled_posts = [p for p in posts if p.oracle_label is not None]
        if not labelled_posts:
            raise TrainingGateError("no posts with oracle labels to annotate")

        order = self._rng.permutation(len(labelled_posts))
        shuffled = [labelled_posts[int(i)] for i in order]

        n_training = min(self.config.training_samples, max(4, len(shuffled) // 10))
        training_posts = shuffled[:n_training]
        work_posts = shuffled  # training samples are also real data items

        training_reports = self.run_training_gate(training_posts)

        project = LabelingProject(name="rsd15k")
        ambiguities = np.clip(self._rng.beta(1.2, 10.0, len(work_posts)), 0, 1)
        tasks = project.add_tasks(work_posts, ambiguities)

        n_joint = int(round(self.config.joint_fraction * len(tasks)))
        joint_tasks = tasks[:n_joint]
        solo_tasks = tasks[n_joint:]

        # -- joint subset: all annotators label every item ----------------
        joint_ratings: list[list[RiskLevel]] = []
        num_flagged = 0
        for task in joint_tasks:
            true = task.post.oracle_label
            votes: list[RiskLevel] = []
            for annotator in self.annotators:
                project.assign(task.task_id, annotator.name)
                judgement = annotator.annotate(true, task.ambiguity)
                if judgement.uncertain:
                    project.escalate(task.task_id, annotator.name)
                else:
                    project.submit(task.task_id, annotator.name, judgement.label)
                    votes.append(judgement.label)
            if len(votes) == len(self.annotators):
                joint_ratings.append(list(votes))
            if len(votes) < 2:
                # Escalated by (almost) everyone: supervisors decide jointly.
                project.finalise(
                    task.task_id, self.joint_decision(true), "joint-decision"
                )
                continue
            counts = Counter(votes)
            label, support = counts.most_common(1)[0]
            if support >= 2:
                project.finalise(task.task_id, label, "vote")
            else:
                # No 2-of-3 majority: flag for special review (expert).
                project.flag(task.task_id)
                num_flagged += 1
                project.finalise(task.task_id, self.joint_decision(true), "review")

        # -- solo subset: round-robin assignment, daily quota + inspection -
        daily_logs = self._run_solo_phase(project, solo_tasks)

        kappa = (
            fleiss_kappa_from_annotations(joint_ratings) if joint_ratings else 0.0
        )

        labels = {
            t.post.post_id: t.final_label
            for t in project.completed
            if t.final_label is not None
        }
        noise = float(
            np.mean(
                [
                    int(labels[t.post.post_id] != t.post.oracle_label)
                    for t in project.completed
                ]
            )
        )
        num_escalated = sum(a.items_escalated for a in self.annotators)
        return CampaignResult(
            labels=labels,
            joint_post_ids=[t.post.post_id for t in joint_tasks],
            kappa=kappa,
            training_reports=training_reports,
            daily_logs=daily_logs,
            project=project,
            num_escalated=num_escalated,
            num_flagged=num_flagged,
            label_noise=noise,
        )

    def _run_solo_phase(self, project, solo_tasks) -> list[DailyLog]:
        """70% independent labelling under the daily plan and inspections."""
        cfg = self.config
        daily_logs: list[DailyLog] = []
        per_day = cfg.daily_quota * len(self.annotators)
        num_days = max(1, math.ceil(len(solo_tasks) / per_day))
        inspector_rng = self._rng
        for day in range(num_days):
            day_tasks = solo_tasks[day * per_day : (day + 1) * per_day]
            if not day_tasks:
                break
            escalated_today = 0
            produced: list[tuple[int, RiskLevel, RiskLevel]] = []
            for i, task in enumerate(day_tasks):
                annotator = self.annotators[i % len(self.annotators)]
                true = task.post.oracle_label
                project.assign(task.task_id, annotator.name)
                judgement = annotator.annotate(true, task.ambiguity)
                if judgement.uncertain:
                    project.escalate(task.task_id, annotator.name)
                    decided = self.joint_decision(true)
                    project.finalise(task.task_id, decided, "joint-decision")
                    escalated_today += 1
                    produced.append((task.task_id, decided, true))
                else:
                    project.submit(task.task_id, annotator.name, judgement.label)
                    project.finalise(task.task_id, judgement.label, "single")
                    produced.append((task.task_id, judgement.label, true))
            # Daily inspection: experts re-check a random 10% of the day.
            sample_size = max(1, int(round(cfg.inspection_fraction * len(produced))))
            picks = inspector_rng.choice(len(produced), sample_size, replace=False)
            correct = sum(
                int(produced[int(k)][1] == produced[int(k)][2]) for k in picks
            )
            inspection_accuracy = correct / sample_size
            remediated = False
            if inspection_accuracy < cfg.inspection_accuracy_gate:
                # Failed inspection: the whole day is jointly re-reviewed
                # by the supervisors, then re-inspected.
                remediated = True
                reviewed = []
                for task_id, _, true in produced:
                    decided = self.joint_decision(true)
                    project.finalise(task_id, decided, "review")
                    reviewed.append((task_id, decided, true))
                produced = reviewed
                picks = inspector_rng.choice(
                    len(produced), sample_size, replace=False
                )
                correct = sum(
                    int(produced[int(k)][1] == produced[int(k)][2])
                    for k in picks
                )
                inspection_accuracy = correct / sample_size
            passed = inspection_accuracy >= cfg.inspection_accuracy_gate
            daily_logs.append(
                DailyLog(
                    day=day + 1,
                    items_labelled=len(produced) - escalated_today,
                    items_escalated=escalated_today,
                    inspection_sample=sample_size,
                    inspection_accuracy=inspection_accuracy,
                    passed=passed,
                    remediated=remediated,
                )
            )
            if not passed:  # pragma: no cover - expert review restores quality
                raise InspectionError(
                    f"day {day + 1} inspection failed even after review: "
                    f"{inspection_accuracy:.3f} < {cfg.inspection_accuracy_gate}"
                )
        return daily_logs


def annotate_corpus(
    posts: list[RedditPost], config: AnnotationConfig | None = None
) -> CampaignResult:
    """Run the full simulated campaign over a post list."""
    return AnnotationCampaign(config).run(posts)
