"""Simulated annotators with psychologically plausible error structure.

Each annotator carries a per-class confusion matrix: when they err, they
err preferentially toward *adjacent* severity levels (Ideation is confused
with Behavior far more often than with Attempt), which is what drives
realistic — rather than uniform-noise — disagreement patterns and hence a
realistic Fleiss' κ.

Annotators also have an *uncertainty* channel: ambiguous items are left
unlabelled and reported to the supervisors (the paper's uncertainty
reporting policy), instead of being guessed at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schema import NUM_CLASSES, RiskLevel

#: Relative propensity of confusing class i with class j (off-diagonal),
#: decaying with severity distance.
ADJACENCY_DECAY = 0.35


def confusion_matrix(accuracy: float, skill_jitter: float = 0.0) -> np.ndarray:
    """Row-stochastic confusion matrix with the given diagonal accuracy.

    Off-diagonal mass decays geometrically with the distance between
    severity levels: ``P(j | i) ∝ ADJACENCY_DECAY**(|i-j|-1)`` for j ≠ i.
    ``skill_jitter`` perturbs the diagonal per class (clipped to [0.5, 1)).
    """
    if not 0.0 < accuracy <= 1.0:
        raise ValueError(f"accuracy must be in (0, 1], got {accuracy}")
    matrix = np.zeros((NUM_CLASSES, NUM_CLASSES))
    for i in range(NUM_CLASSES):
        diag = float(np.clip(accuracy + skill_jitter, 0.5, 0.999))
        weights = np.array(
            [
                0.0 if j == i else ADJACENCY_DECAY ** (abs(i - j) - 1)
                for j in range(NUM_CLASSES)
            ]
        )
        weights = weights / weights.sum() * (1.0 - diag)
        matrix[i] = weights
        matrix[i, i] = diag
    return matrix


@dataclass
class Judgement:
    """Outcome of asking one annotator about one item."""

    label: RiskLevel | None  # None = reported as uncertain
    uncertain: bool


class SimulatedAnnotator:
    """One annotator: a name, a confusion matrix, an uncertainty habit.

    Parameters
    ----------
    name:
        Display name (e.g. ``"annotator-1"``).
    accuracy:
        Probability of producing the true label on unambiguous items.
    uncertainty_rate:
        Probability of escalating an item via the uncertainty policy
        instead of labelling it. Scaled up on high-ambiguity items.
    rng:
        Private random stream.
    """

    def __init__(
        self,
        name: str,
        accuracy: float,
        uncertainty_rate: float,
        rng: np.random.Generator,
        skill_jitter: float = 0.0,
    ) -> None:
        self.name = name
        self.accuracy = accuracy
        self.uncertainty_rate = uncertainty_rate
        self._rng = rng
        self._confusion = confusion_matrix(accuracy, skill_jitter)
        self.items_labelled = 0
        self.items_escalated = 0

    def annotate(self, true_label: RiskLevel, ambiguity: float = 0.0) -> Judgement:
        """Label one item whose simulation ground truth is ``true_label``.

        ``ambiguity`` in [0, 1] raises both the escalation probability and
        the error rate: truly ambiguous posts are precisely the ones
        annotators disagree on and report upward.
        """
        escalate_p = min(0.95, self.uncertainty_rate * (1.0 + 6.0 * ambiguity))
        if self._rng.random() < escalate_p:
            self.items_escalated += 1
            return Judgement(label=None, uncertain=True)
        row = self._confusion[int(true_label)].copy()
        if ambiguity > 0:
            # Ambiguity flattens the judgement distribution.
            row = (1.0 - 0.5 * ambiguity) * row + 0.5 * ambiguity / NUM_CLASSES
            row = row / row.sum()
        choice = int(self._rng.choice(NUM_CLASSES, p=row))
        self.items_labelled += 1
        return Judgement(label=RiskLevel(choice), uncertain=False)

    def relabel_after_review(
        self, true_label: RiskLevel, review_rounds: int = 1
    ) -> RiskLevel:
        """Label again after expert feedback.

        Each review round halves the residual error rate, so repeated
        review-and-reannotate cycles converge past any accuracy gate —
        matching the paper's "this process continues until the accuracy
        reaches 95%".
        """
        residual = (1.0 - self.accuracy) * 0.5 ** max(1, review_rounds)
        boosted = min(0.998, 1.0 - residual)
        if self._rng.random() < boosted:
            return true_label
        row = self._confusion[int(true_label)].copy()
        row[int(true_label)] = 0.0
        row = row / row.sum()
        return RiskLevel(int(self._rng.choice(NUM_CLASSES, p=row)))


class ExpertSupervisor:
    """A supervisor/expert: near-oracle accuracy, used for gold standards,
    joint decisions on escalated items, and daily inspections."""

    def __init__(self, name: str, rng: np.random.Generator, accuracy: float = 0.985):
        self.name = name
        self.accuracy = accuracy
        self._rng = rng

    def decide(self, true_label: RiskLevel) -> RiskLevel:
        """Expert judgement on an item (joint supervisor decision)."""
        if self._rng.random() < self.accuracy:
            return true_label
        others = [l for l in RiskLevel if l != true_label]
        return others[int(self._rng.integers(len(others)))]
