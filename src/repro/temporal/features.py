"""Temporal behaviour features (XGBoost time dimension).

The paper's feature-importance analysis found time features most
predictive: "the change pattern of posting time intervals and the
proportion of nighttime posts". This module computes those statistics from
a chronological post history.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from datetime import datetime

import numpy as np

from repro.corpus.models import RedditPost

NIGHT_START_HOUR = 23
NIGHT_END_HOUR = 5

SECONDS_PER_HOUR = 3600.0


def is_night(when: datetime) -> bool:
    """Whether a timestamp falls in the 23:00–05:00 night window."""
    hour = when.hour
    return hour >= NIGHT_START_HOUR or hour < NIGHT_END_HOUR


def gaps_hours(timestamps: list[datetime]) -> np.ndarray:
    """Successive inter-post gaps in hours (length n-1)."""
    if len(timestamps) < 2:
        return np.zeros(0)
    ts = np.array([t.timestamp() for t in timestamps])
    return np.diff(ts) / SECONDS_PER_HOUR


@dataclass(frozen=True)
class TemporalStats:
    """Temporal features of one posting history."""

    num_posts: float
    span_days: float
    mean_gap_hours: float
    std_gap_hours: float
    min_gap_hours: float
    max_gap_hours: float
    gap_trend: float  # slope of gap vs index: negative = accelerating
    burstiness: float  # (σ−μ)/(σ+μ) of gaps, in [−1, 1]
    night_ratio: float
    weekend_ratio: float
    hour_entropy: float
    posts_per_week: float
    recent_gap_ratio: float  # last gap / mean gap (posting acceleration)

    def as_vector(self) -> np.ndarray:
        return np.array(
            [getattr(self, f.name) for f in fields(self)], dtype=np.float64
        )

    @classmethod
    def feature_names(cls) -> list[str]:
        return [f.name for f in fields(cls)]


def temporal_stats(posts: list[RedditPost]) -> TemporalStats:
    """Compute :class:`TemporalStats` over a chronological post list."""
    n = len(posts)
    if n == 0:
        zero = {f.name: 0.0 for f in fields(TemporalStats)}
        return TemporalStats(**zero)
    times = [p.created_utc for p in posts]
    gaps = gaps_hours(times)
    span_days = (
        (times[-1].timestamp() - times[0].timestamp()) / 86_400.0 if n > 1 else 0.0
    )
    hours = np.array([t.hour for t in times])
    hist = np.bincount(hours, minlength=24).astype(float)
    probs = hist / hist.sum()
    nonzero = probs[probs > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())

    if gaps.size:
        mean_gap = float(gaps.mean())
        std_gap = float(gaps.std())
        trend = (
            float(np.polyfit(np.arange(gaps.size), gaps, 1)[0])
            if gaps.size >= 2
            else 0.0
        )
        denom = std_gap + mean_gap
        burst = float((std_gap - mean_gap) / denom) if denom > 0 else 0.0
        recent_ratio = float(gaps[-1] / mean_gap) if mean_gap > 0 else 0.0
    else:
        mean_gap = std_gap = trend = burst = recent_ratio = 0.0

    return TemporalStats(
        num_posts=float(n),
        span_days=span_days,
        mean_gap_hours=mean_gap,
        std_gap_hours=std_gap,
        min_gap_hours=float(gaps.min()) if gaps.size else 0.0,
        max_gap_hours=float(gaps.max()) if gaps.size else 0.0,
        gap_trend=trend,
        burstiness=burst,
        night_ratio=float(np.mean([is_night(t) for t in times])),
        weekend_ratio=float(np.mean([t.weekday() >= 5 for t in times])),
        hour_entropy=entropy,
        posts_per_week=n / max(span_days / 7.0, 1.0 / 7.0),
        recent_gap_ratio=recent_ratio,
    )
