"""Temporal stack: behaviour statistics, dense encodings, windows."""

from repro.temporal.encoding import (
    TimeEncoder,
    cumulative_encoding,
    interval_encoding,
    periodic_encoding,
    time_tags,
)
from repro.temporal.features import (
    TemporalStats,
    gaps_hours,
    is_night,
    temporal_stats,
)
from repro.temporal.windows import PostWindow, build_window, build_windows

__all__ = [
    "TimeEncoder",
    "cumulative_encoding",
    "interval_encoding",
    "periodic_encoding",
    "time_tags",
    "TemporalStats",
    "gaps_hours",
    "is_night",
    "temporal_stats",
    "PostWindow",
    "build_window",
    "build_windows",
]
