"""Dense temporal encodings for neural models (paper §III-A2/4/5).

Three encoding families are shared by the BiLSTM, HiGRU, RoBERTa and
DeBERTa baselines:

* **periodic** — sin/cos pairs for hour-of-day, day-of-week, day-of-month
  and month-of-year cycles;
* **interval** — log-bucketed gap to the previous post;
* **cumulative** — position in the history and time since the first post;

plus the binary **time tags** (night posting, weekend) the DeBERTa variant
adds.
"""

from __future__ import annotations

from datetime import datetime

import numpy as np

from repro.corpus.models import RedditPost
from repro.temporal.features import is_night

#: (name, period, extractor) for the periodic channels.
_PERIODIC = (
    ("hour", 24.0, lambda t: t.hour + t.minute / 60.0),
    ("weekday", 7.0, lambda t: float(t.weekday())),
    ("monthday", 31.0, lambda t: float(t.day - 1)),
    ("month", 12.0, lambda t: float(t.month - 1)),
)

#: Gap buckets in hours: <1h, <6h, <1d, <3d, <1w, <1mo, ≥1mo.
_GAP_EDGES_HOURS = np.array([1.0, 6.0, 24.0, 72.0, 168.0, 720.0])


def periodic_encoding(when: datetime) -> np.ndarray:
    """Sin/cos features for all periodic channels (length 8)."""
    out = []
    for _, period, extract in _PERIODIC:
        angle = 2.0 * np.pi * extract(when) / period
        out.extend((np.sin(angle), np.cos(angle)))
    return np.array(out, dtype=np.float64)


def interval_encoding(gap_hours: float) -> np.ndarray:
    """One-hot gap bucket plus the log-gap scalar (length 8)."""
    bucket = int(np.searchsorted(_GAP_EDGES_HOURS, max(0.0, gap_hours)))
    onehot = np.zeros(len(_GAP_EDGES_HOURS) + 1)
    onehot[bucket] = 1.0
    return np.concatenate([onehot, [np.log1p(max(0.0, gap_hours))]])


def cumulative_encoding(index: int, total: int, hours_since_first: float) -> np.ndarray:
    """Position-in-history and elapsed-time features (length 3)."""
    frac = index / max(1, total - 1) if total > 1 else 1.0
    return np.array(
        [frac, np.log1p(index), np.log1p(hours_since_first)], dtype=np.float64
    )


def time_tags(when: datetime) -> np.ndarray:
    """Binary night-posting and weekend tags (length 2)."""
    return np.array(
        [float(is_night(when)), float(when.weekday() >= 5)], dtype=np.float64
    )


class TimeEncoder:
    """Per-post temporal feature vectors for a chronological window.

    Parameters
    ----------
    include_tags:
        Append the DeBERTa-style binary tags (night / weekend).

    The output dimension is exposed as :attr:`dim` so models can size
    their temporal projection layers.
    """

    def __init__(self, include_tags: bool = True) -> None:
        self.include_tags = include_tags
        # periodic 8 + interval 8 (7 buckets + log) + cumulative 3 (+ tags 2)
        self.dim = 8 + (len(_GAP_EDGES_HOURS) + 2) + 3 + (2 if include_tags else 0)

    def encode_window(self, posts: list[RedditPost]) -> np.ndarray:
        """(len(posts), dim) matrix of temporal features."""
        if not posts:
            return np.zeros((0, self.dim))
        first_ts = posts[0].created_utc.timestamp()
        rows = []
        prev_ts: float | None = None
        for i, post in enumerate(posts):
            ts = post.created_utc.timestamp()
            gap_hours = 0.0 if prev_ts is None else (ts - prev_ts) / 3600.0
            parts = [
                periodic_encoding(post.created_utc),
                interval_encoding(gap_hours),
                cumulative_encoding(i, len(posts), (ts - first_ts) / 3600.0),
            ]
            if self.include_tags:
                parts.append(time_tags(post.created_utc))
            rows.append(np.concatenate(parts))
            prev_ts = ts
        return np.vstack(rows)
