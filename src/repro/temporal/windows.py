"""User-level prediction windows.

The benchmark task (paper §III): "the suicide risk level of the user's
latest post is used as the user's label", and models see the user's
sequential posts inside a time window — "the stable version has 5 window
elements".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WindowConfig
from repro.core.errors import DatasetError
from repro.core.schema import RiskLevel
from repro.corpus.models import RedditPost, UserHistory
from repro.preprocess.partition import slice_window


@dataclass(frozen=True)
class PostWindow:
    """One user-level sample: a chronological window plus its label."""

    author: str
    posts: tuple[RedditPost, ...]
    label: RiskLevel

    @property
    def texts(self) -> list[str]:
        return [p.text for p in self.posts]

    @property
    def latest(self) -> RedditPost:
        return self.posts[-1]

    def __len__(self) -> int:
        return len(self.posts)


def build_window(
    history: UserHistory,
    config: WindowConfig | None = None,
    label: RiskLevel | None = None,
) -> PostWindow:
    """Window of a user's most recent posts; label = latest post's label.

    Parameters
    ----------
    label:
        Override label (e.g. the campaign's final label for the latest
        post). Defaults to the latest post's oracle label.
    """
    config = config or WindowConfig()
    posts = slice_window(
        history, max_posts=config.size, max_span_days=config.max_span_days
    )
    if not posts:
        raise DatasetError(f"user {history.author} has no posts in window")
    final = label if label is not None else posts[-1].oracle_label
    if final is None:
        raise DatasetError(
            f"latest post of {history.author} carries no label"
        )
    return PostWindow(
        author=history.author, posts=tuple(posts), label=RiskLevel.from_any(final)
    )


def build_windows(
    histories: dict[str, UserHistory],
    config: WindowConfig | None = None,
    labels: dict[str, RiskLevel] | None = None,
) -> list[PostWindow]:
    """Windows for every user, sorted by author for determinism.

    Parameters
    ----------
    labels:
        Optional post_id → label mapping (campaign output); the window
        label is then the mapped label of the latest post.
    """
    windows = []
    for author in sorted(histories):
        history = histories[author]
        override = None
        if labels is not None:
            posts = slice_window(
                history,
                max_posts=(config or WindowConfig()).size,
                max_span_days=(config or WindowConfig()).max_span_days,
            )
            if not posts:
                continue
            override = labels.get(posts[-1].post_id)
            if override is None:
                continue  # latest post was not labelled; skip user
        windows.append(build_window(history, config, label=override))
    return windows
