"""High-throughput inference engine over any registry risk model.

The serving workload (ROADMAP north star: "heavy traffic from millions
of users") is dominated by repeated small scoring requests. Scoring one
window at a time wastes almost all of its wall clock on per-call
overhead — python dispatch, feature/tokenization setup, tiny gemms. The
:class:`InferenceEngine` closes that gap three ways:

* **dynamic micro-batching** — asynchronous ``submit`` requests queue up
  and a batcher thread coalesces them into batches of up to
  ``max_batch_size``, waiting at most ``max_wait_s`` after the first
  request so latency stays bounded under light load; ``num_workers``
  threads execute the coalesced batches (BLAS releases the GIL, so
  workers overlap on multi-core hosts);
* **a bounded LRU tokenization cache** — users repost and windows
  overlap, so per-post token encodings are memoised (and bounded, unlike
  a bare dict, so long-running processes don't leak);
* **a synchronous ``predict_many`` fast path** — bulk scoring skips the
  queue entirely and feeds size-capped batches straight to the model.

All scoring runs under :func:`repro.nn.no_grad`, and every stage is
instrumented through ``repro.perf``: ``serve.*`` spans/counters, gauges
(queue depth, in-flight batches, tokenization-cache occupancy),
per-request latency/queue-wait histograms, and — on the async path — a
full lifecycle *trace* per request (enqueue → batch_assembly →
tokenize → forward → scatter → complete) kept in a bounded ring buffer,
with requests over ``slow_threshold_s`` appended to a JSONL slow log.
See ``docs/observability.md``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro import perf
from repro.core.errors import ModelError
from repro.core.lru import LRUCache
from repro.models.base import RiskModel
from repro.nn import no_grad
from repro.perf.tracing import Trace, Tracer
from repro.temporal.windows import PostWindow

__all__ = ["EngineConfig", "InferenceEngine"]

_SHUTDOWN = object()


@dataclass(frozen=True)
class EngineConfig:
    """Serving knobs.

    max_batch_size:
        Upper bound on coalesced batch size (both paths).
    max_wait_s:
        How long the micro-batcher waits for stragglers after the first
        queued request before dispatching a partial batch.
    tokenization_cache_size:
        LRU budget (distinct post texts) for the tokenization cache.
    num_workers:
        Threads executing coalesced batches. BLAS kernels release the
        GIL, so >1 overlaps batch compute under concurrent traffic.
    tracing:
        Trace every async request's lifecycle (six timestamped events)
        and feed the per-request latency/queue-wait histograms. Cheap
        enough to leave on (see BENCH_PR3.json); disable only to shave
        the last percent off a bulk benchmark.
    trace_ring_size:
        How many finished traces the in-memory ring retains.
    slow_threshold_s:
        Requests at/over this end-to-end latency are counted as slow
        and appended to ``slow_log_path``.
    slow_log_path:
        JSONL file receiving slow-request traces; ``None`` disables the
        file (slow requests are still counted and ring-buffered).
    """

    max_batch_size: int = 32
    max_wait_s: float = 0.005
    tokenization_cache_size: int = 8192
    num_workers: int = 1
    tracing: bool = True
    trace_ring_size: int = 256
    slow_threshold_s: float = 1.0
    slow_log_path: str | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.trace_ring_size < 1:
            raise ValueError("trace_ring_size must be >= 1")
        if self.slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be >= 0")


class InferenceEngine:
    """Batched scoring front-end for a fitted :class:`RiskModel`.

    Usage
    -----
    >>> engine = InferenceEngine(model, EngineConfig(max_batch_size=64))
    >>> probs = engine.predict_many(windows)          # sync bulk path
    >>> future = engine.submit(window)                # async micro-batched
    >>> future.result()                               # (C,) probabilities
    >>> engine.close()

    The engine is also a context manager; ``close()`` drains the queue,
    stops the batcher thread and uninstalls the tokenization cache.
    """

    def __init__(
        self,
        model: RiskModel,
        config: EngineConfig | None = None,
    ) -> None:
        if not getattr(model, "_fitted", False):
            raise ModelError("InferenceEngine requires a fitted model")
        self.model = model
        self.config = config or EngineConfig()
        self.tokenization_cache = LRUCache(self.config.tokenization_cache_size)
        self.tracer = Tracer(
            ring_size=self.config.trace_ring_size,
            slow_threshold_s=self.config.slow_threshold_s,
            slow_log_path=self.config.slow_log_path,
        )
        self._queue: queue.Queue = queue.Queue()
        self._batch_queue: queue.Queue = queue.Queue()
        self._closed = False
        self._batches = 0
        self._batched_items = 0
        self._in_flight = 0
        self._lock = threading.Lock()
        self._original_encode = None
        self._install_tokenization_cache()
        self._batcher = threading.Thread(
            target=self._batch_loop, name="serve-batcher", daemon=True
        )
        self._batcher.start()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(self.config.num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- tokenization cache ------------------------------------------------

    def _install_tokenization_cache(self) -> None:
        """Memoise the model pipeline's per-post encoder through the LRU.

        Neural models re-encode every post text on each predict call;
        under serving traffic the same texts recur (overlapping windows,
        reposts), so encoding is cached keyed on the raw text. Feature
        models without a ``pipeline.encode_post`` are left untouched.
        """
        pipeline = getattr(self.model, "pipeline", None)
        encode = getattr(pipeline, "encode_post", None)
        if encode is None:
            return
        cache = self.tokenization_cache

        def cached_encode_post(text: str) -> list[int]:
            hit = cache.get(text)
            if hit is not None:
                perf.count("serve.tokenize.hits")
                return list(hit)
            ids = encode(text)
            cache.put(text, tuple(ids))
            perf.count("serve.tokenize.misses")
            return ids

        pipeline.encode_post = cached_encode_post
        # Runs from __init__, before the batcher/worker threads exist;
        # locking here would imply a concurrency that cannot happen yet.
        self._original_encode = (pipeline, encode)  # repro: noqa[REPRO-LOCK]

    def _uninstall_tokenization_cache(self) -> None:
        if self._original_encode is not None:
            pipeline, _ = self._original_encode
            try:
                del pipeline.encode_post  # remove the instance shadow
            except AttributeError:
                pass
            self._original_encode = None

    # -- synchronous bulk path ---------------------------------------------

    def predict_many(self, windows: list[PostWindow]) -> np.ndarray:
        """(N, C) probabilities for ``windows``, batched, queue-free."""
        self._ensure_open()
        if not windows:
            return self.model.predict_proba([])
        size = self.config.max_batch_size
        out = []
        with perf.span("serve.predict_many"):
            with no_grad():
                for start in range(0, len(windows), size):
                    chunk = windows[start : start + size]
                    out.append(self.model.predict_proba(chunk))
                    self._record_batch(len(chunk))
        perf.count("serve.requests", len(windows))
        return np.vstack(out)

    def predict_labels(self, windows: list[PostWindow]) -> np.ndarray:
        """Greedy labels via the batched probability path."""
        probs = self.predict_many(windows)
        return probs.argmax(axis=1).astype(np.int64)

    # -- asynchronous micro-batched path -----------------------------------

    def submit(self, window: PostWindow) -> Future:
        """Queue one window; resolves to its (C,) probability vector.

        When tracing is on, the request's trace is exposed as
        ``future.trace`` so callers can correlate results with their
        lifecycle timings.
        """
        self._ensure_open()
        future: Future = Future()
        trace: Trace | None = None
        if self.config.tracing:
            trace = self.tracer.start()
            trace.event("enqueue")
            future.trace = trace  # type: ignore[attr-defined]
        self._queue.put((window, future, trace))
        perf.count("serve.requests")
        perf.gauge("serve.queue_depth", self._queue.qsize())
        return future

    def predict_one(self, window: PostWindow, timeout: float | None = None):
        """Blocking single-window scoring through the micro-batcher."""
        return self.submit(window).result(timeout=timeout)

    def _batch_loop(self) -> None:
        cfg = self.config
        while True:
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if item is _SHUTDOWN:
                return
            batch = [item]
            deadline = time.perf_counter() + cfg.max_wait_s
            while len(batch) < cfg.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    extra = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    self._dispatch(batch)
                    return
                batch.append(extra)
            self._dispatch(batch)

    def _dispatch(self, batch: list) -> None:
        """Hand an assembled batch to the workers, stamping traces."""
        now = time.perf_counter()
        for _, _, trace in batch:
            if trace is not None:
                trace.event("batch_assembly", now)
        with self._lock:
            self._in_flight += 1
            in_flight = self._in_flight
        perf.gauge("serve.in_flight_batches", in_flight)
        perf.gauge("serve.queue_depth", self._queue.qsize())
        self._batch_queue.put(batch)

    def _worker_loop(self) -> None:
        while True:
            batch = self._batch_queue.get()
            if batch is _SHUTDOWN:
                return
            self._run_batch(batch)

    def _stamp(self, batch: list, name: str) -> None:
        now = time.perf_counter()
        for _, _, trace in batch:
            if trace is not None:
                trace.event(name, now)

    def _run_batch(
        self, batch: list[tuple[PostWindow, Future, Trace | None]]
    ) -> None:
        windows = [window for window, _, _ in batch]
        try:
            with perf.span("serve.batch"):
                with no_grad():
                    self._stamp(batch, "tokenize")
                    if self.config.tracing:
                        self._warm_tokenization(windows)
                    self._stamp(batch, "forward")
                    probs = self.model.predict_proba(windows)
            self._stamp(batch, "scatter")
            self._record_batch(len(batch))
            for (_, future, _), row in zip(batch, probs):
                future.set_result(row)
            self._finish_traces(batch, len(batch))
        except Exception as exc:  # propagate to every waiter
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            self._stamp(batch, "error")
            self._finish_traces(batch, len(batch))
        finally:
            with self._lock:
                self._in_flight -= 1
                in_flight = self._in_flight
            perf.gauge("serve.in_flight_batches", in_flight)

    def _warm_tokenization(self, windows: list[PostWindow]) -> None:
        """Pre-encode through the memoised per-post encoder.

        Separates the tokenize phase from the forward pass for tracing:
        the inner ``predict_proba`` re-encode then hits the LRU, so the
        work is done once either way. Feature models without a pipeline
        encoder skip this (their tokenize→forward gap reads ~0).
        """
        pipeline = getattr(self.model, "pipeline", None)
        encode = getattr(pipeline, "encode", None)
        if encode is not None:
            encode(windows)

    def _finish_traces(self, batch: list, batch_size: int) -> None:
        for _, _, trace in batch:
            if trace is None:
                continue
            trace.event("complete")
            trace.metadata["batch_size"] = batch_size
            self.tracer.finish(trace)
            perf.observe("serve.request.latency_seconds", trace.total_s)
            perf.observe(
                "serve.request.queue_wait_seconds", trace.queue_wait_s
            )

    def _record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_items += size
        perf.count("serve.batches")
        perf.count("serve.batched_items", size)
        perf.gauge(
            "serve.tokenize_cache.size",
            self.tokenization_cache.stats()["size"],
        )

    # -- lifecycle / introspection -----------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("InferenceEngine is closed")

    def stats(self) -> dict:
        """Batching, cache, and tracing counters for monitoring."""
        with self._lock:
            batches = self._batches
            items = self._batched_items
            in_flight = self._in_flight
        return {
            "batches": batches,
            "batched_items": items,
            "mean_batch_size": items / batches if batches else 0.0,
            "queue_depth": self._queue.qsize(),
            "in_flight_batches": in_flight,
            "tokenization_cache": self.tokenization_cache.stats(),
            "traces": self.tracer.stats(),
        }

    def recent_traces(self, limit: int | None = None) -> list[dict]:
        """Finished request traces from the ring buffer, newest first."""
        return self.tracer.recent(limit=limit)

    def close(self) -> None:
        if self._closed:
            return
        with self._lock:
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._batcher.join(timeout=5.0)
        # The batcher has stopped producing; let the workers drain the
        # batch queue, then stop them.
        for _ in self._workers:
            self._batch_queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout=5.0)
        # Fail any request that raced the shutdown sentinel.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                _, future, _ = item
                if not future.done():
                    future.set_exception(RuntimeError("engine closed"))
        self._uninstall_tokenization_cache()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
