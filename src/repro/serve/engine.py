"""High-throughput inference engine over any registry risk model.

The serving workload (ROADMAP north star: "heavy traffic from millions
of users") is dominated by repeated small scoring requests. Scoring one
window at a time wastes almost all of its wall clock on per-call
overhead — python dispatch, feature/tokenization setup, tiny gemms. The
:class:`InferenceEngine` closes that gap three ways:

* **dynamic micro-batching** — asynchronous ``submit`` requests queue up
  and a batcher thread coalesces them into batches of up to
  ``max_batch_size``, waiting at most ``max_wait_s`` after the first
  request so latency stays bounded under light load; ``num_workers``
  threads execute the coalesced batches (BLAS releases the GIL, so
  workers overlap on multi-core hosts);
* **a bounded LRU tokenization cache** — users repost and windows
  overlap, so per-post token encodings are memoised (and bounded, unlike
  a bare dict, so long-running processes don't leak);
* **a synchronous ``predict_many`` fast path** — bulk scoring skips the
  queue entirely and feeds size-capped batches straight to the model.

All scoring runs under :func:`repro.nn.no_grad`, and every stage is
instrumented through ``repro.perf`` (``serve.*`` spans and counters).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro import perf
from repro.core.errors import ModelError
from repro.core.lru import LRUCache
from repro.models.base import RiskModel
from repro.nn import no_grad
from repro.temporal.windows import PostWindow

__all__ = ["EngineConfig", "InferenceEngine"]

_SHUTDOWN = object()


@dataclass(frozen=True)
class EngineConfig:
    """Serving knobs.

    max_batch_size:
        Upper bound on coalesced batch size (both paths).
    max_wait_s:
        How long the micro-batcher waits for stragglers after the first
        queued request before dispatching a partial batch.
    tokenization_cache_size:
        LRU budget (distinct post texts) for the tokenization cache.
    num_workers:
        Threads executing coalesced batches. BLAS kernels release the
        GIL, so >1 overlaps batch compute under concurrent traffic.
    """

    max_batch_size: int = 32
    max_wait_s: float = 0.005
    tokenization_cache_size: int = 8192
    num_workers: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")


class InferenceEngine:
    """Batched scoring front-end for a fitted :class:`RiskModel`.

    Usage
    -----
    >>> engine = InferenceEngine(model, EngineConfig(max_batch_size=64))
    >>> probs = engine.predict_many(windows)          # sync bulk path
    >>> future = engine.submit(window)                # async micro-batched
    >>> future.result()                               # (C,) probabilities
    >>> engine.close()

    The engine is also a context manager; ``close()`` drains the queue,
    stops the batcher thread and uninstalls the tokenization cache.
    """

    def __init__(
        self,
        model: RiskModel,
        config: EngineConfig | None = None,
    ) -> None:
        if not getattr(model, "_fitted", False):
            raise ModelError("InferenceEngine requires a fitted model")
        self.model = model
        self.config = config or EngineConfig()
        self.tokenization_cache = LRUCache(self.config.tokenization_cache_size)
        self._queue: queue.Queue = queue.Queue()
        self._batch_queue: queue.Queue = queue.Queue()
        self._closed = False
        self._batches = 0
        self._batched_items = 0
        self._lock = threading.Lock()
        self._original_encode = None
        self._install_tokenization_cache()
        self._batcher = threading.Thread(
            target=self._batch_loop, name="serve-batcher", daemon=True
        )
        self._batcher.start()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(self.config.num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- tokenization cache ------------------------------------------------

    def _install_tokenization_cache(self) -> None:
        """Memoise the model pipeline's per-post encoder through the LRU.

        Neural models re-encode every post text on each predict call;
        under serving traffic the same texts recur (overlapping windows,
        reposts), so encoding is cached keyed on the raw text. Feature
        models without a ``pipeline.encode_post`` are left untouched.
        """
        pipeline = getattr(self.model, "pipeline", None)
        encode = getattr(pipeline, "encode_post", None)
        if encode is None:
            return
        cache = self.tokenization_cache

        def cached_encode_post(text: str) -> list[int]:
            hit = cache.get(text)
            if hit is not None:
                perf.count("serve.tokenize.hits")
                return list(hit)
            ids = encode(text)
            cache.put(text, tuple(ids))
            perf.count("serve.tokenize.misses")
            return ids

        pipeline.encode_post = cached_encode_post
        self._original_encode = (pipeline, encode)

    def _uninstall_tokenization_cache(self) -> None:
        if self._original_encode is not None:
            pipeline, _ = self._original_encode
            try:
                del pipeline.encode_post  # remove the instance shadow
            except AttributeError:
                pass
            self._original_encode = None

    # -- synchronous bulk path ---------------------------------------------

    def predict_many(self, windows: list[PostWindow]) -> np.ndarray:
        """(N, C) probabilities for ``windows``, batched, queue-free."""
        self._ensure_open()
        if not windows:
            return self.model.predict_proba([])
        size = self.config.max_batch_size
        out = []
        with perf.span("serve.predict_many"):
            with no_grad():
                for start in range(0, len(windows), size):
                    chunk = windows[start : start + size]
                    out.append(self.model.predict_proba(chunk))
                    self._record_batch(len(chunk))
        perf.count("serve.requests", len(windows))
        return np.vstack(out)

    def predict_labels(self, windows: list[PostWindow]) -> np.ndarray:
        """Greedy labels via the batched probability path."""
        probs = self.predict_many(windows)
        return probs.argmax(axis=1).astype(np.int64)

    # -- asynchronous micro-batched path -----------------------------------

    def submit(self, window: PostWindow) -> Future:
        """Queue one window; resolves to its (C,) probability vector."""
        self._ensure_open()
        future: Future = Future()
        self._queue.put((window, future))
        perf.count("serve.requests")
        return future

    def predict_one(self, window: PostWindow, timeout: float | None = None):
        """Blocking single-window scoring through the micro-batcher."""
        return self.submit(window).result(timeout=timeout)

    def _batch_loop(self) -> None:
        cfg = self.config
        while True:
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if item is _SHUTDOWN:
                return
            batch = [item]
            deadline = time.perf_counter() + cfg.max_wait_s
            while len(batch) < cfg.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    extra = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    self._batch_queue.put(batch)
                    return
                batch.append(extra)
            self._batch_queue.put(batch)

    def _worker_loop(self) -> None:
        while True:
            batch = self._batch_queue.get()
            if batch is _SHUTDOWN:
                return
            self._run_batch(batch)

    def _run_batch(self, batch: list[tuple[PostWindow, Future]]) -> None:
        windows = [window for window, _ in batch]
        try:
            with perf.span("serve.batch"):
                with no_grad():
                    probs = self.model.predict_proba(windows)
            self._record_batch(len(batch))
            for (_, future), row in zip(batch, probs):
                future.set_result(row)
        except Exception as exc:  # propagate to every waiter
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)

    def _record_batch(self, size: int) -> None:
        with self._lock:
            self._batches += 1
            self._batched_items += size
        perf.count("serve.batches")
        perf.count("serve.batched_items", size)

    # -- lifecycle / introspection -----------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("InferenceEngine is closed")

    def stats(self) -> dict:
        """Batching and cache counters for monitoring."""
        with self._lock:
            batches = self._batches
            items = self._batched_items
        return {
            "batches": batches,
            "batched_items": items,
            "mean_batch_size": items / batches if batches else 0.0,
            "queue_depth": self._queue.qsize(),
            "tokenization_cache": self.tokenization_cache.stats(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._batcher.join(timeout=5.0)
        # The batcher has stopped producing; let the workers drain the
        # batch queue, then stop them.
        for _ in self._workers:
            self._batch_queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join(timeout=5.0)
        # Fail any request that raced the shutdown sentinel.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                _, future = item
                if not future.done():
                    future.set_exception(RuntimeError("engine closed"))
        self._uninstall_tokenization_cache()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
