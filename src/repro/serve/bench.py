"""Serving throughput benchmark: engine vs per-window scoring.

Backs ``python -m repro serve-bench`` and the serve section of
``scripts/bench_pr2.py``. The "before" path scores one window per
``predict_proba`` call (the naive deployment); the "after" path routes
the same windows through :class:`InferenceEngine.predict_many`. Outputs
are checked to match: labels must be bitwise identical, probabilities
agree to float summation-order noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.serve.engine import EngineConfig, InferenceEngine
from repro.temporal.windows import PostWindow

__all__ = ["ServeBenchResult", "run_serve_bench"]


@dataclass
class ServeBenchResult:
    """Timings and integrity checks of one serve benchmark run."""

    requests: int
    before_s: float
    after_s: float
    before_throughput: float
    after_throughput: float
    labels_identical: bool
    max_prob_diff: float
    engine_stats: dict

    @property
    def speedup(self) -> float:
        return self.before_s / self.after_s if self.after_s else float("inf")

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "before_s": self.before_s,
            "after_s": self.after_s,
            "before_throughput_rps": self.before_throughput,
            "after_throughput_rps": self.after_throughput,
            "speedup": self.speedup,
            "labels_identical": self.labels_identical,
            "max_prob_diff": self.max_prob_diff,
            "engine_stats": self.engine_stats,
        }


def run_serve_bench(
    model,
    windows: list[PostWindow],
    requests: int = 256,
    config: EngineConfig | None = None,
) -> ServeBenchResult:
    """Score ``requests`` windows per-window and via the engine.

    ``windows`` is cycled to reach the request count, mimicking repeat
    traffic (which also exercises the tokenization cache).
    """
    if not windows:
        raise ValueError("serve bench needs at least one window")
    traffic = [windows[i % len(windows)] for i in range(requests)]

    start = time.perf_counter()
    before = np.vstack([model.predict_proba([w]) for w in traffic])
    before_s = time.perf_counter() - start

    with InferenceEngine(model, config) as engine:
        # Warm call outside the timed region: first-touch costs (cache
        # install, lazy imports) belong to startup, not steady state.
        engine.predict_many(traffic[:1])
        start = time.perf_counter()
        after = engine.predict_many(traffic)
        after_s = time.perf_counter() - start
        stats = engine.stats()

    return ServeBenchResult(
        requests=requests,
        before_s=before_s,
        after_s=after_s,
        before_throughput=requests / before_s if before_s else float("inf"),
        after_throughput=requests / after_s if after_s else float("inf"),
        labels_identical=bool(
            np.array_equal(before.argmax(axis=1), after.argmax(axis=1))
        ),
        max_prob_diff=float(np.abs(before - after).max()),
        engine_stats=stats,
    )
