"""Serving throughput + latency benchmark: engine vs per-window scoring.

Backs ``python -m repro serve-bench`` and the serve sections of
``scripts/bench_pr2.py`` / ``scripts/bench_pr3.py``. The "before" path
scores one window per ``predict_proba`` call (the naive deployment);
the "after" path routes the same windows through
:class:`InferenceEngine.predict_many`. Outputs are checked to match:
labels must be bitwise identical, probabilities agree to float
summation-order noise.

A third phase drives the *async* micro-batched path — one
``submit()`` per request — and reports per-request end-to-end latency
and queue wait quantiles (p50/p90/p99/max) straight from the engine's
request traces, the numbers a deployment's SLO lives on.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.engine import EngineConfig, InferenceEngine
from repro.serve.pool import PoolConfig, WorkerPool
from repro.temporal.windows import PostWindow

__all__ = [
    "PoolBenchResult",
    "ServeBenchResult",
    "latency_quantiles",
    "run_pool_bench",
    "run_serve_bench",
]


def latency_quantiles(samples_ms: list[float]) -> dict:
    """p50/p90/p99/max (ms) of a latency sample list, plus its size.

    An empty sample list reports ``count: 0`` with ``None`` quantiles.
    It used to report all-zero quantiles, which is indistinguishable
    from a genuinely perfect p99 — a tracing-disabled run looked like
    the fastest deployment on record. Consumers must check ``count``
    before formatting the quantile fields.
    """
    if not samples_ms:
        return {
            "count": 0,
            "p50_ms": None,
            "p90_ms": None,
            "p99_ms": None,
            "max_ms": None,
        }
    arr = np.asarray(samples_ms, dtype=np.float64)
    p50, p90, p99 = np.percentile(arr, [50, 90, 99])
    return {
        "count": int(arr.size),
        "p50_ms": float(p50),
        "p90_ms": float(p90),
        "p99_ms": float(p99),
        "max_ms": float(arr.max()),
    }


@dataclass
class ServeBenchResult:
    """Timings and integrity checks of one serve benchmark run."""

    requests: int
    before_s: float
    after_s: float
    before_throughput: float
    after_throughput: float
    labels_identical: bool
    max_prob_diff: float
    engine_stats: dict
    async_s: float = 0.0
    async_throughput: float = 0.0
    latency: dict = field(default_factory=dict)
    queue_wait: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.before_s / self.after_s if self.after_s else float("inf")

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "before_s": self.before_s,
            "after_s": self.after_s,
            "before_throughput_rps": self.before_throughput,
            "after_throughput_rps": self.after_throughput,
            "speedup": self.speedup,
            "labels_identical": self.labels_identical,
            "max_prob_diff": self.max_prob_diff,
            "async_s": self.async_s,
            "async_throughput_rps": self.async_throughput,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "engine_stats": self.engine_stats,
        }


def run_serve_bench(
    model,
    windows: list[PostWindow],
    requests: int = 256,
    config: EngineConfig | None = None,
) -> ServeBenchResult:
    """Score ``requests`` windows per-window and via the engine.

    ``windows`` is cycled to reach the request count, mimicking repeat
    traffic (which also exercises the tokenization cache). The async
    phase submits every request individually through the micro-batcher
    and, when tracing is enabled, derives the latency/queue-wait
    quantiles from the request traces.
    """
    if not windows:
        raise ValueError("serve bench needs at least one window")
    traffic = [windows[i % len(windows)] for i in range(requests)]

    start = time.perf_counter()
    before = np.vstack([model.predict_proba([w]) for w in traffic])
    before_s = time.perf_counter() - start

    config = config or EngineConfig()
    # Size the ring to hold the whole run so quantiles see every request
    # (tracing itself is honoured as configured, so overhead runs can
    # turn it off and still use this harness).
    trace_config = dataclasses.replace(
        config, trace_ring_size=max(config.trace_ring_size, requests)
    )

    with InferenceEngine(model, trace_config) as engine:
        # Warm call outside the timed region: first-touch costs (cache
        # install, lazy imports) belong to startup, not steady state.
        engine.predict_many(traffic[:1])
        start = time.perf_counter()
        after = engine.predict_many(traffic)
        after_s = time.perf_counter() - start

        start = time.perf_counter()
        futures = [engine.submit(w) for w in traffic]
        for future in futures:
            future.result(timeout=60.0)
        async_s = time.perf_counter() - start

        traces = engine.recent_traces(limit=requests)
        stats = engine.stats()

    latency = latency_quantiles([t["total_ms"] for t in traces])
    queue_wait = latency_quantiles([t["queue_wait_ms"] for t in traces])

    return ServeBenchResult(
        requests=requests,
        before_s=before_s,
        after_s=after_s,
        before_throughput=requests / before_s if before_s else float("inf"),
        after_throughput=requests / after_s if after_s else float("inf"),
        labels_identical=bool(
            np.array_equal(before.argmax(axis=1), after.argmax(axis=1))
        ),
        max_prob_diff=float(np.abs(before - after).max()),
        engine_stats=stats,
        async_s=async_s,
        async_throughput=requests / async_s if async_s else float("inf"),
        latency=latency,
        queue_wait=queue_wait,
    )


@dataclass
class PoolBenchResult:
    """Single-engine vs worker-pool timings and integrity checks."""

    requests: int
    workers: int
    single_s: float
    pool_s: float
    single_throughput: float
    pool_throughput: float
    labels_identical: bool
    probs_bitwise_identical: bool
    max_prob_diff: float
    arena_nbytes: int
    cast: str
    pool_stats: dict
    latency: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.single_s / self.pool_s if self.pool_s else float("inf")

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "workers": self.workers,
            "single_s": self.single_s,
            "pool_s": self.pool_s,
            "single_throughput_rps": self.single_throughput,
            "pool_throughput_rps": self.pool_throughput,
            "speedup": self.speedup,
            "labels_identical": self.labels_identical,
            "probs_bitwise_identical": self.probs_bitwise_identical,
            "max_prob_diff": self.max_prob_diff,
            "arena_nbytes": self.arena_nbytes,
            "cast": self.cast,
            "latency": self.latency,
            "pool_stats": self.pool_stats,
        }


def run_pool_bench(
    model,
    windows: list[PostWindow],
    requests: int = 256,
    config: PoolConfig | None = None,
) -> PoolBenchResult:
    """Score the same traffic through one engine and through the pool.

    The single-engine phase is the baseline the acceptance contract
    refers to (its ``predict_many`` over the identical cycled traffic);
    the pool phase shards that traffic across ``config.num_workers``
    processes. Worker startup and model reconstruction happen outside
    the timed region — steady-state throughput is what a deployment
    sees. Integrity is checked both ways: labels must match bitwise,
    and in float64 mode (``cast_float32=False``) the probabilities
    themselves must be bitwise-identical.
    """
    if not windows:
        raise ValueError("pool bench needs at least one window")
    config = config or PoolConfig()
    traffic = [windows[i % len(windows)] for i in range(requests)]

    with InferenceEngine(model, config.engine) as engine:
        engine.predict_many(traffic[:1])  # warm outside the timed region
        start = time.perf_counter()
        single = engine.predict_many(traffic)
        single_s = time.perf_counter() - start

    with WorkerPool(model, config) as pool:
        pool.predict_many(traffic[:1])  # worker warm-up / first-touch
        start = time.perf_counter()
        pooled = pool.predict_many(traffic, timeout=300.0)
        pool_s = time.perf_counter() - start
        stats = pool.stats()
    # Per-chunk end-to-end latency is observed parent-side as each
    # Future resolves; worker snapshots contribute their serve.* spans.
    merged = pool.merged_telemetry(include_parent=True)
    lat_hist = merged.get("observations", {}).get(
        "serve.pool.request.latency_seconds", {}
    ).get("hist")
    latency = (
        {
            "count": lat_hist["count"],
            "p50_ms": lat_hist["p50_s"] * 1e3,
            "p90_ms": lat_hist["p90_s"] * 1e3,
            "p99_ms": lat_hist["p99_s"] * 1e3,
            "max_ms": lat_hist["max_s"] * 1e3,
        }
        if lat_hist
        else latency_quantiles([])
    )

    return PoolBenchResult(
        requests=requests,
        workers=config.num_workers,
        single_s=single_s,
        pool_s=pool_s,
        single_throughput=requests / single_s if single_s else float("inf"),
        pool_throughput=requests / pool_s if pool_s else float("inf"),
        labels_identical=bool(
            np.array_equal(single.argmax(axis=1), pooled.argmax(axis=1))
        ),
        probs_bitwise_identical=bool(np.array_equal(single, pooled)),
        max_prob_diff=float(np.abs(single - pooled).max()),
        arena_nbytes=stats["arena_nbytes"],
        cast=stats["cast"],
        pool_stats=stats,
        latency=latency,
    )
