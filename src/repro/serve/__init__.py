"""High-throughput model serving: micro-batched inference over the
registry baselines. See :mod:`repro.serve.engine`."""

from repro.serve.bench import (
    PoolBenchResult,
    ServeBenchResult,
    latency_quantiles,
    run_pool_bench,
    run_serve_bench,
)
from repro.serve.engine import EngineConfig, InferenceEngine
from repro.serve.pool import (
    PoolConfig,
    PoolSaturatedError,
    WorkerCrashError,
    WorkerPool,
)

__all__ = [
    "EngineConfig",
    "InferenceEngine",
    "PoolBenchResult",
    "PoolConfig",
    "PoolSaturatedError",
    "ServeBenchResult",
    "WorkerCrashError",
    "WorkerPool",
    "latency_quantiles",
    "run_pool_bench",
    "run_serve_bench",
]
