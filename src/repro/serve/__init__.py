"""High-throughput model serving: micro-batched inference over the
registry baselines. See :mod:`repro.serve.engine`."""

from repro.serve.bench import (
    ServeBenchResult,
    latency_quantiles,
    run_serve_bench,
)
from repro.serve.engine import EngineConfig, InferenceEngine

__all__ = [
    "EngineConfig",
    "InferenceEngine",
    "ServeBenchResult",
    "latency_quantiles",
    "run_serve_bench",
]
