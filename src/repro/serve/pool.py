"""Multi-process serving: N engine workers behind one shared queue.

One :class:`~repro.serve.engine.InferenceEngine` is capped by one GIL
and one BLAS context. The :class:`WorkerPool` scales past that by
spawning ``num_workers`` processes, each running its own engine over a
locally reconstructed model, all pulling from a single bounded request
queue:

* **zero-copy weight handoff** — the fitted model is split once by
  :func:`repro.models.state.export_state` into a kilobyte skeleton
  pickle plus one contiguous weight arena; the arena goes into a
  ``multiprocessing.shared_memory`` segment and every worker rebuilds
  its model over ``np.frombuffer`` views
  (:func:`repro.models.state.import_state`), so N workers map one
  physical copy of the weights instead of holding N pickled clones;
* **single-engine contract** — ``predict_many`` shards its input into
  chunks aligned to ``engine.max_batch_size``, so every worker scores
  exactly the batches the single engine would have scored: labels are
  bitwise-identical and probabilities match to summation-order noise
  (bitwise in the default float64 mode; see tests/serve/test_pool.py);
* **crash propagation** — a collector thread watches worker liveness;
  an unexpected worker death marks the pool *broken* and fails every
  in-flight ``Future`` with :class:`WorkerCrashError` instead of
  letting callers hang on results that will never arrive;
* **backpressure** — the request queue is bounded by
  ``max_pending``; ``submit(block=False)`` raises
  :class:`PoolSaturatedError` when the pool is at capacity so callers
  can shed load instead of queueing unboundedly;
* **telemetry** — the parent records ``serve.pool.*`` spans, counters,
  queue-depth gauges and end-to-end latency histograms; each worker
  ships its full ``repro.perf`` snapshot back on shutdown, and
  :meth:`WorkerPool.merged_telemetry` folds them into one snapshot via
  :func:`repro.perf.export.merge_snapshots` (per-worker gauges
  namespaced ``pool.worker<i>.*``).

Lifecycle: construct → ``predict_many``/``submit`` → ``close()`` (or
use as a context manager). ``close()`` sends stop sentinels, collects
worker snapshots, joins processes, then unlinks the shared segment.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro import perf
from repro.core.errors import ModelError
from repro.core.schema import NUM_CLASSES
from repro.models.base import RiskModel
from repro.models.state import ModelState, export_state, import_state
from repro.perf.export import merge_snapshots
from repro.serve.engine import EngineConfig, InferenceEngine
from repro.temporal.windows import PostWindow

__all__ = [
    "PoolConfig",
    "PoolSaturatedError",
    "WorkerCrashError",
    "WorkerPool",
]

_START_METHODS = ("spawn", "fork", "forkserver")


class WorkerCrashError(RuntimeError):
    """A worker process died unexpectedly; the pool is broken."""


class PoolSaturatedError(RuntimeError):
    """The bounded request queue is full (``submit(block=False)``)."""


@dataclass(frozen=True)
class PoolConfig:
    """Worker-pool knobs.

    num_workers:
        Engine processes to spawn. Throughput scales with physical
        cores; on a single-core host the pool adds IPC overhead for no
        parallelism (``scripts/bench_pr5.py`` records ``cpu_count``
        next to its numbers for exactly this reason).
    engine:
        :class:`EngineConfig` used by every worker's local engine. Its
        ``max_batch_size`` also fixes the pool's ``predict_many``
        shard size, which is what keeps pool output bitwise-identical
        to the single-engine path.
    max_pending:
        Bound on queued (submitted, not yet collected) requests —
        the backpressure knob.
    cast_float32:
        Export weights as float32 (half the shared segment; float64 is
        restored on import). Off by default: float32 rounding perturbs
        probabilities, see the accuracy-delta gate in the bench.
    start_method:
        ``multiprocessing`` start method. ``spawn`` is the default —
        safe regardless of parent threads; ``fork`` starts faster but
        inherits the parent's thread-unsafe state.
    startup_timeout_s / shutdown_timeout_s:
        How long to wait for workers to come up / drain before the
        pool gives up (startup) or terminates them (shutdown).
    """

    num_workers: int = 2
    engine: EngineConfig = field(default_factory=EngineConfig)
    max_pending: int = 256
    cast_float32: bool = False
    start_method: str = "spawn"
    startup_timeout_s: float = 120.0
    shutdown_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}"
            )
        if self.startup_timeout_s <= 0 or self.shutdown_timeout_s <= 0:
            raise ValueError("timeouts must be > 0")


def _format_error(exc: BaseException) -> str:
    """Flatten an exception (with traceback) to a string for the queue.

    Exception objects themselves may be unpicklable (or pickle huge
    context), so workers ship text.
    """
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
    return "".join(lines).rstrip()


def _flush_and_exit(result_q) -> None:
    """Deliver queued results, then exit without running finalizers.

    The worker's model holds ``np.frombuffer`` views into the shared
    segment, so a normal interpreter shutdown would try to close the
    mapping under them and spray ``BufferError`` from
    ``SharedMemory.__del__``. ``os._exit`` skips finalizers; the OS
    unmaps the segment. ``join_thread`` first, so the queue's feeder
    thread has flushed the final message to the pipe.
    """
    result_q.close()
    result_q.join_thread()
    os._exit(0)


def _worker_main(
    worker_id: int,
    shm_name: str,
    skeleton: bytes,
    manifest: dict,
    engine_config: EngineConfig,
    request_q,
    result_q,
) -> None:
    """Worker process body: attach arena, rebuild model, serve requests.

    Top-level (not a closure) so it pickles under the ``spawn`` start
    method.
    """
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
        model = import_state(skeleton, manifest, shm.buf)
        engine = InferenceEngine(model, engine_config)
    except BaseException as exc:
        # Startup failure must reach the parent or __init__ would hang
        # waiting for "ready"; nothing to re-raise to in a child process.
        result_q.put(("start_error", worker_id, _format_error(exc)))
        _flush_and_exit(result_q)
    result_q.put(("ready", worker_id, os.getpid()))
    try:
        while True:
            msg = request_q.get()
            if msg[0] == "stop":
                return
            _, req_id, windows = msg
            try:
                probs = engine.predict_many(windows)
            except Exception as exc:
                # One bad request must not kill the worker; the parent
                # turns this payload into the Future's exception.
                result_q.put(("err", req_id, worker_id, _format_error(exc)))
            else:
                result_q.put(("ok", req_id, worker_id, probs))
    finally:
        try:
            engine.close()
        except Exception:
            # Shutdown is best-effort: the snapshot below matters more
            # than a clean engine teardown in a dying process.
            pass
        result_q.put(("stopped", worker_id, perf.snapshot()))
        _flush_and_exit(result_q)


class WorkerPool:
    """Process-pool front end with the :class:`InferenceEngine` API.

    Usage
    -----
    >>> with WorkerPool(model, PoolConfig(num_workers=4)) as pool:
    ...     probs = pool.predict_many(windows)      # sync, sharded
    ...     future = pool.submit(windows[:8])       # async, one chunk
    ...     future.result()

    Alternatively construct from a pre-exported :class:`ModelState`
    (``WorkerPool(state=...)``) when the parent never needs the live
    model object.
    """

    def __init__(
        self,
        model: RiskModel | None = None,
        config: PoolConfig | None = None,
        *,
        state: ModelState | None = None,
    ) -> None:
        if (model is None) == (state is None):
            raise ModelError("WorkerPool needs exactly one of model= or state=")
        self.config = config or PoolConfig()
        if state is None:
            state = export_state(model, cast_float32=self.config.cast_float32)
        self.manifest = state.manifest

        self._lock = threading.Lock()
        self._pending: dict[int, tuple[Future, float]] = {}
        self._next_id = 0
        self._closed = False
        self._closing = False
        self._broken = False
        self._broken_reason = ""
        self._start_error: str | None = None
        self._requests = 0
        self._errors = 0
        self._worker_snapshots: dict[int, dict] = {}
        self._finished_workers: set[int] = set()
        self._ready_workers: set[int] = set()
        self._ready = threading.Event()
        self._workers_done = threading.Event()

        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, int(state.arena.nbytes))
        )
        try:
            # One copy into the OS segment; no numpy view is kept on
            # shm.buf here, so close()/unlink() later cannot hit a
            # BufferError from a lingering export.
            self._shm.buf[: state.arena.nbytes] = state.arena.tobytes()
            ctx = multiprocessing.get_context(self.config.start_method)
            self._request_q = ctx.Queue(maxsize=self.config.max_pending)
            self._result_q = ctx.Queue()
            self._processes = [
                ctx.Process(
                    target=_worker_main,
                    args=(
                        i,
                        self._shm.name,
                        state.skeleton,
                        state.manifest,
                        self.config.engine,
                        self._request_q,
                        self._result_q,
                    ),
                    name=f"pool-worker-{i}",
                    daemon=True,
                )
                for i in range(self.config.num_workers)
            ]
            for proc in self._processes:
                proc.start()
            self._collector = threading.Thread(
                target=self._collect_loop, name="pool-collector", daemon=True
            )
            self._collector.start()
            if not self._ready.wait(timeout=self.config.startup_timeout_s):
                raise WorkerCrashError(
                    f"pool workers not ready within "
                    f"{self.config.startup_timeout_s:.0f}s"
                )
            with self._lock:
                start_error = self._start_error
                broken_reason = self._broken_reason if self._broken else None
            failure = start_error or broken_reason
            if failure is not None:
                raise WorkerCrashError(f"worker failed to start:\n{failure}")
        except BaseException:
            self._teardown_after_init_failure()
            raise

    # -- request paths -----------------------------------------------------

    def submit(
        self,
        windows: list[PostWindow],
        block: bool = True,
        timeout: float | None = None,
    ) -> Future:
        """Queue one chunk of windows; resolves to (len, C) probabilities.

        With ``block=False`` (or on ``timeout``) a full request queue
        raises :class:`PoolSaturatedError` instead of waiting — the
        backpressure signal for callers that would rather shed load.
        """
        with self._lock:
            self._ensure_open_locked()
            req_id = self._next_id
            self._next_id += 1
            future: Future = Future()
            self._pending[req_id] = (future, time.perf_counter())
            self._requests += 1
        try:
            payload = ("req", req_id, list(windows))
            if block:
                self._request_q.put(payload, timeout=timeout)
            else:
                self._request_q.put_nowait(payload)
        except queue.Full:
            with self._lock:
                self._pending.pop(req_id, None)
            raise PoolSaturatedError(
                f"request queue at capacity ({self.config.max_pending} pending)"
            ) from None
        perf.count("serve.pool.requests")
        perf.gauge("serve.pool.queue_depth", self._request_q.qsize())
        return future

    def predict_many(
        self, windows: list[PostWindow], timeout: float | None = None
    ) -> np.ndarray:
        """(N, C) probabilities, sharded across the worker processes.

        Shards are cut at ``engine.max_batch_size`` boundaries — the
        same batch composition the single engine's ``predict_many``
        would use — so per-window results are bitwise-identical to one
        engine in float64 mode (each batch's forward pass sees exactly
        the same operands in the same order).
        """
        self._ensure_open()
        if not windows:
            return np.zeros((0, NUM_CLASSES), dtype=np.float64)
        size = self.config.engine.max_batch_size
        with perf.span("serve.pool.predict_many"):
            futures = [
                self.submit(windows[start : start + size])
                for start in range(0, len(windows), size)
            ]
            parts = [f.result(timeout=timeout) for f in futures]
        return np.vstack(parts)

    def predict_labels(
        self, windows: list[PostWindow], timeout: float | None = None
    ) -> np.ndarray:
        """Greedy labels via the sharded probability path."""
        probs = self.predict_many(windows, timeout=timeout)
        return probs.argmax(axis=1).astype(np.int64)

    # -- collector ---------------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=0.1)
            except queue.Empty:
                self._check_workers()
                if self._workers_done.is_set() and self._closing:
                    return
                continue
            kind = msg[0]
            if kind == "ok":
                self._resolve(msg[1], result=msg[3])
            elif kind == "err":
                self._resolve(
                    msg[1],
                    error=RuntimeError(
                        f"worker {msg[2]} request failed:\n{msg[3]}"
                    ),
                )
            elif kind == "ready":
                with self._lock:
                    self._ready_workers.add(msg[1])
                    ready = len(self._ready_workers)
                if ready == self.config.num_workers:
                    self._ready.set()
            elif kind == "start_error":
                with self._lock:
                    self._start_error = msg[2]
                self._worker_finished(msg[1])
                self._ready.set()  # unblock __init__ so it can raise
                self._mark_broken(f"worker {msg[1]} failed to start")
            elif kind == "stopped":
                with self._lock:
                    self._worker_snapshots[msg[1]] = msg[2]
                self._worker_finished(msg[1])

    def _resolve(self, req_id: int, result=None, error=None) -> None:
        with self._lock:
            entry = self._pending.pop(req_id, None)
            if error is not None:
                self._errors += 1
        if entry is None:
            return  # already failed by _mark_broken, or raced close()
        future, t_submit = entry
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
            perf.observe(
                "serve.pool.request.latency_seconds",
                time.perf_counter() - t_submit,
            )

    def _check_workers(self) -> None:
        """Poll worker liveness; unexpected deaths break the pool."""
        alive = 0
        with self._lock:
            closing = self._closing
            finished = set(self._finished_workers)
        for proc in self._processes:
            if proc.is_alive():
                alive += 1
            elif proc.pid is not None and _worker_index(proc) not in finished:
                self._worker_finished(_worker_index(proc))
                if not closing:
                    self._mark_broken(
                        f"worker {_worker_index(proc)} died unexpectedly "
                        f"(exit code {proc.exitcode})"
                    )
        perf.gauge("serve.pool.workers_alive", alive)

    def _worker_finished(self, worker_id: int) -> None:
        with self._lock:
            self._finished_workers.add(worker_id)
            done = len(self._finished_workers) == self.config.num_workers
        if done:
            self._workers_done.set()

    def _mark_broken(self, reason: str) -> None:
        with self._lock:
            if self._broken:
                return
            self._broken = True
            self._broken_reason = reason
            pending = list(self._pending.values())
            self._pending.clear()
        perf.count("serve.pool.worker_crashes")
        self._ready.set()  # unblock a constructor still waiting on startup
        error = WorkerCrashError(f"{reason}; in-flight requests failed")
        for future, _ in pending:
            if not future.done():
                future.set_exception(error)

    # -- lifecycle / introspection -----------------------------------------

    def _ensure_open(self) -> None:
        with self._lock:
            self._ensure_open_locked()

    def _ensure_open_locked(self) -> None:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._broken:
            raise WorkerCrashError(
                f"WorkerPool is broken: {self._broken_reason}"
            )

    @property
    def broken(self) -> bool:
        with self._lock:
            return self._broken

    def stats(self) -> dict:
        """Pool-level counters for monitoring."""
        with self._lock:
            pending = len(self._pending)
            requests = self._requests
            errors = self._errors
            broken = self._broken
        return {
            "workers": self.config.num_workers,
            "workers_alive": sum(p.is_alive() for p in self._processes),
            "pending": pending,
            "requests": requests,
            "errors": errors,
            "broken": broken,
            "arena_nbytes": int(self.manifest["arena_nbytes"]),
            "cast": self.manifest["cast"],
        }

    @property
    def worker_snapshots(self) -> dict[int, dict]:
        """Per-worker ``repro.perf`` snapshots (populated at shutdown)."""
        with self._lock:
            return dict(self._worker_snapshots)

    def merged_telemetry(self, include_parent: bool = True) -> dict:
        """One registry-shaped snapshot across parent + all workers.

        Workers ship their snapshots as they stop, so the merged view
        is complete only after :meth:`close`. Counters and latency
        histograms aggregate exactly; per-worker gauges survive under
        ``pool.worker<i>.*`` (see
        :func:`repro.perf.export.merge_snapshots`).
        """
        with self._lock:
            items = sorted(self._worker_snapshots.items())
        snapshots = [snap for _, snap in items]
        prefixes: list[str | None] = [f"pool.worker{i}" for i, _ in items]
        if include_parent:
            snapshots.insert(0, perf.snapshot())
            prefixes.insert(0, None)
        return merge_snapshots(snapshots, gauge_prefixes=prefixes)

    def debug_kill_worker(self, index: int = 0) -> None:
        """Hard-kill one worker (SIGKILL) — crash-injection for tests."""
        self._processes[index].kill()

    def _teardown_after_init_failure(self) -> None:
        with self._lock:
            self._closing = True
            self._closed = True
        for proc in self._processes if hasattr(self, "_processes") else []:
            if proc.is_alive():
                proc.terminate()
        for proc in self._processes if hasattr(self, "_processes") else []:
            proc.join(timeout=5.0)
        self._release_shm()

    def _release_shm(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:
            pass  # already unlinked (double close)

    def close(self) -> None:
        """Stop workers, collect their snapshots, release shared memory.

        Idempotent. In-flight futures that never got a result are
        failed rather than left pending.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._closing = True
        # Even a broken pool may hold healthy workers; each consumes
        # exactly one sentinel and ships its telemetry snapshot back.
        for _ in self._processes:
            try:
                self._request_q.put(("stop",), timeout=2.0)
            except queue.Full:
                break  # workers gone or wedged; terminate below
        self._workers_done.wait(timeout=self.config.shutdown_timeout_s)
        for proc in self._processes:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        if self._collector.is_alive():
            self._collector.join(timeout=5.0)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for future, _ in leftovers:
            if not future.done():
                future.set_exception(RuntimeError("pool closed"))
        # Unflushed queue feeder threads must not block interpreter exit.
        for q in (self._request_q, self._result_q):
            q.cancel_join_thread()
            q.close()
        self._release_shm()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _worker_index(proc) -> int:
    """Recover the worker id baked into the process name."""
    return int(proc.name.rsplit("-", 1)[1])
