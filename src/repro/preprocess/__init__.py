"""Pre-processing pipeline: cleaning, relevance, dedup, partitioning."""

from repro.preprocess.cleaning import (
    clean_and_filter,
    clean_post,
    is_relevant,
    relevance_score,
    strip_noise,
)
from repro.preprocess.dedup import (
    MinHasher,
    jaccard,
    normalised_fingerprint,
    remove_exact_duplicates,
    remove_near_duplicates,
    shingles,
)
from repro.preprocess.normalize import expand_contractions, normalise
from repro.preprocess.partition import (
    assert_chronological,
    group_by_user,
    slice_window,
    split_by_date,
)
from repro.preprocess.pipeline import (
    PreprocessPipeline,
    PreprocessReport,
    PreprocessResult,
    preprocess,
)

__all__ = [
    "clean_and_filter",
    "clean_post",
    "is_relevant",
    "relevance_score",
    "strip_noise",
    "MinHasher",
    "jaccard",
    "normalised_fingerprint",
    "remove_exact_duplicates",
    "remove_near_duplicates",
    "shingles",
    "expand_contractions",
    "normalise",
    "assert_chronological",
    "group_by_user",
    "slice_window",
    "split_by_date",
    "PreprocessPipeline",
    "PreprocessReport",
    "PreprocessResult",
    "preprocess",
]
