"""Temporal partitioning: organise posts chronologically per user.

The paper partitions the dataset "according to temporal constraints to
facilitate time-series analysis" — posts are grouped by author and ordered
by timestamp so that risk-evolution tracking is well defined.
"""

from __future__ import annotations

from collections import defaultdict
from datetime import datetime

from repro.core.errors import PreprocessError
from repro.corpus.models import RedditPost, UserHistory


def group_by_user(posts: list[RedditPost]) -> dict[str, UserHistory]:
    """Group posts into per-author chronological histories."""
    histories: dict[str, list[RedditPost]] = defaultdict(list)
    for post in posts:
        histories[post.author].append(post)
    result = {}
    for author, items in histories.items():
        items.sort(key=lambda p: (p.created_utc, p.post_id))
        result[author] = UserHistory(author=author, posts=items)
    return result


def assert_chronological(history: UserHistory) -> None:
    """Raise if a history is not strictly chronological."""
    times = [p.created_utc for p in history.posts]
    for earlier, later in zip(times, times[1:]):
        if later < earlier:
            raise PreprocessError(
                f"history of {history.author} is not chronological"
            )


def slice_window(
    history: UserHistory,
    end: datetime | None = None,
    max_posts: int | None = None,
    max_span_days: float | None = None,
) -> list[RedditPost]:
    """Most recent posts of a history subject to window constraints.

    Parameters
    ----------
    end:
        Only posts at or before this instant are considered (defaults to
        the last post's time).
    max_posts:
        Keep at most this many of the most recent posts.
    max_span_days:
        Drop posts older than this many days before the window end.
    """
    posts = history.posts
    if end is not None:
        posts = [p for p in posts if p.created_utc <= end]
    if not posts:
        return []
    anchor = posts[-1].created_utc
    if max_span_days is not None:
        horizon = anchor.timestamp() - max_span_days * 86_400.0
        posts = [p for p in posts if p.created_utc.timestamp() >= horizon]
    if max_posts is not None:
        posts = posts[-max_posts:]
    return posts


def split_by_date(
    posts: list[RedditPost], boundary: datetime
) -> tuple[list[RedditPost], list[RedditPost]]:
    """Partition posts into (before, at-or-after) a boundary instant."""
    before = [p for p in posts if p.created_utc < boundary]
    after = [p for p in posts if p.created_utc >= boundary]
    return before, after
