"""Text normalisation and tokenisation hooks for the cleaned corpus.

Normalisation standardises text "for machine learning applications"
(paper §II-A2): unicode folding, case folding, contraction expansion, and
whitespace collapsing. Tokenisation itself lives in :mod:`repro.text`;
this module only applies the canonical normal form that the tokenisers
assume.
"""

from __future__ import annotations

import re
import unicodedata

_CONTRACTIONS = {
    "can't": "can not",
    "cannot": "can not",
    "won't": "will not",
    "n't": " not",
    "i'm": "i am",
    "it's": "it is",
    "that's": "that is",
    "i've": "i have",
    "i'd": "i would",
    "i'll": "i will",
    "don't": "do not",
    "doesn't": "does not",
    "didn't": "did not",
    "isn't": "is not",
    "wasn't": "was not",
    "there's": "there is",
    "they're": "they are",
    "you're": "you are",
    "we're": "we are",
}

_WS_RE = re.compile(r"\s+")
_CONTRACTION_RE = re.compile(
    "|".join(re.escape(k) for k in sorted(_CONTRACTIONS, key=len, reverse=True))
)


def expand_contractions(text: str) -> str:
    """Expand common English contractions (lower-case input assumed)."""
    return _CONTRACTION_RE.sub(lambda m: _CONTRACTIONS[m.group(0)], text)


def normalise(text: str) -> str:
    """Canonical normal form: NFKC, lower case, expanded contractions,
    collapsed whitespace."""
    text = unicodedata.normalize("NFKC", text)
    text = text.lower()
    text = expand_contractions(text)
    return _WS_RE.sub(" ", text).strip()
