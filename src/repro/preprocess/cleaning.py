"""Text cleaning and relevance filtering (paper §II-A2).

The raw crawl contains URLs, zero-width characters, excessive punctuation,
hashtag spam, and off-topic submissions. This module removes the noise and
filters posts unrelated to the suicide-risk theme.
"""

from __future__ import annotations

import re
import unicodedata

from repro.corpus.models import RedditPost

_URL_RE = re.compile(r"(?:https?://|www\.)\S+", re.IGNORECASE)
_HASHTAG_RE = re.compile(r"(?:#\w+\s*){2,}")
_REPEAT_PUNCT_RE = re.compile(r"([!?.,])\1{2,}")
_BRACKET_TAG_RE = re.compile(r"\[(?:removed|deleted)[^\]]*\]", re.IGNORECASE)
_WS_RE = re.compile(r"\s+")
_ZERO_WIDTH = dict.fromkeys(map(ord, "​‌‍﻿"), None)

#: First-person distress vocabulary used by the cheap relevance filter.
_RELEVANCE_TERMS = (
    "suicide", "suicidal", "die", "dying", "death", "kill", "end my life",
    "ending it", "self harm", "self-harm", "hurt myself", "attempt",
    "hopeless", "worthless", "can't go on", "goodbye", "note", "crisis",
    "depress", "anxious", "anxiety", "therapy", "therapist", "hotline",
    "alone", "exhausted", "numb", "trapped", "overwhelmed", "struggling",
    "vent", "tired of", "wish i", "want out", "disappear", "not wake up",
    "hollow", "isolated", "defeated", "drained", "invisible", "restless",
    "heavy", "pointless", "hospital", "recover", "survived", "scars",
    "worried about", "talking about", "wish to be gone", "not exist",
    "be alive", "no plan", "support", "resources", "help", "safe",
    "counselor", "hurting", "struggle", "off my chest", "gone",
)

#: Patterns typical of commercial / off-topic content (regexes, word-bounded
#: where a bare word would otherwise shadow distress vocabulary).
_OFFTOPIC_PATTERNS = tuple(
    re.compile(pat, re.IGNORECASE)
    for pat in (
        r"promo code", r"dm me", r"for sale", r"\bselling\b", r"\btickets\b",
        r"\bdiscount\b", r"\bdeals?\b", r"recommendations for a",
        r"study group", r"the game tonight", r"\bpizza\b", r"\blaptop\b",
        r"\brouter\b", r"\[ot\]",
    )
)


def strip_noise(text: str) -> str:
    """Remove URLs, zero-width chars, hashtag runs, repeated punctuation."""
    text = unicodedata.normalize("NFKC", text)
    text = text.translate(_ZERO_WIDTH)
    text = _URL_RE.sub(" ", text)
    text = _HASHTAG_RE.sub(" ", text)
    text = _BRACKET_TAG_RE.sub(" ", text)
    text = _REPEAT_PUNCT_RE.sub(r"\1", text)
    return _WS_RE.sub(" ", text).strip()


def relevance_score(text: str) -> float:
    """Crude lexical relevance score in [0, 1].

    Counts distress-vocabulary hits and penalises off-topic/commercial
    patterns. A score of 0 means certainly off-topic.
    """
    lowered = text.lower()
    hits = sum(1 for term in _RELEVANCE_TERMS if term in lowered)
    penalties = sum(1 for pat in _OFFTOPIC_PATTERNS if pat.search(lowered))
    raw = hits - 2 * penalties
    return max(0.0, min(1.0, raw / 3.0))


def is_relevant(text: str, threshold: float = 0.3) -> bool:
    """Whether a post passes the suicide-risk-theme relevance filter."""
    return relevance_score(text) >= threshold


def clean_post(post: RedditPost) -> RedditPost:
    """Return a copy of ``post`` with noise stripped from the body."""
    return post.with_body(strip_noise(post.body))


def clean_and_filter(
    posts: list[RedditPost], relevance_threshold: float = 0.3
) -> tuple[list[RedditPost], int]:
    """Clean every post and drop irrelevant ones.

    Returns
    -------
    (kept, num_dropped):
        Cleaned relevant posts (original order) and the drop count.
    """
    kept = []
    dropped = 0
    for post in posts:
        cleaned = clean_post(post)
        if not cleaned.body or not is_relevant(cleaned.text, relevance_threshold):
            dropped += 1
            continue
        kept.append(cleaned)
    return kept, dropped
