"""Duplicate removal: exact and near-duplicate detection.

Exact duplicates (reposts of identical text) are caught with a normalised
hash; near-duplicates (small edits, appended noise) with MinHash over word
shingles followed by a Jaccard check — the standard construction used in
web-scale dedup, here sized for a ~10⁵-post crawl.
"""

from __future__ import annotations

import hashlib
import re
from collections import defaultdict

import numpy as np

from repro import perf
from repro.corpus.models import RedditPost

_WORD_RE = re.compile(r"[a-z0-9']+")

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def normalised_fingerprint(text: str) -> str:
    """Hash of the lower-cased, whitespace-collapsed text."""
    canonical = " ".join(_WORD_RE.findall(text.lower()))
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


def shingles(text: str, k: int = 3) -> set[str]:
    """Set of ``k``-word shingles of the text."""
    words = _WORD_RE.findall(text.lower())
    if len(words) < k:
        return {" ".join(words)} if words else set()
    return {" ".join(words[i : i + k]) for i in range(len(words) - k + 1)}


def jaccard(a: set[str], b: set[str]) -> float:
    """Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / len(a | b)


class MinHasher:
    """MinHash signatures with ``num_perm`` universal hash permutations."""

    def __init__(self, num_perm: int = 64, seed: int = 1) -> None:
        if num_perm < 4:
            raise ValueError("num_perm must be >= 4")
        rng = np.random.default_rng(seed)
        self.num_perm = num_perm
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_perm, dtype=np.uint64)

    @staticmethod
    def _base_hashes(shingle_set: set[str]) -> np.ndarray:
        return np.array(
            [
                int.from_bytes(
                    hashlib.blake2b(s.encode(), digest_size=8).digest(), "little"
                )
                for s in shingle_set
            ],
            dtype=np.uint64,
        )

    def signature(self, shingle_set: set[str]) -> np.ndarray:
        """MinHash signature (uint64 vector of length ``num_perm``).

        One ``(n_shingles, num_perm)`` broadcast of ``(a·x + b) mod p``
        followed by a column minimum — no per-permutation Python loop
        (that predecessor survives as :meth:`_signature_reference`).
        uint64 arithmetic wraps identically in both, so signatures are
        bitwise equal.
        """
        if not shingle_set:
            return np.full(self.num_perm, _MAX_HASH, dtype=np.uint64)
        base = self._base_hashes(shingle_set)
        hashed = (
            self._a[None, :] * base[:, None] + self._b[None, :]
        ) % _MERSENNE_PRIME
        return hashed.min(axis=0) & np.uint64(_MAX_HASH)

    def _signature_reference(self, shingle_set: set[str]) -> np.ndarray:
        """Naive per-permutation predecessor, kept for equivalence tests."""
        if not shingle_set:
            return np.full(self.num_perm, _MAX_HASH, dtype=np.uint64)
        base = self._base_hashes(shingle_set)
        # (a * x + b) mod p, min over shingles, per permutation.
        sig = np.empty(self.num_perm, dtype=np.uint64)
        for i in range(self.num_perm):
            hashed = (self._a[i] * base + self._b[i]) % _MERSENNE_PRIME
            sig[i] = hashed.min() & _MAX_HASH
        return sig

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimated Jaccard similarity from two signatures."""
        return float(np.mean(sig_a == sig_b))


def remove_exact_duplicates(
    posts: list[RedditPost],
) -> tuple[list[RedditPost], int]:
    """Keep the earliest copy of each identical text; drop the rest."""
    seen: set[str] = set()
    kept, dropped = [], 0
    for post in sorted(posts, key=lambda p: (p.created_utc, p.post_id)):
        fp = normalised_fingerprint(post.text)
        if fp in seen:
            dropped += 1
            continue
        seen.add(fp)
        kept.append(post)
    return kept, dropped


def remove_near_duplicates(
    posts: list[RedditPost],
    threshold: float = 0.85,
    num_perm: int = 64,
    bands: int = 16,
) -> tuple[list[RedditPost], int]:
    """LSH-banded MinHash near-duplicate removal.

    Signatures are split into ``bands``; posts sharing any band bucket are
    candidate pairs, confirmed with exact Jaccard on shingles. Of each
    duplicate cluster, the earliest post survives.
    """
    if num_perm % bands != 0:
        raise ValueError("num_perm must be divisible by bands")
    with perf.span("dedup.near"):
        ordered = sorted(posts, key=lambda p: (p.created_utc, p.post_id))
        hasher = MinHasher(num_perm=num_perm)
        shingle_sets = [shingles(p.text) for p in ordered]
        sigs = [hasher.signature(s) for s in shingle_sets]

        rows = num_perm // bands
        buckets: dict[tuple[int, bytes], list[int]] = defaultdict(list)
        for idx, sig in enumerate(sigs):
            for band in range(bands):
                key = (band, sig[band * rows : (band + 1) * rows].tobytes())
                buckets[key].append(idx)

        # A candidate pair typically collides in *several* bands; without
        # memoisation the worst case (many near-identical posts) does the
        # exact-Jaccard check ``bands`` times per pair. Confirmed
        # duplicates short-circuit out entirely, and surviving pairs are
        # checked at most once across all buckets.
        drop: set[int] = set()
        checked: set[tuple[int, int]] = set()
        for members in buckets.values():
            if len(members) < 2:
                continue
            for pos, i in enumerate(members):
                if i in drop:
                    continue
                for j in members[pos + 1 :]:
                    if j in drop:
                        continue
                    pair = (i, j)  # i < j: bucket members keep index order
                    if pair in checked:
                        continue
                    checked.add(pair)
                    perf.count("dedup.pairs_checked")
                    if jaccard(shingle_sets[i], shingle_sets[j]) >= threshold:
                        drop.add(j)  # j is later (ordered list)
        kept = [p for idx, p in enumerate(ordered) if idx not in drop]
    return kept, len(drop)
