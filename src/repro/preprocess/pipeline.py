"""The end-to-end pre-processing pipeline of paper §II-A2.

Order of operations, matching the paper:

1. relevance filtering (drop posts unrelated to the suicide-risk theme),
2. noise stripping (URLs, special characters, excessive punctuation),
3. exact duplicate removal,
4. near-duplicate removal,
5. normalisation (handled lazily by the tokenisers; the pipeline records
   the canonical form only),
6. chronological grouping per user.

A :class:`PreprocessReport` records how many posts each stage removed, so
data-quality regressions are visible in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.models import RedditPost, UserHistory
from repro.preprocess.cleaning import clean_and_filter
from repro.preprocess.dedup import remove_exact_duplicates, remove_near_duplicates
from repro.preprocess.partition import assert_chronological, group_by_user


@dataclass
class PreprocessReport:
    """Per-stage accounting of the pre-processing pipeline."""

    input_posts: int = 0
    dropped_irrelevant: int = 0
    dropped_exact_duplicates: int = 0
    dropped_near_duplicates: int = 0
    output_posts: int = 0
    output_users: int = 0

    @property
    def total_dropped(self) -> int:
        return (
            self.dropped_irrelevant
            + self.dropped_exact_duplicates
            + self.dropped_near_duplicates
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "input_posts": self.input_posts,
            "dropped_irrelevant": self.dropped_irrelevant,
            "dropped_exact_duplicates": self.dropped_exact_duplicates,
            "dropped_near_duplicates": self.dropped_near_duplicates,
            "output_posts": self.output_posts,
            "output_users": self.output_users,
        }


@dataclass
class PreprocessResult:
    """Clean corpus: flat post list plus per-user chronological histories."""

    posts: list[RedditPost]
    histories: dict[str, UserHistory]
    report: PreprocessReport = field(default_factory=PreprocessReport)


class PreprocessPipeline:
    """Configurable §II-A2 pipeline.

    Parameters
    ----------
    relevance_threshold:
        Minimum lexical relevance score to keep a post.
    near_dup_threshold:
        Jaccard similarity above which two posts are near-duplicates.
    enable_near_dedup:
        Near-duplicate detection is O(candidates); disable for quick runs.
    """

    def __init__(
        self,
        relevance_threshold: float = 0.3,
        near_dup_threshold: float = 0.85,
        enable_near_dedup: bool = True,
    ) -> None:
        self.relevance_threshold = relevance_threshold
        self.near_dup_threshold = near_dup_threshold
        self.enable_near_dedup = enable_near_dedup

    def run(self, posts: list[RedditPost]) -> PreprocessResult:
        """Execute the pipeline on a raw crawl."""
        report = PreprocessReport(input_posts=len(posts))

        cleaned, report.dropped_irrelevant = clean_and_filter(
            posts, self.relevance_threshold
        )
        deduped, report.dropped_exact_duplicates = remove_exact_duplicates(cleaned)
        if self.enable_near_dedup:
            deduped, report.dropped_near_duplicates = remove_near_duplicates(
                deduped, threshold=self.near_dup_threshold
            )

        histories = group_by_user(deduped)
        for history in histories.values():
            assert_chronological(history)

        report.output_posts = len(deduped)
        report.output_users = len(histories)
        return PreprocessResult(posts=deduped, histories=histories, report=report)


def preprocess(posts: list[RedditPost], **kwargs) -> PreprocessResult:
    """One-call convenience wrapper around :class:`PreprocessPipeline`."""
    return PreprocessPipeline(**kwargs).run(posts)
