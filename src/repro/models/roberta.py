"""Time-aware RoBERTa baseline (paper §III-A4).

A RoBERTa-style transformer encoder (absolute positions, post-LN, GELU),
domain-pretrained with masked language modelling, fine-tuned with a
temporal attention mechanism: multi-dimensional temporal features are
mapped into the text semantic space by a projection layer, attended with
a multi-head structure whose logits decay with temporal distance, and
fused with the pooled text representation through a residual + layer-norm
path.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import SeedSequenceRegistry
from repro.core.schema import NUM_CLASSES
from repro.models.base import RiskModel
from repro.models.neural_common import (
    EncodedWindows,
    TextPipeline,
    TrainerConfig,
    collate_flat_tokens,
    collate_time,
    predict_classifier,
    predict_proba_classifier,
    train_classifier,
)
from repro.models.plm import MLMResult, PLMConfig, pretrain_mlm
from repro.nn import (
    Dropout,
    LayerNorm,
    Linear,
    TemporalDecayAttention,
    Tensor,
    TransformerEncoder,
    mean_pool,
)
from repro.nn.module import Module
from repro.temporal.windows import PostWindow


class RobertaRiskNetwork(Module):
    """Encoder + temporal projection + decay attention + fusion head."""

    def __init__(
        self,
        vocab_size: int,
        time_dim: int,
        config: PLMConfig,
        rng: np.random.Generator,
        pad_id: int = 0,
    ) -> None:
        super().__init__()
        self.config = config
        self.encoder = TransformerEncoder(
            vocab_size=vocab_size,
            dim=config.dim,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            max_len=config.max_len,
            rng=rng,
            ffn_hidden=config.ffn_hidden,
            dropout=config.dropout,
            pad_id=pad_id,
        )
        self.time_proj = Linear(time_dim, config.dim, rng)
        self.time_norm = LayerNorm(config.dim)
        self.temporal_attn = TemporalDecayAttention(
            config.dim, config.num_heads, rng, config.dropout
        )
        self.fuse_norm = LayerNorm(config.dim)
        self.dropout = Dropout(config.dropout, rng)
        self.classifier = Linear(config.dim, NUM_CLASSES, rng)

    def forward(
        self,
        flat_ids: np.ndarray,
        flat_mask: np.ndarray,
        time_feats: np.ndarray,
        post_mask: np.ndarray,
        hours: np.ndarray,
    ) -> Tensor:
        states = self.encoder(flat_ids, mask=flat_mask)
        h_text = mean_pool(states, flat_mask)  # (B, D)
        time_seq = self.time_norm(self.time_proj(Tensor(time_feats)))  # (B, W, D)
        attended = self.temporal_attn(time_seq, hours, mask=post_mask)
        h_time = mean_pool(attended, post_mask)
        fused = self.fuse_norm(h_text + h_time)  # residual keeps semantics
        return self.classifier(self.dropout(fused))


class RobertaRiskModel(RiskModel):
    """The §III-A4 baseline wrapped in the common RiskModel interface."""

    name = "RoBERTa"
    network_cls = RobertaRiskNetwork

    def __init__(
        self,
        config: PLMConfig | None = None,
        trainer: TrainerConfig | None = None,
        pretrain_texts: list[str] | None = None,
        pretrain_steps: int = 500,
        max_vocab: int = 3000,
        max_posts: int = 5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.config = config or PLMConfig.base()
        self.trainer = trainer or TrainerConfig(
            epochs=18, lr=1.5e-3, class_weighted=True, label_smoothing=0.05,
            patience=8, seed=seed,
        )
        self.pretrain_texts = pretrain_texts
        self.pretrain_steps = pretrain_steps
        self.max_posts = max_posts
        self.seed = seed
        self.pipeline = TextPipeline(
            max_vocab=max_vocab, max_tokens_per_post=self.config.max_len // 2
        )
        self.network: Module | None = None
        self.mlm_result: MLMResult | None = None

    def _build_network(self, rng: np.random.Generator) -> Module:
        return self.network_cls(
            vocab_size=len(self.pipeline.vocab),
            time_dim=self.pipeline.time_dim,
            config=self.config,
            rng=rng,
            pad_id=self.pipeline.vocab.pad_id,
        )

    def _forward(self, encoded: EncodedWindows, idx: np.ndarray) -> Tensor:
        vocab = self.pipeline.vocab
        flat_ids, flat_mask = collate_flat_tokens(
            encoded, idx, vocab.eos_id, vocab.pad_id, self.config.max_len
        )
        time_feats, post_mask, hours = collate_time(encoded, idx, self.max_posts)
        return self.network(flat_ids, flat_mask, time_feats, post_mask, hours)

    def _fit(self, train: list[PostWindow], validation: list[PostWindow]) -> None:
        self.pipeline.fit(train, extra_texts=self.pretrain_texts)
        rng = SeedSequenceRegistry(self.seed).get(f"{self.name}-init")
        self.network = self._build_network(rng)
        if self.pretrain_steps > 0:
            corpus = self.pretrain_texts or [
                p.text for w in train for p in w.posts
            ]
            sequences = self.pipeline.encode_texts(corpus)
            self.mlm_result = pretrain_mlm(
                self.network.encoder,
                self.pipeline.vocab,
                sequences,
                steps=self.pretrain_steps,
                max_len=self.config.max_len,
                seed=self.seed,
            )
        encoded_train = self.pipeline.encode(train)
        encoded_val = self.pipeline.encode(validation) if validation else None
        self.history = train_classifier(
            self.network, self._forward, encoded_train, encoded_val, self.trainer
        )

    def _predict(self, windows: list[PostWindow]) -> np.ndarray:
        encoded = self.pipeline.encode(windows)
        return predict_classifier(self.network, self._forward, encoded)

    def _predict_proba(self, windows: list[PostWindow]) -> np.ndarray:
        encoded = self.pipeline.encode(windows)
        return predict_proba_classifier(self.network, self._forward, encoded)
