"""Shared plumbing for the four neural baselines.

Covers text encoding (vocabulary + token ids per post), temporal feature
extraction per window, batch collation, and a generic training loop with
validation-based early stopping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import perf
from repro.core.rng import SeedSequenceRegistry
from repro.eval.metrics import macro_f1
from repro.nn import (
    Adam,
    Tensor,
    WarmupLinearDecay,
    clip_grad_norm,
    cross_entropy,
    no_grad,
    pad_sequences,
)
from repro.nn.module import Module
from repro.temporal.encoding import TimeEncoder
from repro.temporal.windows import PostWindow
from repro.text.tokenizer import WordTokenizer
from repro.text.vocab import Vocabulary


@dataclass
class EncodedWindows:
    """Neural-ready representation of a window list."""

    post_token_ids: list[list[list[int]]]  # window → post → token ids
    time_features: list[np.ndarray]        # window → (num_posts, time_dim)
    hours: list[np.ndarray]                # window → post timestamps (hours)
    labels: np.ndarray                     # (num_windows,)

    def __len__(self) -> int:
        return len(self.post_token_ids)


class TextPipeline:
    """Vocabulary construction + per-post token encoding.

    Parameters
    ----------
    max_vocab:
        Vocabulary budget (including the 5 special tokens).
    max_tokens_per_post:
        Posts are truncated to their first ``max_tokens_per_post`` tokens.
    """

    def __init__(self, max_vocab: int = 3000, max_tokens_per_post: int = 48) -> None:
        self.max_vocab = max_vocab
        self.max_tokens_per_post = max_tokens_per_post
        self._tokenizer = WordTokenizer()
        self.vocab: Vocabulary | None = None
        self._time_encoder = TimeEncoder(include_tags=True)

    @property
    def time_dim(self) -> int:
        return self._time_encoder.dim

    def fit(
        self, windows: list[PostWindow], extra_texts: list[str] | None = None
    ) -> "TextPipeline":
        """Build the vocabulary from training windows (plus, optionally,
        an unannotated pretraining corpus so MLM covers its tokens)."""
        documents = [
            self._tokenizer(post.text)
            for window in windows
            for post in window.posts
        ]
        if extra_texts:
            documents.extend(self._tokenizer(text) for text in extra_texts)
        self.vocab = Vocabulary.build(documents, max_size=self.max_vocab, min_freq=2)
        return self

    def encode_texts(self, texts: list[str]) -> list[list[int]]:
        """Token-id sequences for raw texts (pretraining corpus)."""
        if self.vocab is None:
            raise RuntimeError("TextPipeline.encode_texts before fit")
        return [self.encode_post(text) for text in texts]

    def encode_post(self, text: str) -> list[int]:
        tokens = self._tokenizer(text)[: self.max_tokens_per_post]
        ids = self.vocab.encode(tokens)
        return ids or [self.vocab.unk_id]

    def encode(self, windows: list[PostWindow]) -> EncodedWindows:
        if self.vocab is None:
            raise RuntimeError("TextPipeline.encode before fit")
        post_ids = [
            [self.encode_post(p.text) for p in w.posts] for w in windows
        ]
        time_feats = [
            self._time_encoder.encode_window(list(w.posts)) for w in windows
        ]
        hours = [
            np.array([p.created_utc.timestamp() / 3600.0 for p in w.posts])
            for w in windows
        ]
        labels = np.array([int(w.label) for w in windows], dtype=np.int64)
        return EncodedWindows(post_ids, time_feats, hours, labels)


# -- batch collation ----------------------------------------------------------


def collate_flat_tokens(
    encoded: EncodedWindows,
    idx: np.ndarray,
    eos_id: int,
    pad_id: int,
    max_len: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate each window's posts (oldest→newest, EOS separated) into
    one token sequence; keep the *last* ``max_len`` tokens."""
    seqs = []
    for i in idx:
        flat: list[int] = []
        for ids in encoded.post_token_ids[int(i)]:
            flat.extend(ids)
            flat.append(eos_id)
        seqs.append(flat)
    return pad_sequences(seqs, pad_value=pad_id, max_len=max_len)


def collate_post_grid(
    encoded: EncodedWindows,
    idx: np.ndarray,
    pad_id: int,
    max_posts: int,
    max_tokens: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(B, W, L) token grid + (B, W, L) token mask + (B, W) post mask."""
    batch = len(idx)
    ids = np.full((batch, max_posts, max_tokens), pad_id, dtype=np.int64)
    token_mask = np.zeros((batch, max_posts, max_tokens))
    post_mask = np.zeros((batch, max_posts))
    for row, i in enumerate(idx):
        posts = encoded.post_token_ids[int(i)][-max_posts:]
        for j, tokens in enumerate(posts):
            tokens = tokens[:max_tokens]
            ids[row, j, : len(tokens)] = tokens
            token_mask[row, j, : len(tokens)] = 1.0
            post_mask[row, j] = 1.0
    return ids, token_mask, post_mask


def collate_time(
    encoded: EncodedWindows, idx: np.ndarray, max_posts: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(B, W, Dt) time features + (B, W) mask + (B, W) hour stamps."""
    batch = len(idx)
    dim = encoded.time_features[0].shape[1]
    feats = np.zeros((batch, max_posts, dim))
    mask = np.zeros((batch, max_posts))
    hours = np.zeros((batch, max_posts))
    for row, i in enumerate(idx):
        f = encoded.time_features[int(i)][-max_posts:]
        h = encoded.hours[int(i)][-max_posts:]
        feats[row, : len(f)] = f
        mask[row, : len(f)] = 1.0
        hours[row, : len(h)] = h
        if len(h) < max_posts:
            hours[row, len(h):] = h[-1] if len(h) else 0.0
    return feats, mask, hours


# -- length-bucketed batching -------------------------------------------------


def flat_lengths(encoded: EncodedWindows) -> np.ndarray:
    """Flattened token count per window (posts + one EOS separator each)."""
    return np.array(
        [
            sum(len(ids) + 1 for ids in posts)
            for posts in encoded.post_token_ids
        ],
        dtype=np.int64,
    )


def bucketed_batches(
    lengths: np.ndarray, batch_size: int
) -> list[np.ndarray]:
    """Contiguous batches over a stable length-sorted order.

    Grouping similar lengths means each batch pads only to its own
    maximum instead of the global one, cutting the padded-token FLOPs of
    eval/predict. The sort is stable so the grouping (and therefore the
    output, after the order-restoring scatter in the predict helpers) is
    deterministic.
    """
    order = np.argsort(lengths, kind="stable")
    return [
        order[start : start + batch_size]
        for start in range(0, len(order), batch_size)
    ]


def pad_waste_ratio(
    lengths: np.ndarray,
    batch_size: int,
    max_len: int | None = None,
    bucket_by_length: bool = False,
) -> float:
    """Fraction of token slots that are padding under a batching policy.

    Mirrors :func:`pad_sequences` semantics: each batch is padded to its
    own longest member, lengths clipped at ``max_len``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if max_len is not None:
        lengths = np.minimum(lengths, max_len)
    if not len(lengths):
        return 0.0
    if bucket_by_length:
        batches_idx = bucketed_batches(lengths, batch_size)
    else:
        batches_idx = [
            np.arange(start, min(start + batch_size, len(lengths)))
            for start in range(0, len(lengths), batch_size)
        ]
    slots = 0
    real = 0
    for idx in batches_idx:
        chunk = lengths[idx]
        slots += int(chunk.max()) * len(chunk)
        real += int(chunk.sum())
    return 1.0 - real / max(slots, 1)


# -- training loop --------------------------------------------------------------


@dataclass
class TrainerConfig:
    """Hyper-parameters of the generic fine-tuning loop."""

    epochs: int = 8
    batch_size: int = 16
    lr: float = 2e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    warmup_fraction: float = 0.1
    class_weighted: bool = False
    label_smoothing: float = 0.0
    patience: int = 3
    seed: int = 0


@dataclass
class TrainingHistory:
    """Per-epoch loss/metric trace."""

    train_loss: list[float] = field(default_factory=list)
    val_macro_f1: list[float] = field(default_factory=list)
    best_epoch: int = 0


def train_classifier(
    module: Module,
    forward_fn,
    encoded_train: EncodedWindows,
    encoded_val: EncodedWindows | None,
    config: TrainerConfig,
    num_classes: int = 4,
) -> TrainingHistory:
    """Generic supervised training.

    ``forward_fn(encoded, idx) -> Tensor`` must return (B, C) logits for
    the requested sample indices; the loop owns batching, optimisation,
    early stopping and best-state restoration.
    """
    registry = SeedSequenceRegistry(config.seed)
    shuffle_rng = registry.get("shuffle")
    optimizer = Adam(
        module.parameters(), lr=config.lr, weight_decay=config.weight_decay,
        decoupled=config.weight_decay > 0,
    )
    n = len(encoded_train)
    steps_per_epoch = max(1, (n + config.batch_size - 1) // config.batch_size)
    total_steps = steps_per_epoch * config.epochs
    schedule = WarmupLinearDecay(
        optimizer,
        warmup_steps=max(1, int(config.warmup_fraction * total_steps)),
        total_steps=total_steps,
    )
    class_weights = None
    if config.class_weighted:
        counts = np.bincount(encoded_train.labels, minlength=num_classes)
        counts = np.maximum(counts, 1)
        class_weights = len(encoded_train.labels) / (num_classes * counts)
        class_weights = class_weights / class_weights.mean()

    history = TrainingHistory()
    best_state = None
    best_metric = -np.inf
    epochs_without_improvement = 0

    for epoch in range(config.epochs):
        module.train()
        order = shuffle_rng.permutation(n)
        epoch_loss = 0.0
        num_batches = 0
        with perf.span("nn.epoch"):
            for start in range(0, n, config.batch_size):
                idx = order[start : start + config.batch_size]
                logits = forward_fn(encoded_train, idx)
                loss = cross_entropy(
                    logits,
                    encoded_train.labels[idx],
                    class_weights=class_weights,
                    label_smoothing=config.label_smoothing,
                )
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(module.parameters(), config.clip_norm)
                schedule.step()
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
            perf.count("nn.batches", num_batches)
        history.train_loss.append(epoch_loss / num_batches)

        if encoded_val is not None and len(encoded_val):
            preds = predict_classifier(
                module, forward_fn, encoded_val, config.batch_size
            )
            metric = macro_f1(encoded_val.labels, preds)
            history.val_macro_f1.append(metric)
            if metric > best_metric:
                best_metric = metric
                best_state = module.state_dict()
                history.best_epoch = epoch
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= config.patience:
                    break
    if best_state is not None:
        module.load_state_dict(best_state)
    return history


def predict_logits(
    module: Module,
    forward_fn,
    encoded: EncodedWindows,
    batch_size: int = 32,
    bucket_by_length: bool = True,
) -> np.ndarray:
    """(N, C) eval-mode logits for every sample in ``encoded``.

    Runs under :func:`repro.nn.no_grad` (no autograd graph) and, by
    default, with length-bucketed batches: samples are grouped by
    flattened token length so short windows stop paying for the longest
    window's padding, then scattered back to the original order. Label
    predictions are bitwise identical either way; individual logit
    values may differ from the unbucketed path by float summation-order
    noise (≤ a few ulp) because padded widths change BLAS reduction
    trees.
    """
    module.eval()
    n = len(encoded)
    with perf.span("nn.predict"):
        if bucket_by_length:
            batch_indices = bucketed_batches(flat_lengths(encoded), batch_size)
        else:
            batch_indices = [
                np.arange(start, min(start + batch_size, n))
                for start in range(0, n, batch_size)
            ]
        out: np.ndarray | None = None
        with no_grad():
            for idx in batch_indices:
                logits = forward_fn(encoded, idx).data
                if out is None:
                    out = np.empty((n, logits.shape[-1]), dtype=logits.dtype)
                out[idx] = logits
        perf.count("nn.predict.batches", len(batch_indices))
    module.train()
    if out is None:
        return np.zeros((0, 1))
    return out


def predict_classifier(
    module: Module,
    forward_fn,
    encoded: EncodedWindows,
    batch_size: int = 32,
    bucket_by_length: bool = True,
) -> np.ndarray:
    """Greedy label predictions for every sample in ``encoded``."""
    if not len(encoded):
        return np.zeros(0, dtype=np.int64)
    logits = predict_logits(
        module, forward_fn, encoded, batch_size, bucket_by_length
    )
    return logits.argmax(axis=-1)


def predict_proba_classifier(
    module: Module,
    forward_fn,
    encoded: EncodedWindows,
    batch_size: int = 32,
    bucket_by_length: bool = True,
) -> np.ndarray:
    """(N, C) class probabilities (softmax over eval-mode logits)."""
    if not len(encoded):
        return np.zeros((0, 1))
    logits = predict_logits(
        module, forward_fn, encoded, batch_size, bucket_by_length
    )
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
