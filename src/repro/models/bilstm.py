"""Time-aware BiLSTM baseline (paper §III-A2).

Per-post text representations (mask-aware mean of word embeddings) are
fused with dense temporal encodings *before* the recurrence through a
multi-head attention block — "this mechanism integrates temporal features
and text representation before BiLSTM" — then a bidirectional LSTM over
the post sequence produces the user state that the classifier reads.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import SeedSequenceRegistry
from repro.core.schema import NUM_CLASSES
from repro.models.base import RiskModel
from repro.models.neural_common import (
    EncodedWindows,
    TextPipeline,
    TrainerConfig,
    collate_post_grid,
    collate_time,
    predict_classifier,
    predict_proba_classifier,
    train_classifier,
)
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    LSTM,
    MultiHeadAttention,
    Tensor,
)
from repro.nn.module import Module
from repro.temporal.windows import PostWindow


def masked_mean_embed(
    embed: Embedding, ids: np.ndarray, token_mask: np.ndarray
) -> Tensor:
    """(B, W, L) ids → (B, W, D) mask-aware mean embeddings."""
    vectors = embed(ids)  # (B, W, L, D)
    weights = Tensor(token_mask[..., None])
    summed = (vectors * weights).sum(axis=2)
    counts = Tensor(np.maximum(token_mask.sum(axis=2, keepdims=True), 1.0))
    return summed / counts


class BiLSTMNetwork(Module):
    """Embedding → temporal fusion attention → BiLSTM → classifier."""

    def __init__(
        self,
        vocab_size: int,
        time_dim: int,
        rng: np.random.Generator,
        embed_dim: int = 64,
        hidden_dim: int = 64,
        num_heads: int = 4,
        dropout: float = 0.1,
        pad_id: int = 0,
    ) -> None:
        super().__init__()
        self.pad_id = pad_id
        self.embed = Embedding(vocab_size, embed_dim, rng, padding_idx=pad_id)
        self.time_proj = Linear(time_dim, embed_dim, rng)
        self.fuse_norm = LayerNorm(embed_dim)
        self.fusion_attn = MultiHeadAttention(embed_dim, num_heads, rng, dropout)
        self.attn_norm = LayerNorm(embed_dim)
        self.lstm = LSTM(embed_dim, hidden_dim, rng, bidirectional=True)
        self.dropout = Dropout(dropout, rng)
        self.classifier = Linear(2 * hidden_dim, NUM_CLASSES, rng)

    def forward(
        self,
        ids: np.ndarray,
        token_mask: np.ndarray,
        post_mask: np.ndarray,
        time_feats: np.ndarray,
    ) -> Tensor:
        text = masked_mean_embed(self.embed, ids, token_mask)  # (B, W, D)
        time = self.time_proj(Tensor(time_feats))
        fused = self.fuse_norm(text + time)
        attended = self.fusion_attn(fused, mask=post_mask)
        fused = self.attn_norm(fused + self.dropout(attended))
        _, final_state = self.lstm(fused, mask=post_mask)
        return self.classifier(self.dropout(final_state))


class TimeAwareBiLSTM(RiskModel):
    """The §III-A2 baseline wrapped in the common RiskModel interface."""

    name = "BiLSTM"

    def __init__(
        self,
        trainer: TrainerConfig | None = None,
        embed_dim: int = 64,
        hidden_dim: int = 64,
        max_vocab: int = 1200,
        max_posts: int = 5,
        max_tokens: int = 48,
        dropout: float = 0.3,
        pretrained_embeddings=None,
        seed: int = 0,
    ) -> None:
        """``pretrained_embeddings``: optional
        :class:`repro.text.embeddings.SkipGramEmbeddings` whose vocabulary
        and vectors seed the embedding table (dims must match
        ``embed_dim``), mirroring the pretrained-word-vector initialisation
        of the paper's RNN baselines."""
        super().__init__()
        self.trainer = trainer or TrainerConfig(
            epochs=30, lr=2e-3, patience=10, weight_decay=3e-3, seed=seed
        )
        self.pretrained_embeddings = pretrained_embeddings
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.max_posts = max_posts
        self.max_tokens = max_tokens
        self.dropout = dropout
        self.seed = seed
        self.pipeline = TextPipeline(
            max_vocab=max_vocab, max_tokens_per_post=max_tokens
        )
        self.network: BiLSTMNetwork | None = None

    def _forward(self, encoded: EncodedWindows, idx: np.ndarray) -> Tensor:
        ids, token_mask, post_mask = collate_post_grid(
            encoded, idx, self.pipeline.vocab.pad_id, self.max_posts, self.max_tokens
        )
        time_feats, _, _ = collate_time(encoded, idx, self.max_posts)
        return self.network(ids, token_mask, post_mask, time_feats)

    def _fit(self, train: list[PostWindow], validation: list[PostWindow]) -> None:
        if self.pretrained_embeddings is not None:
            self.pipeline.vocab = self.pretrained_embeddings.vocab
        else:
            self.pipeline.fit(train)
        rng = SeedSequenceRegistry(self.seed).get("bilstm-init")
        self.network = BiLSTMNetwork(
            vocab_size=len(self.pipeline.vocab),
            time_dim=self.pipeline.time_dim,
            rng=rng,
            embed_dim=self.embed_dim,
            hidden_dim=self.hidden_dim,
            pad_id=self.pipeline.vocab.pad_id,
            dropout=self.dropout,
        )
        if self.pretrained_embeddings is not None:
            vectors = self.pretrained_embeddings.vectors
            if vectors.shape != self.network.embed.weight.shape:
                raise ValueError(
                    "pretrained embedding shape "
                    f"{vectors.shape} != table {self.network.embed.weight.shape}"
                )
            self.network.embed.weight.data = vectors.copy()
            self.network.embed.weight.data[self.pipeline.vocab.pad_id] = 0.0
        encoded_train = self.pipeline.encode(train)
        encoded_val = self.pipeline.encode(validation) if validation else None
        self.history = train_classifier(
            self.network, self._forward, encoded_train, encoded_val, self.trainer
        )

    def _predict(self, windows: list[PostWindow]) -> np.ndarray:
        encoded = self.pipeline.encode(windows)
        return predict_classifier(self.network, self._forward, encoded)

    def _predict_proba(self, windows: list[PostWindow]) -> np.ndarray:
        encoded = self.pipeline.encode(windows)
        return predict_proba_classifier(self.network, self._forward, encoded)
