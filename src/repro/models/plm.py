"""Pre-trained language model infrastructure: configs + MLM pretraining.

Since real RoBERTa/DeBERTa checkpoints are a gated external dependency,
the PLM baselines are *domain-pretrained from scratch*: a masked-language
-modelling pass over the large unannotated crawl pool (the 139K-post
background corpus) gives the encoders the lexical knowledge that makes
them dominate the from-scratch RNN baselines — the same mechanism, scaled
to a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import SeedSequenceRegistry
from repro.nn import (
    Adam,
    IGNORE_INDEX,
    Linear,
    Tensor,
    WarmupLinearDecay,
    clip_grad_norm,
    cross_entropy,
    pad_sequences,
)
from repro.nn.module import Module
from repro.text.vocab import Vocabulary


@dataclass(frozen=True)
class PLMConfig:
    """Size configuration of a from-scratch PLM.

    ``base`` mirrors the paper's DeBERTa-Base role; ``large`` is the
    bigger variant used by the Table IV small-data configuration.
    """

    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_hidden: int = 128
    max_len: int = 96
    dropout: float = 0.1
    max_relative_distance: int = 16

    @classmethod
    def base(cls) -> "PLMConfig":
        return cls()

    @classmethod
    def large(cls) -> "PLMConfig":
        return cls(dim=96, num_layers=3, num_heads=6, ffn_hidden=192)


@dataclass
class MLMResult:
    """Trace of a masked-LM pretraining run."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class MLMHead(Module):
    """Projection from encoder states to vocabulary logits."""

    def __init__(self, dim: int, vocab_size: int, rng: np.random.Generator):
        super().__init__()
        self.proj = Linear(dim, vocab_size, rng)

    def forward(self, states: Tensor) -> Tensor:
        return self.proj(states)


def mask_tokens(
    ids: np.ndarray,
    mask: np.ndarray,
    vocab: Vocabulary,
    rng: np.random.Generator,
    mlm_probability: float = 0.15,
) -> tuple[np.ndarray, np.ndarray]:
    """BERT-style corruption: of the selected 15%, 80% → <mask>,
    10% → random token, 10% unchanged. Returns (inputs, targets)."""
    ids = np.asarray(ids, dtype=np.int64)
    targets = np.full_like(ids, IGNORE_INDEX)
    selectable = np.asarray(mask) > 0
    selected = (rng.random(ids.shape) < mlm_probability) & selectable
    if not selected.any():
        # Guarantee at least one target so the loss is defined.
        rows, cols = np.nonzero(selectable)
        if rows.size == 0:
            raise ValueError("cannot mask an all-padding batch")
        k = int(rng.integers(rows.size))
        selected[rows[k], cols[k]] = True
    targets[selected] = ids[selected]

    inputs = ids.copy()
    roll = rng.random(ids.shape)
    to_mask = selected & (roll < 0.8)
    to_random = selected & (roll >= 0.8) & (roll < 0.9)
    inputs[to_mask] = vocab.mask_id
    num_random = int(to_random.sum())
    if num_random:
        # Draw from the non-special id range [num_special, len(vocab)).
        offset = vocab.num_special
        inputs[to_random] = rng.integers(
            len(vocab) - offset, size=num_random
        ) + offset
    return inputs, targets


def pretrain_mlm(
    encoder: Module,
    vocab: Vocabulary,
    token_sequences: list[list[int]],
    steps: int = 200,
    batch_size: int = 16,
    lr: float = 1e-3,
    max_len: int = 96,
    seed: int = 0,
) -> MLMResult:
    """Masked-language-model pretraining of ``encoder`` in place.

    ``token_sequences`` is the unannotated background corpus, already
    encoded with ``vocab``.
    """
    if not token_sequences:
        raise ValueError("no pretraining sequences supplied")
    registry = SeedSequenceRegistry(seed)
    rng = registry.get("mlm")
    head = MLMHead(encoder.dim, len(vocab.tokens()), registry.get("mlm-head"))
    params = list(encoder.parameters()) + list(head.parameters())
    optimizer = Adam(params, lr=lr)
    schedule = WarmupLinearDecay(
        optimizer, warmup_steps=max(1, steps // 10), total_steps=steps
    )
    result = MLMResult()
    n = len(token_sequences)
    for _ in range(steps):
        picks = rng.integers(n, size=batch_size)
        ids, mask = pad_sequences(
            [token_sequences[int(i)] for i in picks],
            pad_value=vocab.pad_id,
            max_len=max_len,
        )
        inputs, targets = mask_tokens(ids, mask, vocab, rng)
        states = encoder(inputs, mask=mask)
        logits = head(states)
        flat_logits = logits.reshape(-1, logits.shape[-1])
        loss = cross_entropy(flat_logits, targets.reshape(-1))
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(params, 5.0)
        schedule.step()
        optimizer.step()
        result.losses.append(loss.item())
    return result
