"""Factory for the five Table III baselines."""

from __future__ import annotations

from collections.abc import Callable

from repro.core.errors import ModelError
from repro.models.base import RiskModel
from repro.models.bilstm import TimeAwareBiLSTM
from repro.models.deberta import DebertaRiskModel
from repro.models.higru import HiGRU
from repro.models.logistic import LogisticBaseline
from repro.models.roberta import RobertaRiskModel
from repro.models.xgboost_baseline import XGBoostBaseline

_REGISTRY: dict[str, Callable[..., RiskModel]] = {
    "xgboost": XGBoostBaseline,
    "bilstm": TimeAwareBiLSTM,
    "higru": HiGRU,
    "roberta": RobertaRiskModel,
    "deberta": DebertaRiskModel,
    # Extensions beyond the paper's five baselines:
    "logreg": LogisticBaseline,
}

#: Paper order of the Table III rows.
TABLE3_ORDER = ("xgboost", "bilstm", "higru", "roberta", "deberta")


def available_models() -> list[str]:
    """Registered model keys, in Table III order."""
    return list(TABLE3_ORDER)


def create_model(name: str, **kwargs) -> RiskModel:
    """Instantiate a baseline by key (case-insensitive)."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ModelError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def register_model(name: str, factory: Callable[..., RiskModel]) -> None:
    """Register a custom model under ``name`` (overwrites existing)."""
    _REGISTRY[name.strip().lower()] = factory
