"""XGBoost baseline (paper §III-A1): boosted trees over the multi-level
feature framework, plus the dimension-level importance analysis."""

from __future__ import annotations

import numpy as np

from repro.boosting import GBMParams, GradientBoostingClassifier
from repro.models.base import RiskModel, window_labels
from repro.models.features import FeatureFramework
from repro.temporal.windows import PostWindow


class XGBoostBaseline(RiskModel):
    """Traditional-ML baseline: feature engineering + boosted trees."""

    name = "XGBoost"

    def __init__(
        self,
        params: GBMParams | None = None,
        max_tfidf_features: int = 300,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.params = params or GBMParams(
            n_estimators=50,
            learning_rate=0.25,
            max_depth=4,
            subsample=0.9,
            colsample=0.8,
            early_stopping_rounds=10,
            seed=seed,
        )
        self.framework = FeatureFramework(max_tfidf_features=max_tfidf_features)
        self.booster: GradientBoostingClassifier | None = None

    def _fit(self, train: list[PostWindow], validation: list[PostWindow]) -> None:
        x_train = self.framework.fit_transform(train)
        y_train = window_labels(train)
        eval_set = None
        if validation:
            eval_set = (self.framework.transform(validation), window_labels(validation))
        self.booster = GradientBoostingClassifier(self.params)
        self.booster.fit(x_train, y_train, eval_set=eval_set)

    def _predict(self, windows: list[PostWindow]) -> np.ndarray:
        return self.booster.predict(self.framework.transform(windows))

    def _predict_proba(self, windows: list[PostWindow]) -> np.ndarray:
        return self.booster.predict_proba(self.framework.transform(windows))

    # -- feature-importance analysis (paper §III-A1, 2nd paragraph) ------------

    def feature_importance(self) -> dict[str, float]:
        """Per-feature gain importances, keyed by feature name."""
        importances = self.booster.feature_importances_
        return dict(zip(self.framework.feature_names, importances))

    def dimension_importance(self) -> dict[str, float]:
        """Importance mass per paper dimension (time / sequence / text)."""
        importances = self.booster.feature_importances_
        return {
            dim: float(importances[cols].sum())
            for dim, cols in self.framework.dimension_slices().items()
        }

    def top_features(self, k: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(
            self.feature_importance().items(), key=lambda kv: -kv[1]
        )
        return ranked[:k]
