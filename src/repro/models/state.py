"""Flat-weight model state: export/import over the arena format.

``export_state`` turns any *fitted* registry model into a
:class:`ModelState` — skeleton pickle + JSON-able manifest + one
contiguous weight arena (see :mod:`repro.nn.arena`). The serving worker
pool puts the arena in a ``multiprocessing.shared_memory`` segment and
every worker rebuilds its model with ``import_state`` over zero-copy
``np.frombuffer`` views, so N workers share one physical copy of the
weights.

This is deliberately model-agnostic: neural models carry their weights
as :class:`~repro.nn.module.Parameter` arrays, the feature framework
carries TF-IDF statistics and logistic weights, the GBM carries binner
edges — all are plain numeric ndarrays, and everything else (tree
node graphs, vocabularies, configs) rides in the small skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ModelError, NotFittedError
from repro.models.base import RiskModel
from repro.nn import arena

__all__ = ["ModelState", "export_state", "import_state"]

#: Manifest format version for the model-level envelope.
STATE_VERSION = 1


@dataclass(frozen=True)
class ModelState:
    """A fitted model, split for cheap multi-process handoff."""

    skeleton: bytes
    manifest: dict
    arena: np.ndarray  # 1-D uint8

    @property
    def nbytes(self) -> int:
        """Arena size in bytes (the only large part of the state)."""
        return int(self.manifest["arena_nbytes"])


def export_state(model: RiskModel, cast_float32: bool = False) -> ModelState:
    """Pack a fitted model into skeleton + manifest + weight arena.

    ``cast_float32=True`` stores float64 weights as float32, halving
    the arena at the cost of float32 rounding on import (import always
    restores float64, so downstream numerics keep their dtype). The
    accuracy delta is checked in ``scripts/bench_pr5.py``; float64 is
    the default and preserves predictions bitwise.
    """
    if not isinstance(model, RiskModel):
        raise ModelError(f"export_state expects a RiskModel, got {type(model).__name__}")
    if not getattr(model, "_fitted", False):
        raise NotFittedError(
            f"{type(model).__name__} is not fitted — export_state ships "
            f"trained weights, not architectures"
        )
    packed = arena.pack(model, cast_float32=cast_float32)
    manifest = dict(packed.manifest)
    manifest["state_version"] = STATE_VERSION
    manifest["model_class"] = type(model).__name__
    manifest["model_name"] = getattr(model, "name", type(model).__name__)
    return ModelState(
        skeleton=packed.skeleton, manifest=manifest, arena=packed.arena
    )


def import_state(
    skeleton: bytes, manifest: dict, buffer, copy: bool = False
) -> RiskModel:
    """Rebuild the model exported by :func:`export_state`.

    With ``copy=False`` (the default) weight arrays are read-only
    views into ``buffer`` — the caller must keep the buffer alive as
    long as the model; this is the zero-copy path the worker pool uses
    over shared memory. ``copy=True`` gives a self-contained model with
    private writable arrays.
    """
    if manifest.get("state_version") != STATE_VERSION:
        raise ModelError(
            f"unsupported model state version {manifest.get('state_version')!r}"
        )
    model = arena.unpack(skeleton, manifest, buffer, copy=copy)
    if not isinstance(model, RiskModel):
        raise ModelError(
            f"state skeleton rebuilt a {type(model).__name__}, not a RiskModel"
        )
    if not getattr(model, "_fitted", False):
        raise ModelError("imported model is not fitted — state is corrupt")
    return model
