"""The five Table III baseline models."""

from repro.models.base import RiskModel, class_weight_vector, window_labels
from repro.models.bilstm import BiLSTMNetwork, TimeAwareBiLSTM
from repro.models.deberta import DebertaRiskModel, DebertaRiskNetwork
from repro.models.features import FeatureFramework
from repro.models.higru import HiGRU, HiGRUNetwork, TimeAwareAttention
from repro.models.neural_common import (
    EncodedWindows,
    TextPipeline,
    TrainerConfig,
    TrainingHistory,
    predict_classifier,
    train_classifier,
)
from repro.models.plm import (
    MLMHead,
    MLMResult,
    PLMConfig,
    mask_tokens,
    pretrain_mlm,
)
from repro.models.registry import (
    TABLE3_ORDER,
    available_models,
    create_model,
    register_model,
)
from repro.models.roberta import RobertaRiskModel, RobertaRiskNetwork
from repro.models.state import ModelState, export_state, import_state
from repro.models.xgboost_baseline import XGBoostBaseline

__all__ = [
    "RiskModel",
    "class_weight_vector",
    "window_labels",
    "BiLSTMNetwork",
    "TimeAwareBiLSTM",
    "DebertaRiskModel",
    "DebertaRiskNetwork",
    "FeatureFramework",
    "HiGRU",
    "HiGRUNetwork",
    "TimeAwareAttention",
    "EncodedWindows",
    "TextPipeline",
    "TrainerConfig",
    "TrainingHistory",
    "predict_classifier",
    "train_classifier",
    "MLMHead",
    "MLMResult",
    "PLMConfig",
    "mask_tokens",
    "pretrain_mlm",
    "TABLE3_ORDER",
    "available_models",
    "create_model",
    "register_model",
    "RobertaRiskModel",
    "RobertaRiskNetwork",
    "XGBoostBaseline",
    "ModelState",
    "export_state",
    "import_state",
]
