"""Time-aware DeBERTa baseline (paper §III-A5).

Differs from the RoBERTa baseline in two respects, mirroring the paper:

* the backbone uses **disentangled attention** — content/position
  decomposed logits with relative position embeddings — instead of
  absolute position embeddings;
* temporal information enters as standardised periodic features plus
  binary **time tags** (night posting, weekend), mapped by a feature
  projection layer and fused with the text representation through a
  gated concatenation head.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import NUM_CLASSES
from repro.models.plm import PLMConfig
from repro.models.roberta import RobertaRiskModel
from repro.nn import (
    DisentangledTransformerEncoder,
    Dropout,
    GELU,
    LayerNorm,
    Linear,
    Tensor,
    mean_pool,
)
from repro.nn.module import Module


class DebertaRiskNetwork(Module):
    """Disentangled encoder + temporal tag projection + gated fusion."""

    def __init__(
        self,
        vocab_size: int,
        time_dim: int,
        config: PLMConfig,
        rng: np.random.Generator,
        pad_id: int = 0,
    ) -> None:
        super().__init__()
        self.config = config
        self.encoder = DisentangledTransformerEncoder(
            vocab_size=vocab_size,
            dim=config.dim,
            num_layers=config.num_layers,
            num_heads=config.num_heads,
            max_len=config.max_len,
            rng=rng,
            ffn_hidden=config.ffn_hidden,
            dropout=config.dropout,
            pad_id=pad_id,
            max_relative_distance=config.max_relative_distance,
        )
        self.time_proj = Linear(time_dim, config.dim, rng)
        self.time_norm = LayerNorm(config.dim)
        self.fusion = Linear(2 * config.dim, config.dim, rng)
        self.fusion_act = GELU()
        self.fusion_norm = LayerNorm(config.dim)
        self.gate = Linear(2 * config.dim, config.dim, rng)
        self.dropout = Dropout(config.dropout, rng)
        self.classifier = Linear(config.dim, NUM_CLASSES, rng)

    def forward(
        self,
        flat_ids: np.ndarray,
        flat_mask: np.ndarray,
        time_feats: np.ndarray,
        post_mask: np.ndarray,
        hours: np.ndarray,  # accepted for interface parity; tags live in feats
    ) -> Tensor:
        states = self.encoder(flat_ids, mask=flat_mask)
        h_text = mean_pool(states, flat_mask)
        time_seq = self.time_norm(self.time_proj(Tensor(time_feats)))
        h_time = mean_pool(time_seq, post_mask)
        joint = Tensor.concat([h_text, h_time], axis=1)
        gate = self.gate(joint).sigmoid()
        fused = self.fusion_act(self.fusion(joint))
        fused = self.fusion_norm(gate * fused + (1.0 - gate) * h_text)
        return self.classifier(self.dropout(fused))


class DebertaRiskModel(RobertaRiskModel):
    """The §III-A5 baseline: same training recipe, DeBERTa backbone."""

    name = "DeBERTa"
    network_cls = DebertaRiskNetwork
