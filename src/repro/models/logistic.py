"""Multinomial logistic regression baseline (extension).

Not one of the paper's five baselines, but the standard linear reference
point for text classification; it rides on the same multi-level feature
framework as the XGBoost baseline and is registered as ``"logreg"``.
Implemented from scratch: softmax regression with L2 regularisation,
full-batch gradient descent with line-searched step and early stopping on
validation loss.
"""

from __future__ import annotations

import numpy as np

from repro.core.schema import NUM_CLASSES
from repro.models.base import RiskModel, window_labels
from repro.models.features import FeatureFramework
from repro.temporal.windows import PostWindow


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MultinomialLogisticRegression:
    """Softmax regression on dense features.

    Parameters
    ----------
    l2:
        Ridge penalty on weights (not the bias).
    lr / max_iter / tol:
        Gradient-descent controls; training stops when the loss improves
        by less than ``tol`` or ``max_iter`` is reached.
    """

    def __init__(
        self,
        num_classes: int = NUM_CLASSES,
        l2: float = 1e-3,
        lr: float = 0.5,
        max_iter: int = 300,
        tol: float = 1e-6,
    ) -> None:
        self.num_classes = num_classes
        self.l2 = l2
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.weights: np.ndarray | None = None  # (F+1, C) incl. bias row
        self.loss_history: list[float] = []

    def _design(self, features: np.ndarray) -> np.ndarray:
        return np.hstack([features, np.ones((len(features), 1))])

    def _loss_grad(self, x, onehot):
        logits = x @ self.weights
        probs = _softmax(logits)
        n = len(x)
        data_loss = -np.log(
            np.maximum((probs * onehot).sum(axis=1), 1e-12)
        ).mean()
        reg = 0.5 * self.l2 * float((self.weights[:-1] ** 2).sum())
        grad = x.T @ (probs - onehot) / n
        grad[:-1] += self.l2 * self.weights[:-1]
        return data_loss + reg, grad

    def fit(self, features: np.ndarray, targets: np.ndarray):
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.int64)
        # Standardise columns for conditioning; remember the transform.
        self._mu = features.mean(axis=0)
        self._sigma = features.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        x = self._design((features - self._mu) / self._sigma)
        onehot = np.eye(self.num_classes)[targets]
        self.weights = np.zeros((x.shape[1], self.num_classes))
        self.loss_history = []
        lr = self.lr
        previous = np.inf
        for _ in range(self.max_iter):
            loss, grad = self._loss_grad(x, onehot)
            self.loss_history.append(loss)
            if previous - loss < self.tol:
                break
            # Backtracking: halve the step while it would overshoot.
            while lr > 1e-4:
                candidate = self.weights - lr * grad
                saved = self.weights
                self.weights = candidate
                new_loss, _ = self._loss_grad(x, onehot)
                if new_loss <= loss:
                    break
                self.weights = saved
                lr *= 0.5
            previous = loss
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("predict before fit")
        features = np.asarray(features, dtype=np.float64)
        x = self._design((features - self._mu) / self._sigma)
        return _softmax(x @ self.weights)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)


class LogisticBaseline(RiskModel):
    """Linear reference model over the multi-level feature framework."""

    name = "LogReg"

    def __init__(
        self,
        l2: float = 1e-3,
        max_tfidf_features: int = 300,
        seed: int = 0,  # accepted for registry symmetry; model is convex
    ) -> None:
        super().__init__()
        self.framework = FeatureFramework(max_tfidf_features=max_tfidf_features)
        self.classifier = MultinomialLogisticRegression(l2=l2)

    def _fit(self, train: list[PostWindow], validation: list[PostWindow]) -> None:
        x = self.framework.fit_transform(train)
        self.classifier.fit(x, window_labels(train))

    def _predict(self, windows: list[PostWindow]) -> np.ndarray:
        return self.classifier.predict(self.framework.transform(windows))

    def _predict_proba(self, windows: list[PostWindow]) -> np.ndarray:
        return self.classifier.predict_proba(self.framework.transform(windows))
