"""Multi-level feature engineering framework (paper §III-A1).

Three dimensions, exactly as the paper lays out:

* **time** — posting-interval statistics, time-of-day distribution,
  behaviour-pattern features (:mod:`repro.temporal.features`);
* **text** — TF-IDF of the window text, statistical and linguistic
  features of the latest post;
* **sequence** — sliding-window statistics over the history: change
  trends (content-length deltas), historical cumulative features.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NotFittedError
from repro.temporal.features import TemporalStats, temporal_stats
from repro.text.stats import TextStats, stats_matrix, text_stats
from repro.text.tfidf import TfidfVectorizer
from repro.temporal.windows import PostWindow


def _sequence_features(window: PostWindow) -> np.ndarray:
    """Change-trend and cumulative features over the window."""
    lengths = np.array([len(p.text) for p in window.posts], dtype=np.float64)
    n = len(lengths)
    prev_mean = lengths[:-1].mean() if n > 1 else lengths[0]
    prev_std = lengths[:-1].std() if n > 2 else 0.0
    last = lengths[-1]
    length_delta = last - prev_mean
    length_z = length_delta / (prev_std + 1.0)
    trend = float(np.polyfit(np.arange(n), lengths, 1)[0]) if n >= 2 else 0.0
    return np.array(
        [
            float(n),                    # window occupancy
            lengths.mean(),
            lengths.std(),
            last,
            length_delta,                # sudden change in content length
            length_z,
            trend,
            np.log1p(lengths.sum()),     # historical cumulative volume
        ]
    )


_SEQUENCE_NAMES = [
    "seq_window_size",
    "seq_len_mean",
    "seq_len_std",
    "seq_len_last",
    "seq_len_delta",
    "seq_len_z",
    "seq_len_trend",
    "seq_cum_log_volume",
]


class FeatureFramework:
    """Fits on training windows, transforms windows into dense matrices.

    The column layout is ``[time | sequence | text-stats | tfidf]``;
    :meth:`dimension_slices` exposes the per-dimension column ranges so
    feature-importance mass can be attributed to the paper's three
    dimensions.
    """

    def __init__(self, max_tfidf_features: int = 300) -> None:
        self.max_tfidf_features = max_tfidf_features
        self._tfidf: TfidfVectorizer | None = None
        self._names: list[str] | None = None

    @staticmethod
    def _window_text(window: PostWindow) -> str:
        return "\n".join(window.texts)

    def fit(self, windows: list[PostWindow]) -> "FeatureFramework":
        self._tfidf = TfidfVectorizer(max_features=self.max_tfidf_features)
        self._tfidf.fit(self._window_text(w) for w in windows)
        self._names = (
            ["time_" + n for n in TemporalStats.feature_names()]
            + _SEQUENCE_NAMES
            + ["stat_" + n for n in TextStats.feature_names()]
            + ["tfidf_" + n for n in self._tfidf.feature_names()]
        )
        return self

    def transform(self, windows: list[PostWindow]) -> np.ndarray:
        if self._tfidf is None:
            raise NotFittedError("FeatureFramework.transform before fit")
        time_block = np.vstack(
            [temporal_stats(list(w.posts)).as_vector() for w in windows]
        )
        seq_block = np.vstack([_sequence_features(w) for w in windows])
        stat_block = stats_matrix([w.latest.text for w in windows])
        tfidf_block = self._tfidf.transform(
            self._window_text(w) for w in windows
        ).toarray()
        return np.hstack([time_block, seq_block, stat_block, tfidf_block])

    def fit_transform(self, windows: list[PostWindow]) -> np.ndarray:
        return self.fit(windows).transform(windows)

    @property
    def feature_names(self) -> list[str]:
        if self._names is None:
            raise NotFittedError("FeatureFramework not fitted")
        return list(self._names)

    def dimension_slices(self) -> dict[str, slice]:
        """Column ranges of the three paper dimensions."""
        if self._tfidf is None:
            raise NotFittedError("FeatureFramework not fitted")
        n_time = len(TemporalStats.feature_names())
        n_seq = len(_SEQUENCE_NAMES)
        n_stat = len(TextStats.feature_names())
        n_tfidf = len(self._tfidf.vocabulary_)
        return {
            "time": slice(0, n_time),
            "sequence": slice(n_time, n_time + n_seq),
            "text": slice(n_time + n_seq, n_time + n_seq + n_stat + n_tfidf),
        }
