"""Hierarchical GRU baseline (paper §III-A3).

Two-level architecture: a bottom bidirectional GRU encodes the tokens of
each post (with residual connection and layer normalisation), a top GRU
models the user's post sequence, and a time-aware attention layer pools
the top-level states using the temporal features of each post.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import SeedSequenceRegistry
from repro.core.schema import NUM_CLASSES
from repro.models.base import RiskModel
from repro.models.neural_common import (
    EncodedWindows,
    TextPipeline,
    TrainerConfig,
    collate_post_grid,
    collate_time,
    predict_classifier,
    predict_proba_classifier,
    train_classifier,
)
from repro.nn import Dropout, Embedding, GRU, LayerNorm, Linear, Tensor
from repro.nn.module import Module
from repro.temporal.windows import PostWindow


class TimeAwareAttention(Module):
    """Additive attention whose scores mix content and temporal features.

    ``score_t = vᵀ tanh(W_h h_t + W_τ τ_t)`` — the "dynamic allocation of
    attention weights" over historical posts, conditioned on inter-post
    intervals, periodicity, and cumulative statistics (all inside τ).
    """

    def __init__(
        self, hidden_dim: int, time_dim: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.w_h = Linear(hidden_dim, hidden_dim, rng)
        self.w_t = Linear(time_dim, hidden_dim, rng)
        self.v = Linear(hidden_dim, 1, rng, bias=False)

    def forward(
        self, states: Tensor, time_feats: np.ndarray, post_mask: np.ndarray
    ) -> Tensor:
        mixed = (self.w_h(states) + self.w_t(Tensor(time_feats))).tanh()
        scores = self.v(mixed)[:, :, 0]  # (B, W)
        scores = scores.masked_fill(np.asarray(post_mask) == 0, -1e9)
        weights = scores.softmax(axis=-1)  # (B, W)
        return (states * weights.reshape(*weights.shape, 1)).sum(axis=1)


class HiGRUNetwork(Module):
    """Bottom token-GRU → residual+LN → top post-GRU → time attention."""

    def __init__(
        self,
        vocab_size: int,
        time_dim: int,
        rng: np.random.Generator,
        embed_dim: int = 64,
        bottom_hidden: int = 48,
        top_hidden: int = 64,
        dropout: float = 0.1,
        pad_id: int = 0,
    ) -> None:
        super().__init__()
        self.pad_id = pad_id
        self.embed = Embedding(vocab_size, embed_dim, rng, padding_idx=pad_id)
        self.bottom = GRU(embed_dim, bottom_hidden, rng, bidirectional=True)
        self.bottom_proj = Linear(2 * bottom_hidden, embed_dim, rng)
        self.bottom_norm = LayerNorm(embed_dim)
        self.top = GRU(embed_dim, top_hidden, rng, bidirectional=False)
        # Skip connection from post representation around the top GRU.
        self.skip_proj = Linear(embed_dim, top_hidden, rng, bias=False)
        self.top_norm = LayerNorm(top_hidden)
        self.attention = TimeAwareAttention(top_hidden, time_dim, rng)
        self.dropout = Dropout(dropout, rng)
        self.classifier = Linear(top_hidden, NUM_CLASSES, rng)

    def forward(
        self,
        ids: np.ndarray,
        token_mask: np.ndarray,
        post_mask: np.ndarray,
        time_feats: np.ndarray,
    ) -> Tensor:
        batch, num_posts, num_tokens = ids.shape
        flat_ids = ids.reshape(batch * num_posts, num_tokens)
        flat_mask = token_mask.reshape(batch * num_posts, num_tokens)
        tokens = self.embed(flat_ids)  # (B·W, L, D)
        _, post_state = self.bottom(tokens, mask=flat_mask)  # (B·W, 2H)
        post_vec = self.bottom_proj(post_state)  # (B·W, D)
        # Residual from the mean token embedding, then layer norm.
        weights = Tensor(flat_mask[:, :, None])
        mean_embed = (tokens * weights).sum(axis=1) / Tensor(
            np.maximum(flat_mask.sum(axis=1, keepdims=True), 1.0)
        )
        post_vec = self.bottom_norm(post_vec + mean_embed)
        post_seq = post_vec.reshape(batch, num_posts, -1)

        top_out, _ = self.top(post_seq, mask=post_mask)  # (B, W, H)
        top_out = self.top_norm(top_out + self.skip_proj(post_seq))
        pooled = self.attention(top_out, time_feats, post_mask)
        return self.classifier(self.dropout(pooled))


class HiGRU(RiskModel):
    """The §III-A3 baseline wrapped in the common RiskModel interface."""

    name = "HiGRU"

    def __init__(
        self,
        trainer: TrainerConfig | None = None,
        embed_dim: int = 64,
        bottom_hidden: int = 48,
        top_hidden: int = 64,
        max_vocab: int = 3000,
        max_posts: int = 5,
        max_tokens: int = 40,
        dropout: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.trainer = trainer or TrainerConfig(
            epochs=18, lr=3e-3, patience=6, seed=seed
        )
        self.embed_dim = embed_dim
        self.bottom_hidden = bottom_hidden
        self.top_hidden = top_hidden
        self.max_posts = max_posts
        self.max_tokens = max_tokens
        self.dropout = dropout
        self.seed = seed
        self.pipeline = TextPipeline(
            max_vocab=max_vocab, max_tokens_per_post=max_tokens
        )
        self.network: HiGRUNetwork | None = None

    def _forward(self, encoded: EncodedWindows, idx: np.ndarray) -> Tensor:
        ids, token_mask, post_mask = collate_post_grid(
            encoded, idx, self.pipeline.vocab.pad_id, self.max_posts, self.max_tokens
        )
        time_feats, _, _ = collate_time(encoded, idx, self.max_posts)
        return self.network(ids, token_mask, post_mask, time_feats)

    def _fit(self, train: list[PostWindow], validation: list[PostWindow]) -> None:
        self.pipeline.fit(train)
        rng = SeedSequenceRegistry(self.seed).get("higru-init")
        self.network = HiGRUNetwork(
            vocab_size=len(self.pipeline.vocab),
            time_dim=self.pipeline.time_dim,
            rng=rng,
            embed_dim=self.embed_dim,
            bottom_hidden=self.bottom_hidden,
            top_hidden=self.top_hidden,
            pad_id=self.pipeline.vocab.pad_id,
            dropout=self.dropout,
        )
        encoded_train = self.pipeline.encode(train)
        encoded_val = self.pipeline.encode(validation) if validation else None
        self.history = train_classifier(
            self.network, self._forward, encoded_train, encoded_val, self.trainer
        )

    def _predict(self, windows: list[PostWindow]) -> np.ndarray:
        encoded = self.pipeline.encode(windows)
        return predict_classifier(self.network, self._forward, encoded)

    def _predict_proba(self, windows: list[PostWindow]) -> np.ndarray:
        encoded = self.pipeline.encode(windows)
        return predict_proba_classifier(self.network, self._forward, encoded)
