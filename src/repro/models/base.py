"""Common interface of the five baseline risk models."""

from __future__ import annotations

import abc

import numpy as np

from repro.core.errors import ModelError, NotFittedError
from repro.core.schema import NUM_CLASSES
from repro.temporal.windows import PostWindow


class RiskModel(abc.ABC):
    """A user-level risk classifier over :class:`PostWindow` samples.

    Every baseline implements ``fit`` on (train, validation) windows and
    ``predict`` returning integer risk levels, so the evaluation harness
    treats all five identically.
    """

    #: Display name used in result tables.
    name: str = "model"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def _fit(
        self, train: list[PostWindow], validation: list[PostWindow]
    ) -> None:
        """Model-specific training."""

    @abc.abstractmethod
    def _predict(self, windows: list[PostWindow]) -> np.ndarray:
        """Model-specific inference (returns int labels)."""

    def _predict_proba(self, windows: list[PostWindow]) -> np.ndarray:
        """Model-specific probability scoring; override where supported."""
        raise ModelError(f"{self.name}: probabilities not supported")

    def fit(
        self,
        train: list[PostWindow],
        validation: list[PostWindow] | None = None,
    ) -> "RiskModel":
        if not train:
            raise ModelError(f"{self.name}: empty training set")
        self._fit(train, validation or [])
        self._fitted = True
        return self

    def predict(self, windows: list[PostWindow]) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError(f"{self.name}: predict before fit")
        if not windows:
            return np.zeros(0, dtype=np.int64)
        return np.asarray(self._predict(windows), dtype=np.int64)

    def predict_proba(self, windows: list[PostWindow]) -> np.ndarray:
        """(N, C) class probabilities; the serving engine's scoring path."""
        if not self._fitted:
            raise NotFittedError(f"{self.name}: predict_proba before fit")
        if not windows:
            return np.zeros((0, NUM_CLASSES))
        return np.asarray(self._predict_proba(windows), dtype=np.float64)


def window_labels(windows: list[PostWindow]) -> np.ndarray:
    """Integer label vector of a window list."""
    return np.array([int(w.label) for w in windows], dtype=np.int64)


def class_weight_vector(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Inverse-frequency class weights, normalised to mean 1."""
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    weights = len(labels) / (num_classes * counts)
    return weights / weights.mean()
