"""Dataset card generation (Datasheets-for-Datasets style).

A dataset release of this sensitivity needs standardised documentation.
This module renders a Markdown datasheet for any :class:`RSD15K` instance:
motivation, composition, collection/annotation process, privacy measures,
and recommended/ discouraged uses — populated with the *measured*
statistics of the concrete instance rather than hand-written numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RSD15K
from repro.core.schema import RiskLevel


@dataclass(frozen=True)
class DatacardOptions:
    """Rendering options."""

    title: str = "RSD-15K (synthetic rebuild)"
    maintainer: str = "repro reproduction harness"
    include_ethics: bool = True


def _composition_section(dataset: RSD15K) -> str:
    dist = dataset.label_distribution()
    rows = "\n".join(
        f"| {label} | {count} | {pct:.2f}% |"
        for label, count, pct in dist.as_rows()
    )
    counts = np.array(sorted(dataset.posts_per_user().values()))
    return f"""## Composition

* **Instances:** {dataset.num_posts} posts from {dataset.num_users} users,
  each post labelled with one of four C-SSRS-derived risk levels.
* **Per-user structure:** complete chronological posting histories
  (median {int(np.median(counts))} posts/user, max {int(counts.max())},
  {100 * float((counts < 20).mean()):.1f}% of users below 20 posts).

| Label | Count | Share |
|---|---|---|
{rows}
"""


def _collection_section(dataset: RSD15K) -> str:
    times = [p.created_utc for p in dataset.posts]
    start, end = min(times), max(times)
    kappa = f"{dataset.kappa:.4f}" if dataset.kappa is not None else "n/a"
    return f"""## Collection & annotation

* **Source:** simulated Reddit r/SuicideWatch crawl,
  {start.date()} – {end.date()} (substituting the gated original corpus).
* **Pre-processing:** relevance filtering, noise stripping, exact and
  MinHash near-duplicate removal, chronological partitioning per user.
* **Annotation:** three trained annotators under the paper's protocol —
  95% training gate, uncertainty reporting, 30% jointly labelled with
  3-way voting, daily 10% expert inspections.
* **Agreement:** Fleiss' kappa = {kappa} on the joint subset.
"""


def _privacy_section() -> str:
    return """## Privacy & ethics

* All author handles and post identifiers are salted hashes; user-history
  linkability is preserved but re-identification is not possible from the
  released data (verified by an automated audit at build time).
* Residual PII patterns (e-mails, phone numbers, user mentions) are
  scrubbed from post text.
* This instance is **fully synthetic** — no real user contributed any
  text — and exists to exercise the processing/benchmark pipeline.

### Intended uses

* Benchmarking user-level suicide-risk classifiers and risk-evolution
  models; methods research on temporal mental-health signals.

### Discouraged uses

* Any deployment that makes decisions about real individuals without
  clinical oversight; training generative models to imitate crisis
  language; attempts to link records to real accounts.
"""


def render_datacard(
    dataset: RSD15K, options: DatacardOptions | None = None
) -> str:
    """Render the full Markdown datasheet."""
    options = options or DatacardOptions()
    parts = [
        f"# Dataset card — {options.title}",
        "",
        f"Maintainer: {options.maintainer}",
        "",
        "## Motivation",
        "",
        "Early detection of suicide risk from social-media posting "
        "behaviour, with user-level longitudinal labels supporting "
        "risk-evolution modelling (RSD-15K, ICDE 2025).",
        "",
        _composition_section(dataset),
        _collection_section(dataset),
    ]
    if options.include_ethics:
        parts.append(_privacy_section())
    return "\n".join(parts)


def write_datacard(
    dataset: RSD15K, path, options: DatacardOptions | None = None
) -> None:
    """Write the datasheet next to a released dataset."""
    from pathlib import Path

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_datacard(dataset, options), encoding="utf-8")
