"""High-level risk-assessment API.

:class:`RiskAssessor` is the library's front door for downstream users:
fit any registered baseline on an :class:`~repro.core.dataset.RSD15K`
dataset, then assess new user histories — including tracking how a user's
predicted risk evolves post by post (the dataset's headline use case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SplitConfig, WindowConfig
from repro.core.dataset import RSD15K
from repro.core.errors import ModelError, NotFittedError
from repro.core.schema import RiskLevel
from repro.corpus.models import RedditPost, UserHistory
from repro.eval.metrics import EvalReport
from repro.models.registry import create_model
from repro.temporal.windows import PostWindow, build_window


@dataclass(frozen=True)
class RiskTimepoint:
    """Predicted risk after observing a user's history up to one post."""

    when: float  # POSIX timestamp
    level: RiskLevel


class RiskAssessor:
    """Train a baseline and assess user-level suicide risk.

    Example
    -------
    >>> assessor = RiskAssessor("xgboost")
    >>> assessor.fit(dataset)            # doctest: +SKIP
    >>> assessor.assess(history)         # doctest: +SKIP
    <RiskLevel.IDEATION: 1>
    """

    def __init__(
        self,
        model: str = "xgboost",
        window_config: WindowConfig | None = None,
        **model_kwargs,
    ) -> None:
        self.model_name = model
        self.window_config = window_config or WindowConfig()
        self.model = create_model(model, **model_kwargs)
        self.validation_report: EvalReport | None = None

    def fit(
        self, dataset: RSD15K, split_config: SplitConfig | None = None
    ) -> "RiskAssessor":
        """Fit on the dataset's train split; records a validation report."""
        splits = dataset.splits(self.window_config, split_config)
        self.model.fit(splits.train, splits.validation)
        if splits.validation:
            y_true = np.array([int(w.label) for w in splits.validation])
            y_pred = self.model.predict(splits.validation)
            self.validation_report = EvalReport.compute(
                self.model.name, y_true, y_pred
            )
        return self

    def fit_windows(
        self, train: list[PostWindow], validation: list[PostWindow] | None = None
    ) -> "RiskAssessor":
        """Fit directly on prepared windows (advanced use)."""
        self.model.fit(train, validation)
        return self

    # -- inference ------------------------------------------------------------

    def assess_window(self, window: PostWindow) -> RiskLevel:
        pred = self.model.predict([window])
        return RiskLevel(int(pred[0]))

    def assess(self, history: UserHistory) -> RiskLevel:
        """Risk level of a user given their (chronological) history."""
        if not history.posts:
            raise ModelError("cannot assess an empty history")
        window = build_window(
            history, self.window_config, label=RiskLevel.INDICATOR
        )
        return self.assess_window(window)

    def risk_trajectory(self, history: UserHistory) -> list[RiskTimepoint]:
        """Predicted risk after each successive post — risk evolution."""
        if not history.posts:
            raise ModelError("cannot assess an empty history")
        out = []
        for i in range(1, len(history.posts) + 1):
            partial = UserHistory(
                author=history.author, posts=list(history.posts[:i])
            )
            window = build_window(
                partial, self.window_config, label=RiskLevel.INDICATOR
            )
            level = self.assess_window(window)
            out.append(
                RiskTimepoint(when=history.posts[i - 1].timestamp, level=level)
            )
        return out

    def alert(
        self, history: UserHistory, threshold: RiskLevel = RiskLevel.BEHAVIOR
    ) -> bool:
        """Whether the user's current assessed risk meets the threshold."""
        return self.assess(history) >= threshold
