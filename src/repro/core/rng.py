"""Deterministic random-number management.

All stochastic components of the library (corpus generation, annotator
simulation, model initialisation, data shuffling) draw from
:class:`numpy.random.Generator` instances derived from a single seed via
named streams, so that fixing one integer makes the entire pipeline —
including every experiment in the paper-reproduction harness —
bit-reproducible while keeping the subsystems statistically independent.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used by the paper-reproduction experiments when none is given.
DEFAULT_SEED = 15_000


def derive_seed(seed: int, name: str) -> int:
    """Derive a stable 64-bit sub-seed for a named stream.

    The derivation hashes ``(seed, name)`` with SHA-256 so that streams for
    different names are statistically independent and insensitive to the
    order in which they are created.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stream(seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named stream."""
    return np.random.default_rng(derive_seed(seed, name))


class SeedSequenceRegistry:
    """Hands out independent generators derived from one master seed.

    Example
    -------
    >>> reg = SeedSequenceRegistry(seed=7)
    >>> corpus_rng = reg.get("corpus")
    >>> model_rng = reg.get("model-init")
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = int(seed)
        self._generators: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so consumption of randomness is shared within a stream.
        """
        if name not in self._generators:
            self._generators[name] = stream(self.seed, name)
        return self._generators[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (resets the stream)."""
        self._generators[name] = stream(self.seed, name)
        return self._generators[name]

    def spawn(self, name: str) -> "SeedSequenceRegistry":
        """Create a child registry whose master seed derives from ``name``."""
        return SeedSequenceRegistry(derive_seed(self.seed, name) % (2**31))
