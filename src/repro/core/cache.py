"""Content-addressed build cache for :func:`repro.core.pipeline.build_dataset`.

A build is fully determined by its configuration (the corpus config carries
scale and seed), so a sha256 fingerprint of the canonicalised config plus a
cache schema version addresses one on-disk entry per distinct build:

    $REPRO_CACHE_DIR/<key[:2]>/<key>/
        dataset.jsonl   released posts + labels (the standard serialisation)
        pretrain.npz    unannotated background texts
        stages.pkl      corpus / campaign / report + oracle-label sidecar
        meta.json       schema version, fingerprint, kappa, build report

``dataset.jsonl`` and ``pretrain.npz`` reuse the existing release
serialisation; the JSONL schema intentionally drops the simulation-only
``oracle_label``, so ``stages.pkl`` carries it (the experiments that audit
annotation quality need it back). Entries are written to a temp directory
and renamed into place, so readers never see a partial entry. Any change to
the on-disk layout must bump :data:`SCHEMA_VERSION`, which invalidates every
existing entry.

The cache is opt-in: it is disabled unless ``REPRO_CACHE_DIR`` is set (or a
:class:`BuildCache` is passed explicitly). Corrupt or stale entries are
treated as misses and rebuilt.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass
from datetime import datetime
from enum import Enum
from pathlib import Path

import numpy as np

from repro import perf
from repro.core.config import AnnotationConfig, CorpusConfig
from repro.core.dataset import RSD15K
from repro.core.pipeline import BuildResult, build_dataset

#: Environment variable naming the cache root; unset disables the cache.
CACHE_ENV = "REPRO_CACHE_DIR"

#: Bump on any change to the entry layout or the fingerprint payload.
SCHEMA_VERSION = 1


# -- fingerprinting -----------------------------------------------------------


def _jsonable(value):
    """Deterministic JSON-safe view of config values."""
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, datetime):
        return value.isoformat()
    if isinstance(value, dict):
        items = {_jsonable_key(k): _jsonable(v) for k, v in value.items()}
        return dict(sorted(items.items()))
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _jsonable_key(key) -> str:
    return key.name if isinstance(key, Enum) else str(key)


def fingerprint(
    corpus_config: CorpusConfig,
    annotation_config: AnnotationConfig,
    anonymise: bool,
    near_dedup: bool,
) -> str:
    """Content address of one build: sha256 over the canonical config JSON
    (every corpus/annotation field, including scale and seed) plus the
    pipeline flags and the cache schema version."""
    payload = {
        "schema": SCHEMA_VERSION,
        "corpus": _jsonable(dataclasses.asdict(corpus_config)),
        "annotation": _jsonable(dataclasses.asdict(annotation_config)),
        "anonymise": bool(anonymise),
        "near_dedup": bool(near_dedup),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- the cache ----------------------------------------------------------------


@dataclass
class BuildCache:
    """Directory-backed store of :class:`BuildResult` entries."""

    root: Path

    @classmethod
    def from_env(cls) -> "BuildCache | None":
        """Cache at ``$REPRO_CACHE_DIR``, or None when the variable is unset
        or empty (caching disabled)."""
        path = os.environ.get(CACHE_ENV, "").strip()
        if not path:
            return None
        return cls(root=Path(path))

    def entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def has(self, key: str) -> bool:
        return (self.entry_dir(key) / "meta.json").exists()

    def load(self, key: str) -> BuildResult | None:
        """Reconstruct a cached build, or None on miss / corrupt entry."""
        entry = self.entry_dir(key)
        meta_path = entry / "meta.json"
        if not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if meta.get("schema") != SCHEMA_VERSION:
                return None
            dataset = RSD15K.from_jsonl(
                entry / "dataset.jsonl", kappa=meta.get("kappa")
            )
            with np.load(entry / "pretrain.npz", allow_pickle=False) as npz:
                dataset.pretrain_texts = [str(t) for t in npz["texts"]]
            with open(entry / "stages.pkl", "rb") as handle:
                stages = pickle.load(handle)
            # from_jsonl conflates oracle and campaign labels (the release
            # schema has no oracle column); restore the simulation truth.
            oracle = stages["oracle_labels"]
            dataset.posts = [
                dataclasses.replace(p, oracle_label=oracle.get(p.post_id))
                for p in dataset.posts
            ]
            return BuildResult(
                dataset=dataset,
                corpus=stages["corpus"],
                campaign=stages["campaign"],
                report=stages["report"],
            )
        except Exception:
            # Deliberate degradation: a corrupt/stale entry is a cache
            # miss and the build below rewrites it — but count the event
            # so silent cache corruption shows up in telemetry.
            perf.count("cache.read_error")
            return None

    def store(self, key: str, result: BuildResult) -> None:
        """Persist a build under ``key`` (atomic via temp-dir rename)."""
        entry = self.entry_dir(key)
        tmp = entry.parent / (entry.name + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        result.dataset.to_jsonl(tmp / "dataset.jsonl")
        np.savez_compressed(
            tmp / "pretrain.npz",
            texts=np.asarray(result.dataset.pretrain_texts, dtype=np.str_),
        )
        with open(tmp / "stages.pkl", "wb") as handle:
            pickle.dump(
                {
                    "corpus": result.corpus,
                    "campaign": result.campaign,
                    "report": result.report,
                    "oracle_labels": {
                        p.post_id: p.oracle_label for p in result.dataset.posts
                    },
                },
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kappa": result.dataset.kappa,
            "num_posts": result.dataset.num_posts,
            "num_users": result.dataset.num_users,
            "report": result.report.as_dict(),
        }
        (tmp / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
        )
        if entry.exists():
            shutil.rmtree(entry)
        tmp.rename(entry)

    def evict(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        entry = self.entry_dir(key)
        if not entry.exists():
            return False
        shutil.rmtree(entry)
        return True


# -- read-through entry point -------------------------------------------------


def build_dataset_cached(
    corpus_config: CorpusConfig | None = None,
    annotation_config: AnnotationConfig | None = None,
    anonymise: bool = True,
    near_dedup: bool = True,
    cache: BuildCache | None = None,
) -> BuildResult:
    """:func:`build_dataset` behind the content-addressed cache.

    With no ``cache`` argument, uses ``$REPRO_CACHE_DIR`` (and degrades to
    a plain build when that is unset). A hit skips the entire pipeline.
    """
    corpus_config = corpus_config or CorpusConfig()
    annotation_config = annotation_config or AnnotationConfig(
        seed=corpus_config.seed
    )
    cache = cache if cache is not None else BuildCache.from_env()
    if cache is None:
        return build_dataset(
            corpus_config, annotation_config, anonymise, near_dedup
        )
    key = fingerprint(corpus_config, annotation_config, anonymise, near_dedup)
    with perf.span("cache.load"):
        cached = cache.load(key)
    if cached is not None:
        perf.count("cache.hits")
        return cached
    perf.count("cache.misses")
    result = build_dataset(
        corpus_config, annotation_config, anonymise, near_dedup
    )
    with perf.span("cache.store"):
        cache.store(key, result)
    return result
