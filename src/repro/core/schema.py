"""The RSD-15K label schema.

The paper adapts the Columbia Suicide Severity Rating Scale (C-SSRS) into
four ordered, mutually exclusive user/post-level risk labels:

* **Indicator (IN)** — no evidence of risk from the author (includes third
  party mentions and explicit denials).
* **Ideation (ID)** — suicidal thoughts or desires without concrete action.
* **Behavior (BR)** — preparatory acts, planning, or self-harm.
* **Attempt (AT)** — reference to a past suicide attempt.

The ordering Indicator < Ideation < Behavior < Attempt reflects increasing
severity and is relied on by the risk-evolution analyses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import SchemaError


class RiskLevel(enum.IntEnum):
    """Four-level suicide risk label, ordered by severity."""

    INDICATOR = 0
    IDEATION = 1
    BEHAVIOR = 2
    ATTEMPT = 3

    @property
    def short(self) -> str:
        """Two-letter code used in the paper's tables (IN/ID/BR/AT)."""
        return _SHORT_CODES[self]

    @property
    def label(self) -> str:
        """Human-readable capitalised name, e.g. ``"Ideation"``."""
        return self.name.capitalize()

    @classmethod
    def from_any(cls, value: "RiskLevel | int | str") -> "RiskLevel":
        """Coerce an int, name, short code, or RiskLevel into a RiskLevel.

        Raises
        ------
        SchemaError
            If the value does not identify one of the four labels.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            raise SchemaError(f"booleans are not risk levels: {value!r}")
        if isinstance(value, int):
            try:
                return cls(value)
            except ValueError as exc:
                raise SchemaError(f"invalid risk level int: {value}") from exc
        if isinstance(value, str):
            text = value.strip().upper()
            if text in _BY_SHORT:
                return _BY_SHORT[text]
            try:
                return cls[text]
            except KeyError as exc:
                raise SchemaError(f"invalid risk level name: {value!r}") from exc
        raise SchemaError(f"cannot interpret {value!r} as a RiskLevel")


_SHORT_CODES = {
    RiskLevel.INDICATOR: "IN",
    RiskLevel.IDEATION: "ID",
    RiskLevel.BEHAVIOR: "BR",
    RiskLevel.ATTEMPT: "AT",
}
_BY_SHORT = {code: level for level, code in _SHORT_CODES.items()}

#: All four labels in severity order.
ALL_LEVELS: tuple[RiskLevel, ...] = (
    RiskLevel.INDICATOR,
    RiskLevel.IDEATION,
    RiskLevel.BEHAVIOR,
    RiskLevel.ATTEMPT,
)

#: Number of classes in the task.
NUM_CLASSES = len(ALL_LEVELS)

#: Target marginal label distribution of the released dataset (Table I).
TABLE1_DISTRIBUTION: dict[RiskLevel, float] = {
    RiskLevel.ATTEMPT: 809 / 14_613,
    RiskLevel.BEHAVIOR: 2_056 / 14_613,
    RiskLevel.IDEATION: 7_133 / 14_613,
    RiskLevel.INDICATOR: 4_615 / 14_613,
}

#: Published dataset size (posts / users) from the paper.
PAPER_NUM_POSTS = 14_613
PAPER_NUM_USERS = 1_265


@dataclass(frozen=True)
class AnnotationCriterion:
    """One labelling rule from the annotation guideline (§II-B1)."""

    level: RiskLevel
    summary: str
    includes: tuple[str, ...] = ()
    excludes: tuple[str, ...] = ()


#: The guideline distilled from the paper, used to brief simulated annotators
#: and exposed so downstream users can render the codebook.
ANNOTATION_GUIDELINE: tuple[AnnotationCriterion, ...] = (
    AnnotationCriterion(
        RiskLevel.ATTEMPT,
        "The post mentions a previous suicide attempt by the author, "
        "regardless of current ideation.",
        includes=("past self-inflicted act intended to result in death",),
    ),
    AnnotationCriterion(
        RiskLevel.BEHAVIOR,
        "Preparatory acts or behaviours associated with self-harm or "
        "planning an attempt; goes beyond verbalisation.",
        includes=(
            "acquiring means",
            "writing a farewell note",
            "preparing for death",
            "self-harm without explicit lethal intent",
        ),
    ),
    AnnotationCriterion(
        RiskLevel.IDEATION,
        "Suicidal thoughts or desires without concrete actions.",
        includes=(
            "passive death wish",
            "active wish to end one's life",
            "hypothetical or unrealistic plans",
        ),
    ),
    AnnotationCriterion(
        RiskLevel.INDICATOR,
        "No suicidal risk from the author.",
        includes=(
            "third-party risk mentions",
            "explicit denial of intent",
            "concern about another person",
        ),
    ),
)


def guideline_for(level: RiskLevel | int | str) -> AnnotationCriterion:
    """Return the annotation criterion for a label."""
    level = RiskLevel.from_any(level)
    for criterion in ANNOTATION_GUIDELINE:
        if criterion.level == level:
            return criterion
    raise SchemaError(f"no guideline for {level!r}")  # pragma: no cover


@dataclass(frozen=True)
class LabelDistribution:
    """Counts per risk level with convenience accessors."""

    counts: dict[RiskLevel, int] = field(default_factory=dict)

    @classmethod
    def from_labels(cls, labels) -> "LabelDistribution":
        """Tally an iterable of labels (any coercible representation)."""
        counts = {level: 0 for level in ALL_LEVELS}
        for raw in labels:
            counts[RiskLevel.from_any(raw)] += 1
        return cls(counts=counts)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, level: RiskLevel | int | str) -> float:
        """Fraction of samples carrying ``level`` (0.0 if empty)."""
        if self.total == 0:
            return 0.0
        return self.counts.get(RiskLevel.from_any(level), 0) / self.total

    def as_rows(self) -> list[tuple[str, int, float]]:
        """Rows of (label, count, percentage) in the paper's Table I order."""
        order = (
            RiskLevel.ATTEMPT,
            RiskLevel.BEHAVIOR,
            RiskLevel.IDEATION,
            RiskLevel.INDICATOR,
        )
        return [
            (level.label, self.counts.get(level, 0), 100.0 * self.fraction(level))
            for level in order
        ]
