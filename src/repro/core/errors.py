"""Exception hierarchy for the repro library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch a single base class at the
boundary of their application.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SchemaError(ReproError):
    """A label or record does not conform to the RSD-15K schema."""


class CorpusError(ReproError):
    """The corpus substrate was used incorrectly (unknown subreddit, ...)."""


class PreprocessError(ReproError):
    """A pre-processing step received data it cannot handle."""


class AnnotationError(ReproError):
    """The annotation platform or campaign was driven into an invalid state."""


class TrainingGateError(AnnotationError):
    """An annotator failed to pass the pre-campaign training gate."""


class InspectionError(AnnotationError):
    """A daily quality inspection fell below the required accuracy."""


class VocabularyError(ReproError):
    """A token id or token string is unknown to the vocabulary."""


class ShapeError(ReproError):
    """A tensor operation received operands of incompatible shapes."""


class GradientError(ReproError):
    """Backpropagation was requested on a graph in an invalid state."""


class ModelError(ReproError):
    """A model was used before fit/training or with invalid inputs."""


class NotFittedError(ModelError):
    """Predict was called on an estimator that has not been fitted."""


class DatasetError(ReproError):
    """The RSD-15K dataset object was constructed or queried incorrectly."""


class SplitError(DatasetError):
    """A train/validation/test split request is infeasible or leaky."""


class PrivacyError(ReproError):
    """An anonymisation guarantee would be violated."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
