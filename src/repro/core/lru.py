"""A small thread-safe bounded LRU cache.

Shared by the serving engine's tokenization cache and
:class:`repro.text.bpe.BPETokenizer`'s merge cache, both of which see
unbounded distinct keys under real traffic and previously grew without
limit. Eviction is least-recently-used; every access updates recency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with LRU eviction and hit/miss accounting.

    ``get``/``put`` are O(1) and guarded by a lock, so one cache may be
    shared between the micro-batcher thread and synchronous callers.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __getstate__(self) -> dict[str, Any]:
        # Locks are process-local; a pickled cache (e.g. riding inside a
        # model skeleton handed to a worker process) gets a fresh one.
        with self._lock:
            state = self.__dict__.copy()
            state["_data"] = self._data.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def stats(self) -> dict[str, int]:
        """Snapshot of size and access counters."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
