"""End-to-end dataset construction: crawl → preprocess → annotate → release.

Orchestrates every substrate in paper order and returns the
:class:`~repro.core.dataset.RSD15K` artefact plus a build report covering
each stage. This is the one-call entry point the quickstart example and
all experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.annotation.process import AnnotationCampaign, CampaignResult
from repro.core.config import AnnotationConfig, CorpusConfig
from repro.core.dataset import RSD15K
from repro.core.privacy import Anonymizer, audit_anonymisation
from repro.corpus.generator import CorpusGenerator, SyntheticCorpus
from repro.preprocess.pipeline import PreprocessPipeline, PreprocessReport


@dataclass
class BuildReport:
    """Stage-by-stage accounting of one dataset build."""

    raw_posts: int = 0
    annotated_slice_posts: int = 0
    preprocess: PreprocessReport = field(default_factory=PreprocessReport)
    campaign_kappa: float = 0.0
    campaign_label_noise: float = 0.0
    campaign_escalated: int = 0
    final_posts: int = 0
    final_users: int = 0

    def as_dict(self) -> dict:
        return {
            "raw_posts": self.raw_posts,
            "annotated_slice_posts": self.annotated_slice_posts,
            **{f"pre_{k}": v for k, v in self.preprocess.as_dict().items()},
            "campaign_kappa": self.campaign_kappa,
            "campaign_label_noise": self.campaign_label_noise,
            "campaign_escalated": self.campaign_escalated,
            "final_posts": self.final_posts,
            "final_users": self.final_users,
        }


@dataclass
class BuildResult:
    """Everything :func:`build_dataset` produced."""

    dataset: RSD15K
    corpus: SyntheticCorpus
    campaign: CampaignResult
    report: BuildReport


def build_dataset(
    corpus_config: CorpusConfig | None = None,
    annotation_config: AnnotationConfig | None = None,
    anonymise: bool = True,
    near_dedup: bool = True,
) -> BuildResult:
    """Run the full §II pipeline and return the released dataset.

    Parameters
    ----------
    corpus_config:
        Corpus size/signal parameters (defaults to the paper-scale corpus;
        use ``CorpusConfig().scaled(f)`` for smaller builds).
    annotation_config:
        Campaign parameters (defaults reproduce κ ≈ 0.72).
    anonymise:
        Apply the §IV anonymisation (hash identifiers, scrub PII) and
        audit it before releasing.
    near_dedup:
        Run MinHash near-duplicate removal (slower; exact dedup always on).
    """
    corpus_config = corpus_config or CorpusConfig()
    annotation_config = annotation_config or AnnotationConfig(
        seed=corpus_config.seed
    )

    with perf.span("build"):
        with perf.span("corpus"):
            corpus = CorpusGenerator(corpus_config).generate()
        report = BuildReport(raw_posts=len(corpus.raw_posts))

        annotated_slice = corpus.annotated_posts
        report.annotated_slice_posts = len(annotated_slice)

        with perf.span("preprocess"):
            pre = PreprocessPipeline(enable_near_dedup=near_dedup).run(
                annotated_slice
            )
        report.preprocess = pre.report

        with perf.span("annotation"):
            campaign = AnnotationCampaign(annotation_config).run(pre.posts)
        report.campaign_kappa = campaign.kappa
        report.campaign_label_noise = campaign.label_noise
        report.campaign_escalated = campaign.num_escalated

        labelled_posts = [p for p in pre.posts if p.post_id in campaign.labels]
        labels = dict(campaign.labels)

        if anonymise:
            with perf.span("anonymise"):
                anonymizer = Anonymizer(salt=f"rsd15k-{corpus_config.seed}")
                anonymised = anonymizer.anonymise(labelled_posts)
                audit_anonymisation(labelled_posts, anonymised)
                labels = {
                    anonymizer.pseudonym(post_id, "p"): label
                    for post_id, label in labels.items()
                }
                labelled_posts = anonymised

        with perf.span("dataset"):
            background = [p.text for p in corpus.background_posts]
            dataset = RSD15K(
                posts=labelled_posts,
                labels=labels,
                pretrain_texts=background,
                kappa=campaign.kappa,
            )
    report.final_posts = dataset.num_posts
    report.final_users = dataset.num_users
    # Stage gauges for the metrics exporters: corpus size in vs released
    # size out is the first thing to check when a build report looks off.
    perf.gauge("build.raw_posts", report.raw_posts)
    perf.gauge("build.final_posts", report.final_posts)
    perf.gauge("build.final_users", report.final_users)
    return BuildResult(
        dataset=dataset, corpus=corpus, campaign=campaign, report=report
    )
