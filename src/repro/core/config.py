"""Configuration objects for corpus generation and experiments.

Defaults mirror the statistics the paper publishes so that a default build
regenerates a corpus with the same shape as RSD-15K.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.core.errors import ConfigError
from repro.core.rng import DEFAULT_SEED
from repro.core.schema import (
    PAPER_NUM_POSTS,
    PAPER_NUM_USERS,
    TABLE1_DISTRIBUTION,
    RiskLevel,
)


def _utc(year: int, month: int, day: int) -> datetime:
    return datetime(year, month, day, tzinfo=timezone.utc)


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of the synthetic RSD-15K corpus.

    Attributes
    ----------
    num_users:
        Number of annotated users to generate (paper: 1,265).
    target_posts:
        Approximate number of annotated posts (paper: 14,613). The
        generator draws posts-per-user from a truncated power law and
        rescales to land close to this target.
    raw_pool_users / raw_pool_posts:
        Size of the *unannotated* crawl pool the annotated slice is drawn
        from (paper: 76,186 users / 139,455 posts). Scaled down by
        ``scale`` together with everything else.
    label_mix:
        Target marginal label distribution (paper Table I).
    start / end:
        Crawl window (paper: 01/2020 – 12/2021).
    scale:
        Global down-scaling factor in (0, 1]; applied to users and post
        pools so tests and benchmarks can run on small corpora.
    lexical_strength:
        Probability that a generated sentence carries class-specific
        lexical signal; controls task difficulty.
    hard_fraction:
        Of the signal sentences, fraction drawn from the *hard* banks that
        reuse adjacent-class vocabulary and carry the label in word order,
        negation, person, and tense only. The main dial separating
        order-blind from order-aware models (Table III's gap).
    temporal_strength:
        Strength of class-conditioned temporal signal (night-posting skew
        and shrinking inter-post gaps at higher severity).
    """

    num_users: int = PAPER_NUM_USERS
    target_posts: int = PAPER_NUM_POSTS
    raw_pool_users: int = 76_186
    raw_pool_posts: int = 139_455
    label_mix: dict[RiskLevel, float] = field(
        default_factory=lambda: dict(TABLE1_DISTRIBUTION)
    )
    start: datetime = field(default_factory=lambda: _utc(2020, 1, 1))
    end: datetime = field(default_factory=lambda: _utc(2021, 12, 31))
    scale: float = 1.0
    lexical_strength: float = 0.7
    hard_fraction: float = 0.95
    ambiguity_noise: float = 0.15
    temporal_strength: float = 0.7
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale}")
        if self.num_users <= 0 or self.target_posts <= 0:
            raise ConfigError("num_users and target_posts must be positive")
        if self.start >= self.end:
            raise ConfigError("start must precede end")
        total = sum(self.label_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"label_mix must sum to 1.0, got {total}")
        if not 0.0 <= self.lexical_strength <= 1.0:
            raise ConfigError("lexical_strength must be in [0, 1]")
        if not 0.0 <= self.hard_fraction <= 1.0:
            raise ConfigError("hard_fraction must be in [0, 1]")
        if not 0.0 <= self.ambiguity_noise <= 1.0:
            raise ConfigError("ambiguity_noise must be in [0, 1]")
        if not 0.0 <= self.temporal_strength <= 1.0:
            raise ConfigError("temporal_strength must be in [0, 1]")

    def scaled(self, scale: float) -> "CorpusConfig":
        """Return a copy with every population size multiplied by ``scale``."""
        if not 0.0 < scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {scale}")
        return dataclasses.replace(
            self,
            scale=scale,
            num_users=max(12, int(round(self.num_users * scale))),
            target_posts=max(60, int(round(self.target_posts * scale))),
            raw_pool_users=max(40, int(round(self.raw_pool_users * scale))),
            raw_pool_posts=max(120, int(round(self.raw_pool_posts * scale))),
        )


@dataclass(frozen=True)
class SplitConfig:
    """User-disjoint train/validation/test split (paper: 80/10/10)."""

    train: float = 0.8
    validation: float = 0.1
    test: float = 0.1
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        total = self.train + self.validation + self.test
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"split fractions must sum to 1.0, got {total}")
        if min(self.train, self.validation, self.test) <= 0:
            raise ConfigError("all split fractions must be positive")


@dataclass(frozen=True)
class WindowConfig:
    """Posting-window used for user-level prediction.

    The paper's "stable version has 5 window elements": the user label is
    the risk level of the latest post, and models see up to ``size`` most
    recent posts inside the time window.
    """

    size: int = 5
    max_span_days: float = 365.0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigError("window size must be >= 1")
        if self.max_span_days <= 0:
            raise ConfigError("max_span_days must be positive")


@dataclass(frozen=True)
class AnnotationConfig:
    """Parameters of the simulated annotation campaign (§II-B2/C1)."""

    num_annotators: int = 3
    num_supervisors: int = 3
    training_samples: int = 100
    training_accuracy_gate: float = 0.95
    daily_quota: int = 500
    joint_fraction: float = 0.30
    inspection_fraction: float = 0.10
    inspection_accuracy_gate: float = 0.85
    uncertainty_rate: float = 0.04
    #: Post-training per-item accuracy of a simulated annotator. 0.94 is
    #: calibrated so the campaign reproduces the paper's Fleiss κ = 0.7206
    #: on the 30% jointly-labelled subset (and comfortably passes the 85%
    #: daily inspections, as the paper reports all inspections did).
    annotator_accuracy: float = 0.94
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_annotators < 3:
            raise ConfigError("voting requires at least 3 annotators")
        if not 0.0 < self.joint_fraction < 1.0:
            raise ConfigError("joint_fraction must be in (0, 1)")
        if not 0.0 < self.annotator_accuracy <= 1.0:
            raise ConfigError("annotator_accuracy must be in (0, 1]")
        if not 0.0 <= self.uncertainty_rate < 1.0:
            raise ConfigError("uncertainty_rate must be in [0, 1)")
        for name in ("training_accuracy_gate", "inspection_accuracy_gate"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1]")
