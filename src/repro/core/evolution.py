"""Risk-evolution analytics over labelled user histories.

The dataset's selling point is that it "retains complete user posting time
sequence information, supporting modeling the dynamic evolution of suicide
risk". This module quantifies that evolution: per-user escalation events,
dwell times per level, and population-level transition statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import RSD15K
from repro.core.schema import NUM_CLASSES, RiskLevel


@dataclass(frozen=True)
class EscalationEvent:
    """One upward move in a user's labelled risk sequence."""

    author: str
    when: float  # POSIX timestamp of the escalated post
    from_level: RiskLevel
    to_level: RiskLevel
    gap_hours: float  # time since the previous post

    @property
    def severity_jump(self) -> int:
        return int(self.to_level) - int(self.from_level)


@dataclass(frozen=True)
class UserEvolution:
    """Summary of one user's labelled trajectory."""

    author: str
    levels: tuple[RiskLevel, ...]
    escalations: tuple[EscalationEvent, ...]
    peak: RiskLevel
    final: RiskLevel

    @property
    def ever_escalated(self) -> bool:
        return bool(self.escalations)

    @property
    def monotonic_decline(self) -> bool:
        """True if the user's risk never rose across their history."""
        return all(
            b <= a for a, b in zip(self.levels, self.levels[1:])
        )


def user_evolution(dataset: RSD15K, author: str) -> UserEvolution:
    """Trajectory summary of one author."""
    history = dataset.histories()[author]
    levels = tuple(dataset.label_of(p) for p in history.posts)
    events = []
    for prev, post in zip(history.posts, history.posts[1:]):
        from_level = dataset.label_of(prev)
        to_level = dataset.label_of(post)
        if to_level > from_level:
            events.append(
                EscalationEvent(
                    author=author,
                    when=post.timestamp,
                    from_level=from_level,
                    to_level=to_level,
                    gap_hours=(post.timestamp - prev.timestamp) / 3600.0,
                )
            )
    return UserEvolution(
        author=author,
        levels=levels,
        escalations=tuple(events),
        peak=max(levels),
        final=levels[-1],
    )


def transition_counts(dataset: RSD15K) -> np.ndarray:
    """(4, 4) matrix of consecutive label transitions across all users."""
    counts = np.zeros((NUM_CLASSES, NUM_CLASSES), dtype=np.int64)
    for history in dataset.histories().values():
        labels = [int(dataset.label_of(p)) for p in history.posts]
        for a, b in zip(labels, labels[1:]):
            counts[a, b] += 1
    return counts


def empirical_transition_matrix(dataset: RSD15K) -> np.ndarray:
    """Row-normalised transition probabilities (rows with no mass stay 0)."""
    counts = transition_counts(dataset).astype(np.float64)
    totals = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        probs = np.where(totals > 0, counts / totals, 0.0)
    return probs


@dataclass(frozen=True)
class EvolutionReport:
    """Population-level evolution statistics."""

    num_users: int
    users_with_escalation: int
    escalations_per_user: float
    median_escalation_gap_hours: float
    transition_matrix: np.ndarray

    @property
    def escalation_prevalence(self) -> float:
        return self.users_with_escalation / max(1, self.num_users)


def analyse(dataset: RSD15K) -> EvolutionReport:
    """Population evolution report over the whole dataset."""
    authors = sorted({p.author for p in dataset.posts})
    escalated_users = 0
    total_events = 0
    gaps: list[float] = []
    for author in authors:
        evolution = user_evolution(dataset, author)
        if evolution.ever_escalated:
            escalated_users += 1
            total_events += len(evolution.escalations)
            gaps.extend(e.gap_hours for e in evolution.escalations)
    return EvolutionReport(
        num_users=len(authors),
        users_with_escalation=escalated_users,
        escalations_per_user=total_events / max(1, len(authors)),
        median_escalation_gap_hours=float(np.median(gaps)) if gaps else 0.0,
        transition_matrix=empirical_transition_matrix(dataset),
    )
