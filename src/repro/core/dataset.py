"""The RSD-15K dataset object — the paper's primary artefact.

Wraps the annotated corpus (posts + campaign labels + per-user
chronological histories) behind the API the benchmark and the examples
consume: label distributions, posts-per-user statistics, user-level
prediction windows, user-disjoint splits, and JSONL round-tripping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.core.config import SplitConfig, WindowConfig
from repro.core.errors import DatasetError
from repro.core.schema import LabelDistribution, RiskLevel
from repro.corpus.models import RedditPost, UserHistory
from repro.eval.splits import WindowSplits, split_windows
from repro.preprocess.partition import group_by_user
from repro.temporal.windows import PostWindow, build_windows


@dataclass
class RSD15K:
    """Annotated user-level suicide-risk dataset.

    Attributes
    ----------
    posts:
        All labelled posts (clean, chronological order).
    labels:
        post_id → final campaign label.
    pretrain_texts:
        Unannotated background texts (for language-model pretraining);
        empty when loaded from disk unless they were exported too.
    kappa:
        Fleiss κ of the annotation campaign that produced the labels.
    """

    posts: list[RedditPost]
    labels: dict[str, RiskLevel]
    pretrain_texts: list[str] = field(default_factory=list)
    kappa: float | None = None

    def __post_init__(self) -> None:
        missing = [p.post_id for p in self.posts if p.post_id not in self.labels]
        if missing:
            raise DatasetError(
                f"{len(missing)} posts lack labels (e.g. {missing[:3]})"
            )

    # -- statistics --------------------------------------------------------------

    @property
    def num_posts(self) -> int:
        return len(self.posts)

    @property
    def num_users(self) -> int:
        return len({p.author for p in self.posts})

    def label_of(self, post: RedditPost) -> RiskLevel:
        return self.labels[post.post_id]

    def label_distribution(self) -> LabelDistribution:
        """Table I: post-level label counts."""
        return LabelDistribution.from_labels(
            self.labels[p.post_id] for p in self.posts
        )

    def posts_per_user(self) -> dict[str, int]:
        """Fig 1: posting volume per author."""
        counts: dict[str, int] = {}
        for post in self.posts:
            counts[post.author] = counts.get(post.author, 0) + 1
        return counts

    def histories(self) -> dict[str, UserHistory]:
        """Per-user chronological histories."""
        return group_by_user(self.posts)

    def most_active_users(self, k: int = 20) -> list[str]:
        """Fig 4: top-k authors by post volume (ties broken by name)."""
        counts = self.posts_per_user()
        return sorted(counts, key=lambda a: (-counts[a], a))[:k]

    # -- task construction ---------------------------------------------------------

    def windows(self, config: WindowConfig | None = None) -> list[PostWindow]:
        """User-level prediction windows (label = latest post's label)."""
        return build_windows(self.histories(), config, labels=self.labels)

    def splits(
        self,
        window_config: WindowConfig | None = None,
        split_config: SplitConfig | None = None,
    ) -> WindowSplits:
        """User-disjoint 80/10/10 window splits."""
        return split_windows(self.windows(window_config), split_config)

    # -- persistence ------------------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> None:
        """Write one JSON record per post (schema mirrors the release)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for post in self.posts:
                record = {
                    "post_id": post.post_id,
                    "user_id": post.author,
                    "subreddit": post.subreddit,
                    "title": post.title,
                    "body": post.body,
                    "created_utc": post.created_utc.timestamp(),
                    "label": self.labels[post.post_id].short,
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path, kappa: float | None = None) -> "RSD15K":
        """Load a dataset written by :meth:`to_jsonl`."""
        posts: list[RedditPost] = []
        labels: dict[str, RiskLevel] = {}
        with open(Path(path), encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DatasetError(f"bad JSON on line {line_no}") from exc
                label = RiskLevel.from_any(record["label"])
                post = RedditPost(
                    post_id=record["post_id"],
                    author=record["user_id"],
                    subreddit=record.get("subreddit", "SuicideWatch"),
                    title=record.get("title", ""),
                    body=record.get("body", ""),
                    created_utc=datetime.fromtimestamp(
                        float(record["created_utc"]), tz=timezone.utc
                    ),
                    oracle_label=label,
                )
                posts.append(post)
                labels[post.post_id] = label
        posts.sort(key=lambda p: (p.created_utc, p.post_id))
        return cls(posts=posts, labels=labels, kappa=kappa)
