"""Privacy protection and anonymisation (paper §IV).

"All personal identifiers (such as usernames, specific post identifiers,
and other metadata) were removed. After this anonymization process, there
is no way to re-identify users from the data."

The anonymiser replaces author handles and post ids with salted hashes
(stable within one run so histories stay linkable), scrubs residual PII
patterns from text, and ships an audit that proves no original identifier
survives.
"""

from __future__ import annotations

import hashlib
import re

from repro.core.errors import PrivacyError
from repro.corpus.models import RedditPost

_EMAIL_RE = re.compile(r"\b[\w.+-]+@[\w-]+\.[\w.]+\b")
_PHONE_RE = re.compile(r"\b(?:\+?\d[\s-]?){7,15}\b")
_MENTION_RE = re.compile(r"(?:^|\s)/?u/[\w-]+|@[A-Za-z_]\w+")
_SSN_RE = re.compile(r"\b\d{3}-\d{2}-\d{4}\b")

REDACTION = "[REDACTED]"


def scrub_text(text: str) -> str:
    """Remove e-mails, phone numbers, reddit/user mentions, SSN-shaped ids."""
    text = _EMAIL_RE.sub(REDACTION, text)
    text = _SSN_RE.sub(REDACTION, text)
    text = _MENTION_RE.sub(f" {REDACTION}", text)
    text = _PHONE_RE.sub(REDACTION, text)
    return text


class Anonymizer:
    """Salted, per-run-stable pseudonymisation of authors and post ids."""

    def __init__(self, salt: str) -> None:
        if not salt:
            raise PrivacyError("anonymiser requires a non-empty salt")
        self._salt = salt

    def pseudonym(self, value: str, prefix: str) -> str:
        digest = hashlib.sha256(f"{self._salt}:{value}".encode()).hexdigest()
        return f"{prefix}_{digest[:12]}"

    def anonymise_post(self, post: RedditPost) -> RedditPost:
        """Post with hashed author/id and scrubbed text."""
        from dataclasses import replace

        return replace(
            post,
            author=self.pseudonym(post.author, "anon"),
            post_id=self.pseudonym(post.post_id, "p"),
            title=scrub_text(post.title),
            body=scrub_text(post.body),
        )

    def anonymise(self, posts: list[RedditPost]) -> list[RedditPost]:
        return [self.anonymise_post(p) for p in posts]


def audit_anonymisation(
    original: list[RedditPost], anonymised: list[RedditPost]
) -> None:
    """Verify no original author handle or post id survives.

    Raises
    ------
    PrivacyError
        If any original identifier appears in the anonymised output
        (as metadata or inside post text), or linkability was broken
        (author multiplicity changed).
    """
    if len(original) != len(anonymised):
        raise PrivacyError("anonymisation changed the number of posts")
    original_ids = {p.post_id for p in original}
    original_authors = {p.author for p in original}
    for post in anonymised:
        if post.author in original_authors:
            raise PrivacyError(f"raw author survives: {post.author}")
        if post.post_id in original_ids:
            raise PrivacyError(f"raw post id survives: {post.post_id}")
        lowered = post.text.lower()
        for author in original_authors:
            if author.lower() in lowered:
                raise PrivacyError(f"author {author} leaked into text")
    # Linkability: the author partition must be preserved 1:1.
    def partition(posts: list[RedditPost]) -> dict[str, int]:
        sizes: dict[str, int] = {}
        for p in posts:
            sizes[p.author] = sizes.get(p.author, 0) + 1
        return sizes

    if sorted(partition(original).values()) != sorted(
        partition(anonymised).values()
    ):
        raise PrivacyError("anonymisation broke user-history linkability")
