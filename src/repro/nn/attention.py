"""Attention mechanisms: standard multi-head and DeBERTa-style
disentangled attention with relative position encodings."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.errors import ShapeError
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

NEG_INF = -1e9


def split_heads(x: Tensor, num_heads: int) -> Tensor:
    """(B, T, D) → (B, h, T, D/h)."""
    batch, steps, dim = x.shape
    if dim % num_heads:
        raise ShapeError(f"model dim {dim} not divisible by {num_heads} heads")
    return x.reshape(batch, steps, num_heads, dim // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: Tensor) -> Tensor:
    """(B, h, T, dh) → (B, T, D)."""
    batch, heads, steps, dh = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, steps, heads * dh)


def attention_mask_bias(mask: np.ndarray) -> np.ndarray:
    """(B, T) keep-mask → (B, 1, 1, T) boolean *pad* mask for masked_fill."""
    mask = np.asarray(mask)
    return (mask == 0)[:, None, None, :]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads.

    Supports self-attention (`query is key is value`) and cross-attention
    (the temporal-fusion layers of the RoBERTa/BiLSTM baselines attend
    from text representations to temporal features).
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ShapeError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.w_q = Linear(dim, dim, rng)
        self.w_k = Linear(dim, dim, rng)
        self.w_v = Linear(dim, dim, rng)
        self.w_o = Linear(dim, dim, rng)
        self.dropout = Dropout(dropout, rng)
        self._scale = 1.0 / np.sqrt(dim // num_heads)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        q = split_heads(self.w_q(query), self.num_heads)
        k = split_heads(self.w_k(key), self.num_heads)
        v = split_heads(self.w_v(value), self.num_heads)
        scores = (q @ k.swapaxes(-1, -2)) * self._scale
        if mask is not None:
            scores = scores.masked_fill(attention_mask_bias(mask), NEG_INF)
        weights = self.dropout(scores.softmax(axis=-1))
        context = weights @ v
        return self.w_o(merge_heads(context))


class TemporalDecayAttention(Module):
    """Multi-head attention whose scores decay with temporal distance.

    Used by the RoBERTa baseline: "the calculation of attention weights
    takes into account the decay effect of temporal distance". A learnable
    per-head rate λ subtracts ``λ · |Δt|`` (log-hours) from the logits.
    """

    def __init__(
        self, dim: int, num_heads: int, rng: np.random.Generator, dropout: float = 0.0
    ) -> None:
        super().__init__()
        self.inner = MultiHeadAttention(dim, num_heads, rng, dropout)
        self.decay = Parameter(np.full(num_heads, 0.1))
        self.num_heads = num_heads

    def forward(
        self,
        x: Tensor,
        timestamps_hours: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        """``timestamps_hours``: (B, T) event times in hours."""
        inner = self.inner
        q = split_heads(inner.w_q(x), self.num_heads)
        k = split_heads(inner.w_k(x), self.num_heads)
        v = split_heads(inner.w_v(x), self.num_heads)
        scores = (q @ k.swapaxes(-1, -2)) * inner._scale
        delta = np.abs(
            timestamps_hours[:, :, None] - timestamps_hours[:, None, :]
        )  # (B, T, T)
        log_delta = Tensor(np.log1p(delta)[:, None, :, :])  # (B, 1, T, T)
        rates = self.decay.reshape(1, self.num_heads, 1, 1)
        scores = scores - rates * log_delta
        if mask is not None:
            scores = scores.masked_fill(attention_mask_bias(mask), NEG_INF)
        weights = inner.dropout(scores.softmax(axis=-1))
        return inner.w_o(merge_heads(weights @ v))


def relative_position_index(length: int, max_distance: int) -> np.ndarray:
    """(T, T) matrix of clipped relative-position bucket ids.

    ``index[i, j] = clip(j - i, ±max_distance) + max_distance`` ∈
    [0, 2·max_distance].
    """
    pos = np.arange(length)
    rel = pos[None, :] - pos[:, None]
    return np.clip(rel, -max_distance, max_distance) + max_distance


@lru_cache(maxsize=256)
def _gather_indices(length: int, max_distance: int) -> tuple[np.ndarray, np.ndarray]:
    """Memoised ``(rows, index)`` gather pair for disentangled attention.

    Serving runs the same sequence lengths over and over; rebuilding the
    (T, T) bucket matrix and row arange per forward is pure waste. The
    arrays are marked read-only because they are shared across calls.
    """
    idx = relative_position_index(length, max_distance)
    rows = np.arange(length)[:, None]
    idx.setflags(write=False)
    rows.setflags(write=False)
    return rows, idx


class DisentangledSelfAttention(Module):
    """DeBERTa-style disentangled attention.

    The attention logit decomposes into content-to-content,
    content-to-position and position-to-content terms, with *relative*
    position embeddings shared across the layer:

    ``A[i,j] = Qc_i·Kc_j + Qc_i·Kr_{δ(i,j)} + Kc_j·Qr_{δ(j,i)}``

    scaled by ``1/sqrt(3·d_h)`` as in the paper (He et al., 2021).
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        max_relative_distance: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise ShapeError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.max_relative_distance = max_relative_distance
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng)
        self.w_k = Linear(dim, dim, rng)
        self.w_v = Linear(dim, dim, rng)
        self.w_o = Linear(dim, dim, rng)
        num_buckets = 2 * max_relative_distance + 1
        self.rel_embed = Parameter(
            rng.normal(0.0, 0.02, size=(num_buckets, dim))
        )
        self.w_qr = Linear(dim, dim, rng, bias=False)
        self.w_kr = Linear(dim, dim, rng, bias=False)
        self.dropout = Dropout(dropout, rng)
        self._scale = 1.0 / np.sqrt(3.0 * self.head_dim)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        batch, steps, _ = x.shape
        qc = split_heads(self.w_q(x), self.num_heads)  # (B,h,T,dh)
        kc = split_heads(self.w_k(x), self.num_heads)
        v = split_heads(self.w_v(x), self.num_heads)

        rel = Tensor.ensure(self.rel_embed)
        kr = self.w_kr(rel)  # (buckets, D)
        qr = self.w_qr(rel)
        buckets = kr.shape[0]
        kr = kr.reshape(buckets, self.num_heads, self.head_dim).transpose(1, 0, 2)
        qr = qr.reshape(buckets, self.num_heads, self.head_dim).transpose(1, 0, 2)

        rows, idx = _gather_indices(steps, self.max_relative_distance)

        c2c = qc @ kc.swapaxes(-1, -2)  # (B,h,T,T)
        # content→position: Qc_i · Kr_{δ(i,j)}
        c2p_all = qc @ kr.swapaxes(-1, -2)  # (B,h,T,buckets)
        c2p = c2p_all[:, :, rows, idx]  # (B,h,T,T)
        # position→content: Kc_j · Qr_{δ(j,i)} with δ(j,i) = clip(i−j)+R,
        # i.e. bucket idx[j, i]; gather per j then transpose to [b,h,i,j].
        p2c_all = kc @ qr.swapaxes(-1, -2)  # (B,h,T,buckets)
        p2c_j = p2c_all[:, :, rows, idx]  # p2c_j[b,h,j,i]
        p2c = p2c_j.swapaxes(-1, -2)

        scores = (c2c + c2p + p2c) * self._scale
        if mask is not None:
            scores = scores.masked_fill(attention_mask_bias(mask), NEG_INF)
        weights = self.dropout(scores.softmax(axis=-1))
        return self.w_o(merge_heads(weights @ v))
