"""Flat weight arena: pack an object graph's arrays into one buffer.

Handing a fitted model to N worker processes by pickling the whole
object would copy every weight N+1 times (pickle bytes, pipe, unpickle)
and double peak memory per worker. The arena splits the model into
three parts instead:

* **arena** — every numeric ``ndarray`` in the object graph, laid out
  back-to-back (64-byte aligned) in one contiguous ``uint8`` buffer.
  This is the only large artifact, and it is shareable: put it in a
  ``multiprocessing.shared_memory`` segment and every worker maps the
  same physical pages.
* **manifest** — a small JSON-able dict describing each slot (offset,
  shape, dtype, stored dtype). Arrays are deduplicated by identity, so
  tied weights stay tied after reconstruction.
* **skeleton** — a pickle of the object graph with the arrays punched
  out (via the pickle ``persistent_id`` hook). Kilobytes, not
  megabytes: tree structure, vocabularies, config dataclasses.

:func:`unpack` rebuilds the object with ``np.frombuffer`` views into
the caller's buffer — **zero-copy**: a worker attaching a 200 MB arena
materialises no new weight memory. Views are marked read-only so a
worker cannot scribble over pages shared with its siblings; pass
``copy=True`` to get private writable arrays (e.g. to keep training).

Optional float32 cast (``cast_float32=True``) stores float64 slots as
float32, halving the arena. Import casts back to float64 — that path
copies (a cast cannot be a view) and perturbs weights by float32
rounding; the serve bench gates it on an accuracy-delta check. This is
the first step toward the ROADMAP quantization item.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass

import numpy as np

__all__ = ["ARENA_ALIGN", "PackedObject", "pack", "unpack"]

#: Slot alignment in bytes. 64 covers every numpy dtype's alignment
#: requirement and matches a cache line, so no view ever straddles a
#: slot boundary misaligned.
ARENA_ALIGN = 64

_PID_TAG = "repro.arena"

# dtype kinds that go to the arena: float, int, unsigned, bool. Object
# arrays (kind "O") and strings ride in the skeleton pickle — they hold
# Python references and cannot be flat memory.
_PACK_KINDS = frozenset("fiub")


@dataclass(frozen=True)
class PackedObject:
    """Result of :func:`pack`: skeleton pickle, manifest, flat arena."""

    skeleton: bytes
    manifest: dict
    arena: np.ndarray  # 1-D uint8, contiguous

    @property
    def nbytes(self) -> int:
        return int(self.manifest["arena_nbytes"])


def _align(offset: int) -> int:
    return (offset + ARENA_ALIGN - 1) // ARENA_ALIGN * ARENA_ALIGN


def pack(obj, cast_float32: bool = False) -> PackedObject:
    """Split ``obj`` into skeleton + manifest + contiguous weight arena.

    Every plain numeric ``ndarray`` reachable through pickling is
    replaced by a persistent-id stub and appended (deduplicated by
    identity) to the arena. Everything else pickles as usual, so the
    object graph may contain arbitrary picklable structure around the
    arrays.
    """
    arrays: list[np.ndarray] = []
    index_by_id: dict[int, int] = {}

    class _ArenaPickler(pickle.Pickler):
        def persistent_id(self, item):
            # Exact-type check: ndarray subclasses (np.matrix, masked
            # arrays) have behaviour a raw frombuffer view would lose.
            if type(item) is np.ndarray and item.dtype.kind in _PACK_KINDS:
                idx = index_by_id.get(id(item))
                if idx is None:
                    idx = len(arrays)
                    index_by_id[id(item)] = idx
                    arrays.append(item)
                return (_PID_TAG, idx)
            return None

    sink = io.BytesIO()
    _ArenaPickler(sink, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)

    entries: list[dict] = []
    offset = 0
    stored: list[np.ndarray] = []
    for arr in arrays:
        flat = np.ascontiguousarray(arr)
        if cast_float32 and flat.dtype == np.float64:
            flat = flat.astype(np.float32)
        offset = _align(offset)
        entries.append(
            {
                "offset": offset,
                "nbytes": int(flat.nbytes),
                "shape": list(arr.shape),
                "dtype": arr.dtype.str,
                "stored_dtype": flat.dtype.str,
            }
        )
        stored.append(flat)
        offset += flat.nbytes

    arena = np.zeros(offset, dtype=np.uint8)
    for entry, flat in zip(entries, stored):
        start = entry["offset"]
        arena[start : start + flat.nbytes] = np.frombuffer(
            flat.tobytes(), dtype=np.uint8
        )

    manifest = {
        "format": "repro-arena",
        "version": 1,
        "cast": "float32" if cast_float32 else "none",
        "arena_nbytes": int(offset),
        "entries": entries,
    }
    return PackedObject(skeleton=sink.getvalue(), manifest=manifest, arena=arena)


def unpack(skeleton: bytes, manifest: dict, buffer, copy: bool = False):
    """Rebuild the object packed by :func:`pack`.

    ``buffer`` is anything with the buffer protocol holding the arena
    bytes — a ``bytes`` object, a ``memoryview``, or a
    ``multiprocessing.shared_memory.SharedMemory().buf``. Arrays come
    back as **views** into that buffer (read-only unless the buffer
    itself is immutable anyway); the caller must keep the buffer alive
    for the lifetime of the object. With ``copy=True`` every array is a
    private writable copy and the buffer may be released. Slots whose
    stored dtype differs from the original (float32 cast) are always
    cast back, which copies.
    """
    if manifest.get("format") != "repro-arena":
        raise ValueError("buffer manifest is not a repro-arena manifest")
    entries = manifest["entries"]
    views: dict[int, np.ndarray] = {}

    def _load(idx: int) -> np.ndarray:
        cached = views.get(idx)
        if cached is not None:
            return cached
        entry = entries[idx]
        shape = tuple(entry["shape"])
        stored_dtype = np.dtype(entry["stored_dtype"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arr = np.frombuffer(
            buffer, dtype=stored_dtype, count=count, offset=entry["offset"]
        ).reshape(shape)
        if entry["stored_dtype"] != entry["dtype"]:
            arr = arr.astype(np.dtype(entry["dtype"]))  # cast-back copies
        elif copy:
            arr = arr.copy()
        # frombuffer views of immutable buffers are already read-only;
        # for writable buffers (shared memory) lock the view so one
        # worker cannot corrupt pages mapped by its siblings.
        if arr.base is not None:
            arr.flags.writeable = False
        views[idx] = arr
        return arr

    class _ArenaUnpickler(pickle.Unpickler):
        def persistent_load(self, pid):
            tag, idx = pid
            if tag != _PID_TAG:
                raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
            return _load(idx)

    return _ArenaUnpickler(io.BytesIO(skeleton)).load()
