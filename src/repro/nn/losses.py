"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.core.errors import ShapeError
from repro.nn.tensor import Tensor

#: Target value ignored by the losses (masked-LM convention).
IGNORE_INDEX = -100


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    class_weights: np.ndarray | None = None,
    label_smoothing: float = 0.0,
    ignore_index: int = IGNORE_INDEX,
) -> Tensor:
    """Mean cross-entropy over non-ignored targets.

    Parameters
    ----------
    logits:
        (N, C) unnormalised scores.
    targets:
        (N,) integer class ids; entries equal to ``ignore_index`` are
        excluded from the mean.
    class_weights:
        Optional (C,) per-class weights (weighted mean, as in torch).
    label_smoothing:
        Mass ε spread uniformly over classes.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
    n, c = logits.shape
    if targets.shape != (n,):
        raise ShapeError(f"targets shape {targets.shape} != ({n},)")

    keep = targets != ignore_index
    if not keep.any():
        raise ShapeError("all targets are ignored")
    kept_idx = np.nonzero(keep)[0]
    kept_targets = targets[kept_idx]
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[kept_idx, kept_targets]  # (M,)

    weights = np.ones(len(kept_idx))
    if class_weights is not None:
        class_weights = np.asarray(class_weights, dtype=np.float64)
        if class_weights.shape != (c,):
            raise ShapeError(f"class_weights shape {class_weights.shape} != ({c},)")
        weights = class_weights[kept_targets]
    w = Tensor(weights)
    total_weight = float(weights.sum())

    nll = -(picked * w).sum() / total_weight
    if label_smoothing <= 0.0:
        return nll
    smooth = -(log_probs[kept_idx, :].mean(axis=-1) * w).sum() / total_weight
    eps = label_smoothing
    return (1.0 - eps) * nll + eps * smooth


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()
