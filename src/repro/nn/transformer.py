"""Transformer encoders: absolute-position (RoBERTa-style) and
disentangled relative-position (DeBERTa-style)."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import DisentangledSelfAttention, MultiHeadAttention
from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor


class FeedForward(Module):
    """Position-wise two-layer MLP with GELU."""

    def __init__(
        self, dim: int, hidden: int, rng: np.random.Generator, dropout: float = 0.0
    ) -> None:
        super().__init__()
        self.fc1 = Linear(dim, hidden, rng)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc2(self.act(self.fc1(x))))


class EncoderLayer(Module):
    """Post-LN transformer encoder block (BERT/RoBERTa convention)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_hidden: int,
        rng: np.random.Generator,
        dropout: float = 0.1,
        attention: Module | None = None,
    ) -> None:
        super().__init__()
        self.attn = attention or MultiHeadAttention(dim, num_heads, rng, dropout)
        self.norm1 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_hidden, rng, dropout)
        self.norm2 = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        attended = self.attn(x, mask=mask)
        x = self.norm1(x + self.dropout(attended))
        x = self.norm2(x + self.ffn(x))
        return x


class TransformerEncoder(Module):
    """Token embedding + learned absolute positions + N encoder blocks.

    This is the RoBERTa-style backbone: absolute position embeddings,
    post-layer-norm blocks, GELU feed-forward.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        num_layers: int,
        num_heads: int,
        max_len: int,
        rng: np.random.Generator,
        ffn_hidden: int | None = None,
        dropout: float = 0.1,
        pad_id: int = 0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.max_len = max_len
        self.pad_id = pad_id
        ffn_hidden = ffn_hidden or 4 * dim
        self.token_embed = Embedding(vocab_size, dim, rng, padding_idx=pad_id)
        self.pos_embed = Embedding(max_len, dim, rng)
        self.embed_norm = LayerNorm(dim)
        self.embed_dropout = Dropout(dropout, rng)
        self.layers = ModuleList(
            EncoderLayer(dim, num_heads, ffn_hidden, rng, dropout)
            for _ in range(num_layers)
        )

    def embed(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        _, steps = token_ids.shape
        positions = np.broadcast_to(np.arange(steps), token_ids.shape)
        x = self.token_embed(token_ids) + self.pos_embed(positions)
        return self.embed_dropout(self.embed_norm(x))

    def forward(
        self, token_ids: np.ndarray, mask: np.ndarray | None = None
    ) -> Tensor:
        """(B, T) token ids → (B, T, dim) contextual states."""
        if mask is None:
            mask = (np.asarray(token_ids) != self.pad_id).astype(np.float64)
        x = self.embed(token_ids)
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x


class DisentangledTransformerEncoder(Module):
    """DeBERTa-style backbone: *no* absolute positions in the embedding;
    every block uses disentangled relative-position attention."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        num_layers: int,
        num_heads: int,
        max_len: int,
        rng: np.random.Generator,
        ffn_hidden: int | None = None,
        dropout: float = 0.1,
        pad_id: int = 0,
        max_relative_distance: int = 16,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.max_len = max_len
        self.pad_id = pad_id
        ffn_hidden = ffn_hidden or 4 * dim
        self.token_embed = Embedding(vocab_size, dim, rng, padding_idx=pad_id)
        self.embed_norm = LayerNorm(dim)
        self.embed_dropout = Dropout(dropout, rng)
        self.layers = ModuleList(
            EncoderLayer(
                dim,
                num_heads,
                ffn_hidden,
                rng,
                dropout,
                attention=DisentangledSelfAttention(
                    dim, num_heads, max_relative_distance, rng, dropout
                ),
            )
            for _ in range(num_layers)
        )

    def forward(
        self, token_ids: np.ndarray, mask: np.ndarray | None = None
    ) -> Tensor:
        if mask is None:
            mask = (np.asarray(token_ids) != self.pad_id).astype(np.float64)
        x = self.embed_dropout(self.embed_norm(self.token_embed(token_ids)))
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x


def mean_pool(states: Tensor, mask: np.ndarray) -> Tensor:
    """Mask-aware mean over the time axis: (B, T, D) → (B, D)."""
    mask = np.asarray(mask, dtype=np.float64)
    weights = Tensor(mask[:, :, None])
    summed = (states * weights).sum(axis=1)
    counts = Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
    return summed / counts
