"""Batching utilities: padding, collation, shuffled minibatch iteration."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np


def pad_sequences(
    sequences: Sequence[Sequence[int]],
    pad_value: int = 0,
    max_len: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad integer sequences into (ids, mask) matrices.

    Sequences longer than ``max_len`` keep their *last* ``max_len``
    elements (recent context matters most for risk assessment).
    """
    if not sequences:
        return np.zeros((0, 0), dtype=np.int64), np.zeros((0, 0))
    clipped = [list(s) for s in sequences]
    if max_len is not None:
        clipped = [s[-max_len:] for s in clipped]
    width = max(1, max(len(s) for s in clipped))
    ids = np.full((len(clipped), width), pad_value, dtype=np.int64)
    mask = np.zeros((len(clipped), width), dtype=np.float64)
    for i, seq in enumerate(clipped):
        ids[i, : len(seq)] = seq
        mask[i, : len(seq)] = 1.0
    return ids, mask


def pad_feature_sequences(
    sequences: Sequence[np.ndarray], max_len: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad (Tᵢ, D) float matrices into (B, T, D) + (B, T) mask."""
    if not sequences:
        return np.zeros((0, 0, 0)), np.zeros((0, 0))
    clipped = [np.asarray(s, dtype=np.float64) for s in sequences]
    if max_len is not None:
        clipped = [s[-max_len:] for s in clipped]
    width = max(1, max(s.shape[0] for s in clipped))
    dim = clipped[0].shape[1] if clipped[0].ndim == 2 else 1
    out = np.zeros((len(clipped), width, dim))
    mask = np.zeros((len(clipped), width))
    for i, seq in enumerate(clipped):
        seq = seq.reshape(seq.shape[0], -1)
        out[i, : seq.shape[0], :] = seq
        mask[i, : seq.shape[0]] = 1.0
    return out, mask


def batches(
    n: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index arrays for minibatches over ``range(n)``.

    Shuffles when ``rng`` is given; otherwise sequential order.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = rng.permutation(n) if rng is not None else np.arange(n)
    for start in range(0, n, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            return
        yield batch


def class_balanced_indices(
    labels: np.ndarray, rng: np.random.Generator, per_class: int | None = None
) -> np.ndarray:
    """Oversample so every class appears equally often.

    Used by the Table IV small-data configuration ("data balance
    sampling").
    """
    labels = np.asarray(labels)
    classes = np.unique(labels)
    counts = {c: int((labels == c).sum()) for c in classes}
    target = per_class or max(counts.values())
    picked = []
    for c in classes:
        pool = np.nonzero(labels == c)[0]
        draw = rng.choice(pool, size=target, replace=len(pool) < target)
        picked.append(draw)
    out = np.concatenate(picked)
    rng.shuffle(out)
    return out
