"""Checkpointing: save/load module state dicts as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module

#: Key prefix to avoid collisions with np.savez reserved names.
_PREFIX = "param::"


def save_checkpoint(module: Module, path: str | Path) -> None:
    """Write a module's parameters to ``path`` (npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = {_PREFIX + k: v for k, v in module.state_dict().items()}
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    with np.load(Path(path)) as archive:
        state = {
            key[len(_PREFIX):]: archive[key]
            for key in archive.files
            if key.startswith(_PREFIX)
        }
    module.load_state_dict(state)
