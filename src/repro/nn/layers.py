"""Basic layers: Linear, Embedding, LayerNorm, Dropout, Sequential."""

from __future__ import annotations

import numpy as np

from repro.nn.init import normal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id → dense vector lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator,
        padding_idx: int | None = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        table = normal(rng, (num_embeddings, dim), std=0.02)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(ids, dtype=np.int64))


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centred = x - mu
        var = (centred * centred).mean(axis=-1, keepdims=True)
        inv_std = (var + self.eps) ** -0.5
        return centred * inv_std * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Feed input through modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._seq = list(modules)
        for i, module in enumerate(modules):
            self._modules[str(i)] = module

    def forward(self, x):
        for module in self._seq:
            x = module(x)
        return x


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()
