"""A small numpy autograd/NN framework (the paper's "PyTorch" substrate)."""

from repro.nn.arena import ARENA_ALIGN, PackedObject, pack, unpack
from repro.nn.attention import (
    DisentangledSelfAttention,
    MultiHeadAttention,
    TemporalDecayAttention,
    relative_position_index,
)
from repro.nn.data import (
    batches,
    class_balanced_indices,
    pad_feature_sequences,
    pad_sequences,
)
from repro.nn.layers import (
    GELU,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.losses import IGNORE_INDEX, cross_entropy, mse_loss
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.optim import (
    SGD,
    Adam,
    AdamW,
    LRSchedule,
    Optimizer,
    WarmupLinearDecay,
    clip_grad_norm,
)
from repro.nn.rnn import GRU, GRUCell, LSTM, LSTMCell
from repro.nn.serialize import load_checkpoint, save_checkpoint
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad
from repro.nn.transformer import (
    DisentangledTransformerEncoder,
    EncoderLayer,
    FeedForward,
    TransformerEncoder,
    mean_pool,
)

__all__ = [
    "ARENA_ALIGN",
    "PackedObject",
    "pack",
    "unpack",
    "DisentangledSelfAttention",
    "MultiHeadAttention",
    "TemporalDecayAttention",
    "relative_position_index",
    "batches",
    "class_balanced_indices",
    "pad_feature_sequences",
    "pad_sequences",
    "GELU",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "ReLU",
    "Sequential",
    "Tanh",
    "IGNORE_INDEX",
    "cross_entropy",
    "mse_loss",
    "Module",
    "ModuleList",
    "Parameter",
    "SGD",
    "Adam",
    "AdamW",
    "LRSchedule",
    "Optimizer",
    "WarmupLinearDecay",
    "clip_grad_norm",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "load_checkpoint",
    "save_checkpoint",
    "Tensor",
    "is_grad_enabled",
    "no_grad",
    "DisentangledTransformerEncoder",
    "EncoderLayer",
    "FeedForward",
    "TransformerEncoder",
    "mean_pool",
]
