"""Recurrent layers: LSTM and GRU cells, unidirectional and bidirectional.

Inputs are ``(batch, time, features)`` tensors plus an optional
``(batch, time)`` float mask (1 = real step, 0 = padding). Masked steps
carry the previous hidden state through unchanged, so right-padded batches
produce identical results to per-sequence processing.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import orthogonal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class LSTMCell(Module):
    """Standard LSTM cell with fused gate projection."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(xavier_uniform(rng, input_dim, 4 * hidden_dim))
        self.w_h = Parameter(orthogonal(rng, (hidden_dim, 4 * hidden_dim)))
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def project_inputs(self, x: Tensor) -> Tensor:
        """All-timestep input gate projections: (B, T, D) → (B, T, 4H).

        One batched matmul replaces T per-step ``x_t @ w_x`` products in
        the recurrence loop.
        """
        return x @ self.w_x

    def _gates(self, z: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        H = self.hidden_dim
        i = z[:, 0 * H : 1 * H].sigmoid()
        f = z[:, 1 * H : 2 * H].sigmoid()
        g = z[:, 2 * H : 3 * H].tanh()
        o = z[:, 3 * H : 4 * H].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def forward(
        self, x: Tensor, h: Tensor, c: Tensor
    ) -> tuple[Tensor, Tensor]:
        z = x @ self.w_x + h @ self.w_h + self.bias
        return self._gates(z, c)

    def forward_fused(
        self, x_proj_t: Tensor, h: Tensor, c: Tensor
    ) -> tuple[Tensor, Tensor]:
        """Step with a precomputed input projection (one (B, 4H) slice)."""
        z = x_proj_t + h @ self.w_h + self.bias
        return self._gates(z, c)


class GRUCell(Module):
    """Standard GRU cell (reset/update gates + candidate state)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x_rz = Parameter(xavier_uniform(rng, input_dim, 2 * hidden_dim))
        self.w_h_rz = Parameter(orthogonal(rng, (hidden_dim, 2 * hidden_dim)))
        self.b_rz = Parameter(np.zeros(2 * hidden_dim))
        self.w_x_n = Parameter(xavier_uniform(rng, input_dim, hidden_dim))
        self.w_h_n = Parameter(orthogonal(rng, (hidden_dim, hidden_dim)))
        self.b_n = Parameter(np.zeros(hidden_dim))

    def project_inputs(self, x: Tensor) -> Tensor:
        """All-timestep input projections: (B, T, D) → (B, T, 3H) with the
        reset/update columns first and the candidate columns last."""
        return Tensor.concat([x @ self.w_x_rz, x @ self.w_x_n], axis=2)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        H = self.hidden_dim
        rz = (x @ self.w_x_rz + h @ self.w_h_rz + self.b_rz).sigmoid()
        r = rz[:, :H]
        z = rz[:, H:]
        n = (x @ self.w_x_n + (r * h) @ self.w_h_n + self.b_n).tanh()
        return (1.0 - z) * n + z * h

    def forward_fused(self, x_proj_t: Tensor, h: Tensor) -> Tensor:
        """Step with a precomputed input projection (one (B, 3H) slice)."""
        H = self.hidden_dim
        rz = (
            x_proj_t[:, : 2 * H] + h @ self.w_h_rz + self.b_rz
        ).sigmoid()
        r = rz[:, :H]
        z = rz[:, H:]
        n = (
            x_proj_t[:, 2 * H :] + (r * h) @ self.w_h_n + self.b_n
        ).tanh()
        return (1.0 - z) * n + z * h


def _mask_step(mask_col: np.ndarray, new: Tensor, old: Tensor) -> Tensor:
    """Blend new/old state by a (batch,) 0/1 mask column."""
    m = Tensor(mask_col.reshape(-1, 1))
    return m * new + (1.0 - m) * old


class _Recurrent(Module):
    """Shared scan logic for LSTM/GRU over (B, T, D)."""

    cell_kind = "gru"

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        bidirectional: bool = False,
    ) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.bidirectional = bidirectional
        self.fwd = self._make_cell(input_dim, hidden_dim, rng)
        if bidirectional:
            self.bwd = self._make_cell(input_dim, hidden_dim, rng)

    def _make_cell(self, input_dim, hidden_dim, rng):
        raise NotImplementedError

    def _scan(
        self,
        cell,
        x: Tensor,
        mask: np.ndarray | None,
        reverse: bool,
        fused: bool = True,
    ):
        batch, steps, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        # Input-side gate projections for all timesteps in one matmul;
        # the recurrence below then only does the (B, H) @ w_h products.
        x_proj = cell.project_inputs(x).unbind(axis=1) if fused else None
        outputs: list[Tensor] = [None] * steps
        order = range(steps - 1, -1, -1) if reverse else range(steps)
        for t in order:
            if fused:
                x_proj_t = x_proj[t]
                if self.cell_kind == "lstm":
                    h_new, c_new = cell.forward_fused(x_proj_t, h, c)
                else:
                    h_new = cell.forward_fused(x_proj_t, h)
                    c_new = c
            else:
                x_t = x[:, t, :]
                if self.cell_kind == "lstm":
                    h_new, c_new = cell(x_t, h, c)
                else:
                    h_new = cell(x_t, h)
                    c_new = c
            if mask is not None:
                h = _mask_step(mask[:, t], h_new, h)
                if self.cell_kind == "lstm":
                    c = _mask_step(mask[:, t], c_new, c)
            else:
                h, c = h_new, c_new
            outputs[t] = h
        return Tensor.stack(outputs, axis=1), h

    def _scan_reference(self, cell, x, mask, reverse):
        """Per-step projection predecessor, kept for equivalence tests."""
        return self._scan(cell, x, mask, reverse, fused=False)

    def forward(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        """Returns (outputs, final_state).

        outputs: (B, T, H) or (B, T, 2H) if bidirectional;
        final_state: (B, H) or (B, 2H).
        """
        out_f, h_f = self._scan(self.fwd, x, mask, reverse=False)
        if not self.bidirectional:
            return out_f, h_f
        out_b, h_b = self._scan(self.bwd, x, mask, reverse=True)
        return (
            Tensor.concat([out_f, out_b], axis=2),
            Tensor.concat([h_f, h_b], axis=1),
        )


class GRU(_Recurrent):
    """(Bi)directional GRU over padded batches."""

    cell_kind = "gru"

    def _make_cell(self, input_dim, hidden_dim, rng):
        return GRUCell(input_dim, hidden_dim, rng)


class LSTM(_Recurrent):
    """(Bi)directional LSTM over padded batches."""

    cell_kind = "lstm"

    def _make_cell(self, input_dim, hidden_dim, rng):
        return LSTMCell(input_dim, hidden_dim, rng)
