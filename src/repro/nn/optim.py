"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm ≤ ``max_norm``.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters, lr: float) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional classical momentum."""

    def __init__(self, parameters, lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay and not self.decoupled:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay and self.decoupled:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(
            parameters, lr, betas, eps, weight_decay=weight_decay, decoupled=True
        )


class LRSchedule:
    """Callable mapping step → learning-rate multiplier, applied to an
    optimizer via :meth:`apply`."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_num = 0

    def multiplier(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.step_num += 1
        lr = self.base_lr * self.multiplier(self.step_num)
        self.optimizer.lr = lr
        return lr


class WarmupLinearDecay(LRSchedule):
    """Linear warmup to ``base_lr`` then linear decay to zero —
    the standard BERT fine-tuning schedule."""

    def __init__(
        self, optimizer: Optimizer, warmup_steps: int, total_steps: int
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.warmup_steps = max(1, warmup_steps)
        self.total_steps = total_steps

    def multiplier(self, step: int) -> float:
        if step < self.warmup_steps:
            return step / self.warmup_steps
        remaining = max(0, self.total_steps - step)
        denom = max(1, self.total_steps - self.warmup_steps)
        return remaining / denom
