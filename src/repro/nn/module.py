"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration happens automatically through
    ``__setattr__``, mirroring the familiar torch idiom.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """All parameters, depth-first, deduplicated by identity."""
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state ---------------------------------------------------------------

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} != {param.shape}"
                )
            param.data = value.astype(param.data.dtype).copy()

    # -- call ------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of sub-modules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)
