"""Weight initialisers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int, shape=None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape or (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal init (BERT-style std=0.02)."""
    return rng.normal(0.0, std, size=shape)


def orthogonal(rng: np.random.Generator, shape) -> np.ndarray:
    """Orthogonal init for recurrent kernels (rows or columns orthonormal)."""
    rows, cols = shape
    size = max(rows, cols)
    q, _ = np.linalg.qr(rng.normal(0.0, 1.0, size=(size, size)))
    return q[:rows, :cols].copy()
