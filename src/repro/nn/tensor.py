"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied
to it; :meth:`Tensor.backward` walks the recorded graph in reverse
topological order accumulating gradients. The op set is exactly what the
paper's five baselines need: broadcast arithmetic, matmul, reductions,
shape ops, gather/embedding, stable softmax/log-softmax, and the standard
activation functions.

Design choices
--------------
* Gradients are plain ``ndarray``s (not Tensors) — no higher-order grads.
* Broadcasting is supported everywhere via an un-broadcast helper.
* ``log_softmax`` and friends are primitives with analytic backward
  passes, keeping graphs small and numerics stable.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from contextlib import contextmanager

import numpy as np

from repro.core.errors import GradientError, ShapeError

Arrayish = "Tensor | np.ndarray | float | int"

# Per-thread autograd switch: the serving engine's worker threads run
# forward passes under no_grad while a training loop may be active on
# another thread, so the flag cannot be process-global.
_GRAD_MODE = threading.local()


def is_grad_enabled() -> bool:
    """Whether ops record the autograd graph on the current thread."""
    return getattr(_GRAD_MODE, "enabled", True)


@contextmanager
def no_grad():
    """Disable graph construction for the enclosed forward passes.

    Inside the context every op produces a constant tensor — no parents,
    no backward closure — so inference skips the full cost of building
    (and holding alive) the autograd graph. Values are identical to the
    recording path; only ``.backward()`` becomes unavailable. Nestable.
    """
    previous = is_grad_enabled()
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw array-like, got Tensor")
    return np.asarray(value, dtype=dtype)


def scatter_add_rows(
    target: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> None:
    """``target[indices[k]] += rows[k]`` with duplicate indices, in place.

    Implemented as a single flat ``np.bincount`` over ``index·D + column``
    keys, which is an order of magnitude faster than the ``np.add.at``
    ufunc loop it replaces (kept as :func:`scatter_add_rows_reference` for
    equivalence tests). ``target`` must be 2-D ``(V, D)``; ``indices`` is
    flattened, and ``rows`` reshaped to ``(len(indices), D)``.
    """
    dim = target.shape[-1]
    flat_idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    flat_rows = np.asarray(rows, dtype=target.dtype).reshape(-1, dim)
    keys = (flat_idx[:, None] * dim + np.arange(dim)).reshape(-1)
    target += np.bincount(
        keys, weights=flat_rows.reshape(-1), minlength=target.size
    ).reshape(target.shape)


def scatter_add_rows_reference(
    target: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> None:
    """Naive ``np.add.at`` predecessor of :func:`scatter_add_rows`."""
    dim = target.shape[-1]
    flat_idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    np.add.at(target, flat_idx, np.asarray(rows).reshape(-1, dim))


def _is_basic_index(key) -> bool:
    """True when ``key`` is basic (non-fancy) indexing — no index position
    can repeat, so a gradient scatter may use ``+=`` instead of
    ``np.add.at``."""
    parts = key if isinstance(key, tuple) else (key,)
    return not any(isinstance(p, (np.ndarray, list)) for p in parts)


class Tensor:
    """A node in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers to our __r*__ operators

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        name: str | None = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None  # set by op constructors
        self._parents = _parents
        self.name = name

    # -- basics ---------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    # -- pickling -------------------------------------------------------------
    # Autograd state is graph- and process-local: ``_backward`` closures
    # capture intermediate arrays and cannot (and should not) cross a
    # pickle boundary. A Tensor round-trips as a leaf — data, grad flag,
    # name — which is exactly what weight handoff to worker processes
    # needs (see repro.nn.arena).

    def __getstate__(self):
        return (self.data, self.requires_grad, self.name)

    def __setstate__(self, state) -> None:
        self.data, self.requires_grad, self.name = state
        self.grad = None
        self._backward = None
        self._parents = ()

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    @staticmethod
    def ensure(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # -- graph machinery ---------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar roots must
        supply an explicit output gradient.
        """
        if not self.requires_grad:
            raise GradientError("backward on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward without gradient only allowed for scalars"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"output gradient shape {grad.shape} != tensor shape {self.shape}"
            )

        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray, parents: Sequence["Tensor"], backward
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            # Constant result: drop parents so the graph (and the closure's
            # captured activations) can be freed immediately.
            return Tensor(data)
        out = Tensor(data, requires_grad=True, _parents=tuple(parents))
        out._backward = backward
        return out

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(
                        _unbroadcast(np.outer(grad, other.data) if grad.ndim == 1
                                     else np.expand_dims(grad, -1) * other.data,
                                     self.shape)
                    )
                else:
                    self._accumulate(
                        _unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape)
                    )
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(
                        _unbroadcast(np.outer(self.data, grad), other.shape)
                    )
                elif self.data.ndim > 2 and other.data.ndim == 2:
                    # Batched (…, D) @ (D, K): contract all batch axes in
                    # one flat gemm instead of materialising a (…, D, K)
                    # stack and summing it afterwards.
                    other._accumulate(
                        np.tensordot(
                            self.data,
                            grad,
                            axes=(
                                tuple(range(self.data.ndim - 1)),
                                tuple(range(grad.ndim - 1)),
                            ),
                        )
                    )
                else:
                    contribution = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(contribution, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # -- elementwise functions ---------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """Tanh-approximated GELU (the BERT-family activation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                dt = (1.0 - t**2) * c * (1.0 + 3 * 0.044715 * x**2)
                self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return Tensor._make(out_data, (self,), backward)

    # -- reductions -------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = self.data == expanded
            # Split gradient between ties.
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(g * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # -- shape ops -------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        basic = _is_basic_index(key)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:  # slices/ints never repeat a position
                    full[key] += grad
                else:
                    np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def unbind(self, axis: int = 0) -> list["Tensor"]:
        """Split into the ``shape[axis]`` sub-tensors along ``axis``.

        Equivalent to ``[self[..., i, ...] for i in range(shape[axis])]``
        but each piece's backward writes straight into one shared gradient
        buffer on the parent instead of materialising a full-size zeros
        array per piece — the difference dominates when unbinding the time
        axis of a large activation tensor inside an RNN scan.
        """
        axis = axis % self.ndim

        def piece(i: int) -> "Tensor":
            index = [slice(None)] * self.ndim
            index[axis] = i
            index = tuple(index)

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    if self.grad is None:
                        self.grad = np.zeros_like(self.data)
                    self.grad[index] += grad

            return Tensor._make(self.data[index], (self,), backward)

        return [piece(i) for i in range(self.shape[axis])]

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0, *sizes])

        def backward(grad: np.ndarray) -> None:
            for t, start, end in zip(tensors, offsets, offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(int(start), int(end))
                    t._accumulate(grad[tuple(index)])

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            slabs = np.moveaxis(grad, axis, 0)
            for t, slab in zip(tensors, slabs):
                if t.requires_grad:
                    t._accumulate(slab)

        return Tensor._make(out_data, tuple(tensors), backward)

    # -- gather / embedding ------------------------------------------------------

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather (embedding lookup): ``out[..., :] = self[idx[...], :]``."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                scatter_add_rows(full, indices, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # -- numerically stable softmax family -----------------------------------------

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_z
        soft = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    grad - soft * grad.sum(axis=axis, keepdims=True)
                )

        return Tensor._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - inner))

        return Tensor._make(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value`` (no grad
        flows through the filled entries)."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return Tensor._make(out_data, (self,), backward)
