"""Probability-calibration diagnostics.

For a risk triage system, *calibrated* confidence matters as much as
accuracy: an 80%-confident Attempt prediction should be right ~80% of the
time. This module provides expected calibration error (ECE), maximum
calibration error (MCE), reliability-diagram data, and Brier scores for
the probabilistic baselines (XGBoost, LogReg).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ReliabilityBin:
    """One confidence bucket of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    empirical_accuracy: float

    @property
    def gap(self) -> float:
        return abs(self.mean_confidence - self.empirical_accuracy)


@dataclass(frozen=True)
class CalibrationReport:
    """Aggregate calibration diagnostics."""

    ece: float
    mce: float
    brier: float
    bins: tuple[ReliabilityBin, ...]


def _validate(probs: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    probs = np.asarray(probs, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.int64)
    if probs.ndim != 2:
        raise ValueError("probs must be (n, classes)")
    if len(probs) != len(targets):
        raise ValueError("probs and targets disagree on length")
    if len(probs) == 0:
        raise ValueError("empty inputs")
    if not np.allclose(probs.sum(axis=1), 1.0, atol=1e-6):
        raise ValueError("probability rows must sum to 1")
    return probs, targets


def reliability_bins(
    probs: np.ndarray, targets: np.ndarray, num_bins: int = 10
) -> list[ReliabilityBin]:
    """Top-label reliability diagram over equal-width confidence bins."""
    probs, targets = _validate(probs, targets)
    confidence = probs.max(axis=1)
    predicted = probs.argmax(axis=1)
    correct = (predicted == targets).astype(np.float64)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins = []
    for lower, upper in zip(edges, edges[1:]):
        mask = (confidence > lower) & (confidence <= upper)
        if lower == 0.0:
            mask |= confidence == 0.0
        count = int(mask.sum())
        bins.append(
            ReliabilityBin(
                lower=float(lower),
                upper=float(upper),
                count=count,
                mean_confidence=float(confidence[mask].mean()) if count else 0.0,
                empirical_accuracy=float(correct[mask].mean()) if count else 0.0,
            )
        )
    return bins


def expected_calibration_error(
    probs: np.ndarray, targets: np.ndarray, num_bins: int = 10
) -> float:
    """ECE: bin-count-weighted mean |confidence − accuracy|."""
    bins = reliability_bins(probs, targets, num_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        return 0.0
    return float(sum(b.count * b.gap for b in bins) / total)


def maximum_calibration_error(
    probs: np.ndarray, targets: np.ndarray, num_bins: int = 10
) -> float:
    """MCE: worst bin gap (over non-empty bins)."""
    bins = [b for b in reliability_bins(probs, targets, num_bins) if b.count]
    return max((b.gap for b in bins), default=0.0)


def brier_score(probs: np.ndarray, targets: np.ndarray) -> float:
    """Multiclass Brier score (mean squared distance to the one-hot)."""
    probs, targets = _validate(probs, targets)
    onehot = np.eye(probs.shape[1])[targets]
    return float(((probs - onehot) ** 2).sum(axis=1).mean())


def calibration_report(
    probs: np.ndarray, targets: np.ndarray, num_bins: int = 10
) -> CalibrationReport:
    """All diagnostics in one pass."""
    bins = tuple(reliability_bins(probs, targets, num_bins))
    total = sum(b.count for b in bins)
    ece = float(sum(b.count * b.gap for b in bins) / total) if total else 0.0
    mce = max((b.gap for b in bins if b.count), default=0.0)
    return CalibrationReport(
        ece=ece, mce=mce, brier=brier_score(probs, targets), bins=bins
    )


def temperature_scale(
    logits_or_probs: np.ndarray,
    targets: np.ndarray,
    temperatures: np.ndarray | None = None,
) -> float:
    """Grid-search the temperature that minimises NLL on held-out data.

    Accepts probabilities (converted to log-space) for models that only
    expose ``predict_proba``.
    """
    probs, targets = _validate(logits_or_probs, targets)
    log_probs = np.log(np.maximum(probs, 1e-12))
    if temperatures is None:
        temperatures = np.concatenate(
            [np.linspace(0.25, 1.0, 16), np.linspace(1.0, 4.0, 25)]
        )
    best_t, best_nll = 1.0, np.inf
    n = np.arange(len(targets))
    for t in temperatures:
        scaled = log_probs / t
        scaled -= scaled.max(axis=1, keepdims=True)
        norm = np.log(np.exp(scaled).sum(axis=1))
        nll = float(-(scaled[n, targets] - norm).mean())
        if nll < best_nll:
            best_nll, best_t = nll, float(t)
    return best_t


def apply_temperature(probs: np.ndarray, temperature: float) -> np.ndarray:
    """Re-normalise probabilities at the given temperature."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    log_probs = np.log(np.maximum(np.asarray(probs, dtype=np.float64), 1e-12))
    scaled = log_probs / temperature
    scaled -= scaled.max(axis=1, keepdims=True)
    exp = np.exp(scaled)
    return exp / exp.sum(axis=1, keepdims=True)
