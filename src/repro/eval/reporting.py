"""Result export: markdown, CSV, and JSON renderings of eval reports."""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence

from repro.eval.metrics import EvalReport

_COLUMNS = (
    "Model", "Acc_pct", "MacroF1_pct",
    "IN_F1_pct", "ID_F1_pct", "BR_F1_pct", "AT_F1_pct",
)


def to_markdown(reports: Sequence[EvalReport]) -> str:
    """GitHub-flavoured markdown table in the paper's column order."""
    header = "| " + " | ".join(_COLUMNS) + " |"
    rule = "|" + "|".join("---" for _ in _COLUMNS) + "|"
    lines = [header, rule]
    for report in reports:
        row = report.as_row()
        cells = [
            str(row[c]) if c == "Model" else f"{row[c]:.1f}" for c in _COLUMNS
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def to_csv(reports: Sequence[EvalReport]) -> str:
    """CSV with one row per model."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_COLUMNS)
    writer.writeheader()
    for report in reports:
        row = report.as_row()
        writer.writerow({c: row[c] for c in _COLUMNS})
    return buffer.getvalue()


def to_json(reports: Sequence[EvalReport]) -> str:
    """JSON including the confusion matrix and per-class support."""
    payload = []
    for report in reports:
        payload.append(
            {
                "model": report.model,
                "accuracy": report.accuracy,
                "macro_f1": report.macro_f1,
                "class_f1": {lv.short: f1 for lv, f1 in report.class_f1.items()},
                "support": {lv.short: n for lv, n in report.support.items()},
                "confusion": report.confusion.tolist(),
            }
        )
    return json.dumps(payload, indent=2)
