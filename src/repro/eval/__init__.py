"""Evaluation: metrics, user-disjoint splits, experiment running."""

from repro.eval.metrics import (
    EvalReport,
    accuracy,
    confusion_matrix,
    macro_f1,
    per_class_f1,
    precision_recall,
)
from repro.eval.reporting import to_csv, to_json, to_markdown
from repro.eval.runner import (
    MetricSummary,
    MultiRunResult,
    evaluate_model,
    run_repeated,
)
from repro.eval.splits import WindowSplits, split_users, split_windows

__all__ = [
    "to_csv",
    "to_json",
    "to_markdown",
    "MetricSummary",
    "MultiRunResult",
    "evaluate_model",
    "run_repeated",
    "EvalReport",
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "per_class_f1",
    "precision_recall",
    "WindowSplits",
    "split_users",
    "split_windows",
]
