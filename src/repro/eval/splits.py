"""User-disjoint dataset splits (paper §III, data partitioning).

"We randomly divide all users into training set (80%), validation set
(10%), and test set (10%) to ensure that the users from the training set
and test set are entirely disjoint to prevent data leakage risks."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SplitConfig
from repro.core.errors import SplitError
from repro.core.rng import stream
from repro.temporal.windows import PostWindow


@dataclass(frozen=True)
class WindowSplits:
    """Train/validation/test window lists (user-disjoint)."""

    train: list[PostWindow]
    validation: list[PostWindow]
    test: list[PostWindow]

    def verify_disjoint(self) -> None:
        """Raise :class:`SplitError` if any author crosses splits."""
        train = {w.author for w in self.train}
        val = {w.author for w in self.validation}
        test = {w.author for w in self.test}
        overlaps = (train & val) | (train & test) | (val & test)
        if overlaps:
            raise SplitError(f"authors cross splits: {sorted(overlaps)[:5]}")

    @property
    def sizes(self) -> tuple[int, int, int]:
        return len(self.train), len(self.validation), len(self.test)


def split_users(
    authors: list[str], config: SplitConfig | None = None
) -> tuple[list[str], list[str], list[str]]:
    """Randomly partition authors 80/10/10 (configurable)."""
    config = config or SplitConfig()
    if len(authors) < 3:
        raise SplitError("need at least 3 users to split")
    rng = stream(config.seed, "user-split")
    order = [authors[int(i)] for i in rng.permutation(len(authors))]
    n = len(order)
    n_train = int(round(config.train * n))
    n_val = int(round(config.validation * n))
    n_train = min(n_train, n - 2)
    n_val = max(1, min(n_val, n - n_train - 1))
    train = order[:n_train]
    val = order[n_train : n_train + n_val]
    test = order[n_train + n_val :]
    if not test:
        raise SplitError("test split came out empty; adjust fractions")
    return train, val, test


def split_windows(
    windows: list[PostWindow], config: SplitConfig | None = None
) -> WindowSplits:
    """Split windows by author, then verify user-disjointness."""
    authors = sorted({w.author for w in windows})
    train_users, val_users, test_users = split_users(authors, config)
    by_author: dict[str, list[PostWindow]] = {}
    for window in windows:
        by_author.setdefault(window.author, []).append(window)

    def gather(users: list[str]) -> list[PostWindow]:
        return [w for u in users for w in by_author.get(u, [])]

    splits = WindowSplits(
        train=gather(train_users),
        validation=gather(val_users),
        test=gather(test_users),
    )
    splits.verify_disjoint()
    return splits
