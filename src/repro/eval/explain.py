"""Lightweight explanations for the feature-based baselines.

For a clinical-triage deployment the paper envisions (§I, §V), an
assessment needs to be inspectable. This module provides:

* global explanations — gain importances grouped by feature / dimension
  (wrapping the XGBoost baseline's importance API);
* class profiles — which framework features run high for each risk level
  (class-conditional z-scores over a reference window set);
* local explanations — for one window, the features that deviate most
  from the reference distribution, weighted by global importance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import NotFittedError
from repro.core.schema import ALL_LEVELS, RiskLevel
from repro.models.xgboost_baseline import XGBoostBaseline
from repro.temporal.windows import PostWindow


@dataclass(frozen=True)
class FeatureContribution:
    """One feature's role in a local explanation."""

    feature: str
    value: float
    z_score: float
    importance: float

    @property
    def weight(self) -> float:
        """Salience: |z| × global importance."""
        return abs(self.z_score) * self.importance


class RiskExplainer:
    """Explains a fitted :class:`XGBoostBaseline` (or LogisticBaseline).

    Parameters
    ----------
    model:
        A *fitted* baseline exposing ``framework`` and (for global
        importances) ``booster.feature_importances_``.
    reference:
        Windows defining the "normal" feature distribution (typically the
        training set).
    """

    def __init__(self, model: XGBoostBaseline, reference: list[PostWindow]):
        if getattr(model, "booster", None) is None and not hasattr(
            model, "classifier"
        ):
            raise NotFittedError("explainer requires a fitted model")
        self.model = model
        self.feature_names = model.framework.feature_names
        matrix = model.framework.transform(reference)
        self._mu = matrix.mean(axis=0)
        self._sigma = matrix.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        self._reference_labels = np.array([int(w.label) for w in reference])
        self._reference_matrix = matrix
        if hasattr(model, "booster") and model.booster is not None:
            self._importances = model.booster.feature_importances_
        else:  # linear model: |weight| mass per feature
            weights = model.classifier.weights[:-1]
            mass = np.abs(weights).sum(axis=1)
            self._importances = mass / max(mass.sum(), 1e-12)

    # -- global --------------------------------------------------------------

    def global_importances(self, k: int = 15) -> list[tuple[str, float]]:
        order = np.argsort(self._importances)[::-1][:k]
        return [(self.feature_names[i], float(self._importances[i])) for i in order]

    def class_profile(
        self, level: RiskLevel, k: int = 10
    ) -> list[tuple[str, float]]:
        """Features most elevated for ``level`` vs the other classes."""
        mask = self._reference_labels == int(level)
        if not mask.any() or mask.all():
            return []
        inside = self._reference_matrix[mask].mean(axis=0)
        outside = self._reference_matrix[~mask].mean(axis=0)
        z = (inside - outside) / self._sigma
        order = np.argsort(z)[::-1][:k]
        return [(self.feature_names[i], float(z[i])) for i in order]

    def class_profiles(self, k: int = 10) -> dict[RiskLevel, list[tuple[str, float]]]:
        return {level: self.class_profile(level, k) for level in ALL_LEVELS}

    # -- local --------------------------------------------------------------------

    def explain(self, window: PostWindow, k: int = 8) -> list[FeatureContribution]:
        """Top-k salient features of one window's assessment."""
        row = self.model.framework.transform([window])[0]
        z = (row - self._mu) / self._sigma
        contributions = [
            FeatureContribution(
                feature=self.feature_names[i],
                value=float(row[i]),
                z_score=float(z[i]),
                importance=float(self._importances[i]),
            )
            for i in range(len(row))
        ]
        contributions.sort(key=lambda c: -c.weight)
        return contributions[:k]

    def render(self, window: PostWindow, k: int = 8) -> str:
        """Human-readable local explanation."""
        lines = [f"assessment rationale for user '{window.author}':"]
        for c in self.explain(window, k):
            direction = "high" if c.z_score > 0 else "low"
            lines.append(
                f"  {c.feature:<28} {direction:>4} "
                f"(z={c.z_score:+.2f}, importance={c.importance:.3f})"
            )
        return "\n".join(lines)
