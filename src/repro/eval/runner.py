"""Multi-run experiment runner.

The paper notes "all models performed stably across multiple experimental
runs". This runner repeats train/eval with different seeds and reports
mean ± std per metric, which is also what the stability experiment in the
benchmark harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ExperimentError
from repro.eval.metrics import EvalReport
from repro.eval.splits import WindowSplits
from repro.models.registry import create_model
from repro.temporal.windows import PostWindow


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± std of one metric over repeated runs."""

    name: str
    mean: float
    std: float
    values: tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.3f} ± {self.std:.3f}"


@dataclass
class MultiRunResult:
    """All reports of a repeated experiment plus aggregates."""

    model: str
    reports: list[EvalReport] = field(default_factory=list)

    def summary(self, metric: str = "accuracy") -> MetricSummary:
        values = tuple(getattr(r, metric) for r in self.reports)
        if not values:
            raise ExperimentError("no runs recorded")
        return MetricSummary(
            name=metric,
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            values=values,
        )

    @property
    def stable(self) -> bool:
        """Std of accuracy below 10 percentage points across runs."""
        return self.summary("accuracy").std < 0.10


def run_repeated(
    model_name: str,
    splits: WindowSplits,
    seeds: tuple[int, ...] = (0, 1, 2),
    **model_kwargs,
) -> MultiRunResult:
    """Train/evaluate ``model_name`` once per seed on fixed splits.

    The splits stay fixed (the paper's protocol re-runs training, not
    resampling); only initialisation/shuffling seeds vary.
    """
    if not seeds:
        raise ExperimentError("at least one seed required")
    result = MultiRunResult(model=model_name)
    y_test = np.array([int(w.label) for w in splits.test])
    for seed in seeds:
        model = create_model(model_name, seed=seed, **model_kwargs)
        model.fit(splits.train, splits.validation)
        predictions = model.predict(splits.test)
        result.reports.append(
            EvalReport.compute(model.name, y_test, predictions)
        )
    return result


def evaluate_model(
    model_name: str,
    train: list[PostWindow],
    validation: list[PostWindow],
    test: list[PostWindow],
    **model_kwargs,
) -> EvalReport:
    """One-shot convenience train/eval."""
    model = create_model(model_name, **model_kwargs)
    model.fit(train, validation)
    y_test = np.array([int(w.label) for w in test])
    return EvalReport.compute(model.name, y_test, model.predict(test))
