"""Multi-run experiment runner.

The paper notes "all models performed stably across multiple experimental
runs". This runner repeats train/eval with different seeds and reports
mean ± std per metric, which is also what the stability experiment in the
benchmark harness consumes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import perf
from repro.core.errors import ExperimentError
from repro.eval.metrics import EvalReport
from repro.eval.splits import WindowSplits
from repro.models.registry import create_model
from repro.temporal.windows import PostWindow

#: Default worker count for :func:`run_repeated` when ``n_jobs`` is not
#: passed; unset or 1 keeps the serial path.
SEED_JOBS_ENV = "REPRO_SEED_JOBS"


def _default_jobs() -> int:
    raw = os.environ.get(SEED_JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ExperimentError(
            f"{SEED_JOBS_ENV} must be an integer, got {raw!r}"
        ) from None
    if jobs < 1:
        raise ExperimentError(f"{SEED_JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± std of one metric over repeated runs."""

    name: str
    mean: float
    std: float
    values: tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.3f} ± {self.std:.3f}"


@dataclass
class MultiRunResult:
    """All reports of a repeated experiment plus aggregates."""

    model: str
    reports: list[EvalReport] = field(default_factory=list)

    def summary(self, metric: str = "accuracy") -> MetricSummary:
        values = tuple(getattr(r, metric) for r in self.reports)
        if not values:
            raise ExperimentError("no runs recorded")
        return MetricSummary(
            name=metric,
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            values=values,
        )

    @property
    def stable(self) -> bool:
        """Std of accuracy below 10 percentage points across runs."""
        return self.summary("accuracy").std < 0.10


def _seed_job(payload) -> EvalReport:
    """One seed's train/eval round — module-level so it pickles to workers.

    All randomness flows from ``create_model(seed=...)``, so a job's report
    is identical whether it runs in-process or in a forked worker.
    """
    model_name, splits, seed, model_kwargs = payload
    model = create_model(model_name, seed=seed, **model_kwargs)
    model.fit(splits.train, splits.validation)
    y_test = np.array([int(w.label) for w in splits.test])
    return EvalReport.compute(model.name, y_test, model.predict(splits.test))


def run_repeated(
    model_name: str,
    splits: WindowSplits,
    seeds: tuple[int, ...] = (0, 1, 2),
    n_jobs: int | None = None,
    **model_kwargs,
) -> MultiRunResult:
    """Train/evaluate ``model_name`` once per seed on fixed splits.

    The splits stay fixed (the paper's protocol re-runs training, not
    resampling); only initialisation/shuffling seeds vary.

    ``n_jobs``: number of worker processes. None reads ``REPRO_SEED_JOBS``
    (default 1 = serial). Because every seed carries its own RNG, the
    parallel path returns reports bitwise identical to the serial one, in
    seed order.
    """
    if not seeds:
        raise ExperimentError("at least one seed required")
    jobs = _default_jobs() if n_jobs is None else int(n_jobs)
    if jobs < 1:
        raise ExperimentError(f"n_jobs must be >= 1, got {jobs}")
    payloads = [(model_name, splits, seed, model_kwargs) for seed in seeds]
    result = MultiRunResult(model=model_name)
    with perf.span("run_repeated"):
        if jobs == 1 or len(seeds) == 1:
            reports = [_seed_job(p) for p in payloads]
        else:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(seeds))
            ) as pool:
                reports = list(pool.map(_seed_job, payloads))
        perf.count("run_repeated.seeds", len(seeds))
    result.reports.extend(reports)
    return result


def evaluate_model(
    model_name: str,
    train: list[PostWindow],
    validation: list[PostWindow],
    test: list[PostWindow],
    **model_kwargs,
) -> EvalReport:
    """One-shot convenience train/eval."""
    model = create_model(model_name, **model_kwargs)
    model.fit(train, validation)
    y_test = np.array([int(w.label) for w in test])
    return EvalReport.compute(model.name, y_test, model.predict(test))
