"""Classification metrics: accuracy, per-class F1, macro F1, confusion."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schema import ALL_LEVELS, NUM_CLASSES, RiskLevel


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int = NUM_CLASSES
) -> np.ndarray:
    """(true, predicted) count matrix."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def per_class_f1(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int = NUM_CLASSES
) -> np.ndarray:
    """F1 per class (0.0 where a class has no support and no predictions)."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(denom > 0, 2 * tp / denom, 0.0)
    return f1


def macro_f1(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int = NUM_CLASSES
) -> float:
    return float(per_class_f1(y_true, y_pred, num_classes).mean())


def precision_recall(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int = NUM_CLASSES
) -> tuple[np.ndarray, np.ndarray]:
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    tp = np.diag(matrix).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(matrix.sum(axis=0) > 0, tp / matrix.sum(axis=0), 0.0)
        recall = np.where(matrix.sum(axis=1) > 0, tp / matrix.sum(axis=1), 0.0)
    return precision, recall


@dataclass(frozen=True)
class EvalReport:
    """Full evaluation of one model on one split (a Table III row)."""

    model: str
    accuracy: float
    macro_f1: float
    class_f1: dict[RiskLevel, float]
    confusion: np.ndarray
    support: dict[RiskLevel, int]

    @classmethod
    def compute(
        cls, model: str, y_true: np.ndarray, y_pred: np.ndarray
    ) -> "EvalReport":
        f1 = per_class_f1(y_true, y_pred)
        matrix = confusion_matrix(y_true, y_pred)
        return cls(
            model=model,
            accuracy=accuracy(y_true, y_pred),
            macro_f1=float(f1.mean()),
            class_f1={level: float(f1[int(level)]) for level in ALL_LEVELS},
            confusion=matrix,
            support={
                level: int((np.asarray(y_true) == int(level)).sum())
                for level in ALL_LEVELS
            },
        )

    def as_row(self) -> dict[str, float | str]:
        """Row in the paper's Table III column order."""
        return {
            "Model": self.model,
            "Acc_pct": 100.0 * self.accuracy,
            "MacroF1_pct": 100.0 * self.macro_f1,
            "IN_F1_pct": 100.0 * self.class_f1[RiskLevel.INDICATOR],
            "ID_F1_pct": 100.0 * self.class_f1[RiskLevel.IDEATION],
            "BR_F1_pct": 100.0 * self.class_f1[RiskLevel.BEHAVIOR],
            "AT_F1_pct": 100.0 * self.class_f1[RiskLevel.ATTEMPT],
        }
