"""Fixed-log-bucket latency histograms.

Every span path (and every explicit :func:`repro.perf.observe` call)
accumulates into a :class:`Histogram`: a fixed array of buckets whose
upper bounds grow geometrically, 20 per decade, from 1µs to 100s. Fixed
buckets make recording O(1) with no allocation on the hot path, make
two histograms mergeable by element-wise addition (per-thread shards,
multi-process aggregation), and map directly onto Prometheus histogram
exposition (cumulative ``le`` buckets).

Quantiles are estimated by linear interpolation inside the bucket that
crosses the target rank. With 20 buckets per decade adjacent bounds
differ by ~12%, so the worst-case relative error of a quantile estimate
is ~6% — tight enough that p50/p90/p99 from a histogram track
``numpy.percentile`` of the raw samples (see tests/perf).
"""

from __future__ import annotations

import math

__all__ = ["Histogram", "BUCKET_BOUNDS", "BUCKETS_PER_DECADE"]

# Bucket i covers (BUCKET_BOUNDS[i-1], BUCKET_BOUNDS[i]]; bucket 0 also
# absorbs everything <= _LO (including zero/negative durations from
# clock quantisation). One extra overflow bucket catches > _HI.
_LO = 1e-6  # 1 µs
_DECADES = 8  # up to 100 s
BUCKETS_PER_DECADE = 20
_N = _DECADES * BUCKETS_PER_DECADE + 1
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    _LO * 10.0 ** (i / BUCKETS_PER_DECADE) for i in range(_N)
)
_LOG_LO = math.log10(_LO)


class Histogram:
    """Fixed log-bucket histogram of non-negative samples (seconds).

    Tracks exact ``count``/``sum``/``min``/``max`` alongside the bucket
    counts, so means and extremes are not subject to bucketing error.
    """

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (_N + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ---------------------------------------------------------

    def observe(self, value: float) -> None:
        if value <= _LO:
            idx = 0
        else:
            idx = math.ceil((math.log10(value) - _LOG_LO) * BUCKETS_PER_DECADE)
            if idx >= _N:
                idx = _N  # overflow bucket
        self.counts[idx] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Element-wise accumulate ``other`` into this histogram."""
        counts = self.counts
        for i, c in enumerate(other.counts):
            counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def copy(self) -> "Histogram":
        out = Histogram()
        out.merge(self)
        return out

    # -- estimation --------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Interpolates linearly within the crossing bucket and clamps to
        the exactly-tracked [min, max] so the tails never report a
        value outside what was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = 0.0 if i == 0 else BUCKET_BOUNDS[i - 1]
                hi = BUCKET_BOUNDS[min(i, _N - 1)]
                frac = (rank - seen) / c
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            seen += c
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The standard report tuple: p50/p90/p99 plus exact max."""
        return {
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
            "max_s": self.max if self.count else 0.0,
        }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        out = {"count": self.count, "sum_s": self.sum, "mean_s": self.mean}
        if self.count:
            out.update(self.percentiles())
            out["min_s"] = self.min
        return out

    def cumulative_buckets(self, per_decade: int = 5) -> list[tuple[float, int]]:
        """Cumulative ``(le_upper_bound, count)`` pairs for Prometheus.

        Export is coarsened to ``per_decade`` bounds per decade (the
        full 20/decade resolution stays internal for quantiles) so one
        histogram emits ~40 bucket lines instead of ~160. The final
        pair is ``(inf, count)``.
        """
        if per_decade < 1 or BUCKETS_PER_DECADE % per_decade:
            raise ValueError(
                f"per_decade must divide {BUCKETS_PER_DECADE}, got {per_decade}"
            )
        step = BUCKETS_PER_DECADE // per_decade
        out: list[tuple[float, int]] = []
        running = 0
        for i, c in enumerate(self.counts[:-1]):
            running += c
            if i % step == 0:
                out.append((BUCKET_BOUNDS[i], running))
        out.append((math.inf, self.count))
        return out
