"""Thread-safe span/counter/gauge registry with per-thread shards.

Recording is designed for the multi-threaded serving engine: each
thread nests spans on its own :mod:`threading.local` stack and
accumulates stats into its own *shard* dict, so the hot path takes no
lock at all — the registry lock is only held to register a new shard
(once per thread) and to merge shards into a snapshot at report time.
Gauges are last-write-wins values shared across threads and therefore
sit behind the lock (they are set at sampling frequency, not on the
per-call hot path).

Every span path accumulates a fixed-log-bucket
:class:`~repro.perf.histogram.Histogram` of its durations alongside
the exact total/calls, so reports include p50/p90/p99/max per path
without any change at the ~30 existing ``perf.span`` call sites.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.perf.histogram import Histogram

__all__ = ["PERF_ENV", "PerfRegistry", "PerfStat", "enabled"]

PERF_ENV = "REPRO_PERF"


def enabled() -> bool:
    """True when ``REPRO_PERF`` asks for a report (any non-empty, non-0)."""
    value = os.environ.get(PERF_ENV, "")
    return value not in ("", "0", "false", "no")


@dataclass
class PerfStat:
    """Accumulated statistics of one span/counter/observation path."""

    path: str
    total_s: float = 0.0
    calls: int = 0
    count: int = 0
    hist: Histogram | None = None

    @property
    def depth(self) -> int:
        return self.path.count("/")

    def as_dict(self) -> dict:
        out: dict = {}
        if self.calls:
            out["total_s"] = self.total_s
            out["calls"] = self.calls
        if self.count:
            out["count"] = self.count
        if self.hist is not None and self.hist.count:
            out["hist"] = self.hist.as_dict()
        return out

    def merge(self, other: "PerfStat") -> None:
        self.total_s += other.total_s
        self.calls += other.calls
        self.count += other.count
        if other.hist is not None:
            if self.hist is None:
                self.hist = Histogram()
            self.hist.merge(other.hist)


class PerfRegistry:
    """Nested span timers, counters, observations and gauges.

    Span/counter paths are slash-joined under the calling thread's
    active span stack. ``stats()``/``report()`` merge the per-thread
    shards into one snapshot; the shards themselves are never exposed.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: list[dict[str, PerfStat]] = []
        self._gauges: dict[str, float] = {}

    # -- per-thread state --------------------------------------------------

    @property
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _shard(self) -> dict[str, PerfStat]:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = {}
            self._local.shard = shard
            with self._lock:
                self._shards.append(shard)
        return shard

    def _path(self, name: str) -> str:
        return "/".join([*self._stack, name])

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str):
        """Time a block; nested spans record under the active span's path."""
        stack = self._stack
        path = self._path(name)
        stack.append(name)
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            stack.pop()
            shard = self._shard()
            stat = shard.get(path)
            if stat is None:
                stat = shard[path] = PerfStat(path, hist=Histogram())
            elif stat.hist is None:
                stat.hist = Histogram()
            stat.total_s += elapsed
            stat.calls += 1
            stat.hist.observe(elapsed)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter under the currently active span path."""
        path = self._path(name)
        shard = self._shard()
        stat = shard.get(path)
        if stat is None:
            stat = shard[path] = PerfStat(path)
        stat.count += n

    def observe(self, name: str, value: float) -> None:
        """Record one sample into ``name``'s histogram (no timing).

        For values that are measured elsewhere — e.g. the serving
        engine feeds per-request end-to-end latency and queue wait
        here from its trace timestamps.
        """
        path = self._path(name)
        shard = self._shard()
        stat = shard.get(path)
        if stat is None:
            stat = shard[path] = PerfStat(path, hist=Histogram())
        elif stat.hist is None:
            stat.hist = Histogram()
        stat.hist.observe(value)

    def gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins gauge (queue depth, cache occupancy...)."""
        with self._lock:
            self._gauges[name] = float(value)

    def reset(self) -> None:
        """Clear all shards and gauges (the calling thread's stack too)."""
        with self._lock:
            for shard in self._shards:
                shard.clear()
            self._gauges.clear()
        self._stack.clear()

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, PerfStat]:
        """Merged snapshot of every thread's shard."""
        with self._lock:
            shards = list(self._shards)
        merged: dict[str, PerfStat] = {}
        for shard in shards:
            # list() defends against the owning thread inserting
            # concurrently; per-key merge races only ever miss the very
            # latest in-flight update, never corrupt totals.
            for path, stat in list(shard.items()):
                into = merged.get(path)
                if into is None:
                    merged[path] = into = PerfStat(path)
                into.merge(stat)
        return merged

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def report(self) -> dict:
        """Machine-readable report: ``{path: {total_s, calls, count, hist}}``.

        Gauges are appended as ``{gauge: value}`` entries under their
        own names.
        """
        out = {
            path: stat.as_dict()
            for path, stat in sorted(self.stats().items())
        }
        for name, value in sorted(self.gauges().items()):
            out.setdefault(name, {})["gauge"] = value
        return out

    def snapshot(self) -> dict:
        """Structured export snapshot, grouped by instrument kind.

        ``spans`` are timed paths (with duration histograms),
        ``counters`` monotonic counts, ``observations`` value
        histograms fed via :meth:`observe`, ``gauges`` last-write-wins
        values. This is what the Prometheus renderer and the
        ``python -m repro metrics`` JSON output consume.
        """
        spans: dict[str, dict] = {}
        counters: dict[str, int] = {}
        observations: dict[str, dict] = {}
        for path, stat in sorted(self.stats().items()):
            if stat.calls:
                entry = {"total_s": stat.total_s, "calls": stat.calls}
                if stat.hist is not None and stat.hist.count:
                    entry["hist"] = stat.hist.as_dict()
                    entry["buckets"] = stat.hist.cumulative_buckets()
                spans[path] = entry
            if stat.count:
                counters[path] = stat.count
            if not stat.calls and not stat.count and stat.hist is not None \
                    and stat.hist.count:
                observations[path] = {
                    "hist": stat.hist.as_dict(),
                    "buckets": stat.hist.cumulative_buckets(),
                }
        return {
            "spans": spans,
            "counters": counters,
            "observations": observations,
            "gauges": self.gauges(),
        }

    def render(self) -> str:
        """Monospace tree of every recorded path."""
        stats = self.stats()
        gauges = self.gauges()
        if not stats and not gauges:
            return "(no spans recorded)"
        lines = []
        for path, stat in sorted(stats.items()):
            indent = "  " * stat.depth
            label = f"{indent}{path.rsplit('/', 1)[-1]}"
            parts = []
            if stat.calls:
                parts.append(f"{stat.calls:>5}x {stat.total_s:9.3f}s")
            if stat.count:
                parts.append(f"count={stat.count}")
            if stat.hist is not None and stat.hist.count > 1:
                pct = stat.hist.percentiles()
                parts.append(
                    f"p50={pct['p50_s'] * 1e3:.2f}ms "
                    f"p99={pct['p99_s'] * 1e3:.2f}ms"
                )
            lines.append(f"{label:<42} {'  '.join(parts)}")
        for name, value in sorted(gauges.items()):
            lines.append(f"{name:<42} gauge={value:g}")
        return "\n".join(lines)

    def write_json(self, path: str | Path, extra: dict | None = None) -> Path:
        """Write (or merge into) a JSON report file.

        When ``path`` already holds a JSON object, the perf report is
        merged under its ``"perf_report"`` key so benchmark metadata
        written by other tools survives. ``extra`` must not contain a
        ``"perf_report"`` key — silently clobbering the report it was
        asked to write would defeat the call.
        """
        if extra and "perf_report" in extra:
            raise ValueError(
                "write_json: 'perf_report' is reserved for the registry's "
                "own report; rename the extra key"
            )
        path = Path(path)
        payload: dict = {}
        if path.exists():
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
                if isinstance(existing, dict):
                    payload = existing
            except (OSError, json.JSONDecodeError):
                payload = {}
        payload["perf_report"] = self.report()
        if extra:
            payload.update(extra)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path
