"""Hierarchical wall-clock instrumentation for the hot paths.

A process-wide :class:`PerfRegistry` records named timing *spans* (via a
context manager) and monotonic *counters*. Spans nest: a span opened while
another is active is recorded under the parent's slash-separated path, so
the report reads like a profile of the pipeline::

    build                      1  12.41s
    build/corpus               1   4.20s
    build/preprocess           1   2.96s
    build/preprocess/near-dup  1   1.10s

The registry is always on — a span costs two ``perf_counter`` calls and a
dict update — so library code can instrument unconditionally. Reporting is
opt-in: the CLI prints the report after every command when the
``REPRO_PERF`` environment variable is set, and ``python -m repro bench
--profile`` additionally writes it to ``BENCH_PR1.json``. See
``docs/performance.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "PerfRegistry",
    "PerfStat",
    "count",
    "enabled",
    "get_registry",
    "render",
    "report",
    "reset",
    "span",
    "write_json",
    "PERF_ENV",
]

PERF_ENV = "REPRO_PERF"


def enabled() -> bool:
    """True when ``REPRO_PERF`` asks for a report (any non-empty, non-0)."""
    value = os.environ.get(PERF_ENV, "")
    return value not in ("", "0", "false", "no")


@dataclass
class PerfStat:
    """Accumulated statistics of one span/counter path."""

    path: str
    total_s: float = 0.0
    calls: int = 0
    count: int = 0

    @property
    def depth(self) -> int:
        return self.path.count("/")

    def as_dict(self) -> dict:
        out: dict = {}
        if self.calls:
            out["total_s"] = self.total_s
            out["calls"] = self.calls
        if self.count:
            out["count"] = self.count
        return out


class PerfRegistry:
    """Nested span timers + counters, keyed by slash-joined paths.

    Thread safety: each thread nests spans on its *own* stack (a shared
    stack would interleave unrelated threads' paths — the multi-threaded
    serving engine corrupted span trees exactly that way), and every
    stat update happens under a lock so concurrent recorders never lose
    increments.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._stats: dict[str, PerfStat] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording ---------------------------------------------------------

    @property
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _path(self, name: str) -> str:
        return "/".join([*self._stack, name])

    @contextmanager
    def span(self, name: str):
        """Time a block; nested spans record under the active span's path."""
        stack = self._stack
        path = self._path(name)
        stack.append(name)
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            stack.pop()
            with self._lock:
                stat = self._stats.setdefault(path, PerfStat(path))
                stat.total_s += elapsed
                stat.calls += 1

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter under the currently active span path."""
        path = self._path(name)
        with self._lock:
            stat = self._stats.setdefault(path, PerfStat(path))
            stat.count += n

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
        self._stack.clear()

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, PerfStat]:
        with self._lock:
            return dict(self._stats)

    def report(self) -> dict:
        """Machine-readable report: ``{path: {total_s, calls, count}}``."""
        return {
            path: stat.as_dict()
            for path, stat in sorted(self.stats().items())
        }

    def render(self) -> str:
        """Monospace tree of every recorded path."""
        stats = self.stats()
        if not stats:
            return "(no spans recorded)"
        lines = []
        for path, stat in sorted(stats.items()):
            indent = "  " * stat.depth
            label = f"{indent}{path.rsplit('/', 1)[-1]}"
            parts = []
            if stat.calls:
                parts.append(f"{stat.calls:>5}x {stat.total_s:9.3f}s")
            if stat.count:
                parts.append(f"count={stat.count}")
            lines.append(f"{label:<42} {'  '.join(parts)}")
        return "\n".join(lines)

    def write_json(self, path: str | Path, extra: dict | None = None) -> Path:
        """Write (or merge into) a JSON report file.

        When ``path`` already holds a JSON object, the perf report is
        merged under its ``"perf_report"`` key so benchmark metadata
        written by other tools survives. ``extra`` must not contain a
        ``"perf_report"`` key — silently clobbering the report it was
        asked to write would defeat the call.
        """
        if extra and "perf_report" in extra:
            raise ValueError(
                "write_json: 'perf_report' is reserved for the registry's "
                "own report; rename the extra key"
            )
        path = Path(path)
        payload: dict = {}
        if path.exists():
            try:
                existing = json.loads(path.read_text(encoding="utf-8"))
                if isinstance(existing, dict):
                    payload = existing
            except (OSError, json.JSONDecodeError):
                payload = {}
        payload["perf_report"] = self.report()
        if extra:
            payload.update(extra)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


_REGISTRY = PerfRegistry()


def get_registry() -> PerfRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def span(name: str):
    return _REGISTRY.span(name)


def count(name: str, n: int = 1) -> None:
    _REGISTRY.count(name, n)


def reset() -> None:
    _REGISTRY.reset()


def report() -> dict:
    return _REGISTRY.report()


def render() -> str:
    return _REGISTRY.render()


def write_json(path: str | Path, extra: dict | None = None) -> Path:
    return _REGISTRY.write_json(path, extra)
