"""Telemetry subsystem: spans, counters, gauges, histograms, tracing, export.

A process-wide :class:`PerfRegistry` records named timing *spans* (via a
context manager), monotonic *counters*, last-write-wins *gauges* and
explicit histogram *observations*. Spans nest per thread: a span opened
while another is active on the same thread is recorded under the
parent's slash-separated path, so the report reads like a profile of
the pipeline::

    build                      1  12.41s
    build/corpus               1   4.20s
    build/preprocess           1   2.96s
    build/preprocess/near-dup  1   1.10s

Every span path also accumulates a fixed-log-bucket latency histogram
(p50/p90/p99/max per path — :mod:`repro.perf.histogram`); the serving
engine additionally traces each request's lifecycle end to end
(:mod:`repro.perf.tracing`), and everything exports as Prometheus
exposition text or a JSON snapshot (:mod:`repro.perf.export`,
``python -m repro metrics`` / ``python -m repro trace``).

The registry is always on — a span costs two ``perf_counter`` calls and
a few dict/array updates on a lock-free per-thread shard — so library
code can instrument unconditionally. Reporting is opt-in: the CLI
prints the report after every command (including failed ones) when the
``REPRO_PERF`` environment variable is set, and ``python -m repro bench
--profile`` additionally writes it to ``BENCH_PR1.json``. See
``docs/observability.md`` and ``docs/performance.md``.
"""

from __future__ import annotations

from pathlib import Path

from repro.perf.export import (
    json_snapshot,
    merge_snapshots,
    render_prometheus,
    validate_prometheus,
    write_json_snapshot,
    write_prometheus,
)
from repro.perf.histogram import Histogram
from repro.perf.registry import PERF_ENV, PerfRegistry, PerfStat, enabled
from repro.perf.tracing import LIFECYCLE_EVENTS, Trace, Tracer

__all__ = [
    "Histogram",
    "LIFECYCLE_EVENTS",
    "PERF_ENV",
    "PerfRegistry",
    "PerfStat",
    "Trace",
    "Tracer",
    "count",
    "enabled",
    "gauge",
    "get_registry",
    "json_snapshot",
    "merge_snapshots",
    "observe",
    "render",
    "render_prometheus",
    "report",
    "reset",
    "snapshot",
    "span",
    "validate_prometheus",
    "write_json",
    "write_json_snapshot",
    "write_prometheus",
]

_REGISTRY = PerfRegistry()


def get_registry() -> PerfRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def span(name: str):
    return _REGISTRY.span(name)


def count(name: str, n: int = 1) -> None:
    _REGISTRY.count(name, n)


def gauge(name: str, value: float) -> None:
    _REGISTRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    _REGISTRY.observe(name, value)


def reset() -> None:
    _REGISTRY.reset()


def report() -> dict:
    return _REGISTRY.report()


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def render() -> str:
    return _REGISTRY.render()


def write_json(path: str | Path, extra: dict | None = None) -> Path:
    return _REGISTRY.write_json(path, extra)
