"""Telemetry export: Prometheus exposition text and JSON snapshots.

The renderer consumes the structured snapshot from
:meth:`repro.perf.registry.PerfRegistry.snapshot` and emits
Prometheus text exposition format (version 0.0.4 — what every scraper
accepts):

* counters  → ``repro_<path>_total``
* gauges    → ``repro_<path>``
* spans     → histogram family ``repro_<path>_seconds`` with
  cumulative ``_bucket{le="..."}`` lines plus ``_sum``/``_count``
* observations (explicit :func:`repro.perf.observe` histograms, whose
  paths already carry their unit, e.g. ``serve.request.latency_seconds``)
  → histogram family ``repro_<path>``

Paths are sanitised ``[^a-zA-Z0-9_] → _`` and prefixed ``repro_``, so
``serve.batch`` becomes ``repro_serve_batch_seconds``. No labels are
emitted — one flat time series per path keeps the scrape config
trivial.

:func:`validate_prometheus` is a strict line-format checker used by the
test suite and CI to guarantee the rendering stays scrapeable: TYPE
before samples, parseable values, ``le``-sorted cumulative buckets
ending at ``+Inf``, and ``_count`` consistent with the ``+Inf`` bucket.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = [
    "json_snapshot",
    "merge_snapshots",
    "render_prometheus",
    "validate_prometheus",
    "write_json_snapshot",
    "write_prometheus",
]

_PREFIX = "repro"
_SAN = re.compile(r"[^a-zA-Z0-9_]")

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})"
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\",?)*)\})?"
    r" (\S+)(?: (\S+))?$"
)
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.*)$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)


def _name(path: str, suffix: str = "") -> str:
    return f"{_PREFIX}_{_SAN.sub('_', path)}{suffix}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _le(bound: float) -> str:
    return "+Inf" if bound == math.inf else f"{bound:.6g}"


def _histogram_lines(
    name: str, path: str, buckets: list, sum_s: float, count: int
) -> list[str]:
    lines = [
        f"# HELP {name} Latency histogram of {path}",
        f"# TYPE {name} histogram",
    ]
    for bound, cumulative in buckets:
        lines.append(f'{name}_bucket{{le="{_le(bound)}"}} {cumulative}')
    lines.append(f"{name}_sum {_fmt(sum_s)}")
    lines.append(f"{name}_count {count}")
    return lines


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    for path, value in sorted(snapshot.get("counters", {}).items()):
        name = _name(path, "_total")
        lines.append(f"# HELP {name} Counter {path}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    for path, value in sorted(snapshot.get("gauges", {}).items()):
        name = _name(path)
        lines.append(f"# HELP {name} Gauge {path}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for path, entry in sorted(snapshot.get("spans", {}).items()):
        name = _name(path, "_seconds")
        buckets = entry.get("buckets")
        if buckets:
            lines.extend(
                _histogram_lines(
                    name, path,
                    [(b, c) for b, c in buckets],
                    entry["total_s"], entry["calls"],
                )
            )
        else:
            lines.append(f"# HELP {name}_total Total seconds in span {path}")
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_fmt(entry['total_s'])}")
    for path, entry in sorted(snapshot.get("observations", {}).items()):
        name = _name(path)
        hist = entry["hist"]
        lines.extend(
            _histogram_lines(
                name, path,
                [(b, c) for b, c in entry["buckets"]],
                hist["sum_s"], hist["count"],
            )
        )
    return "\n".join(lines) + "\n" if lines else ""


def json_snapshot(registry, tracer=None, extra: dict | None = None) -> dict:
    """One JSON-serialisable object with everything a scraper would see.

    ``perf`` holds the registry snapshot (spans/counters/observations/
    gauges); ``traces`` the tracer's ring stats and recent traces when a
    tracer is supplied. ``extra`` entries ride along at the top level
    (reserved keys rejected, mirroring ``write_json``).
    """
    if extra:
        reserved = {"perf", "traces"} & set(extra)
        if reserved:
            raise ValueError(
                f"json_snapshot: reserved keys in extra: {sorted(reserved)}"
            )
    out: dict = {"perf": registry.snapshot()}
    if tracer is not None:
        out["traces"] = {
            "stats": tracer.stats(),
            "recent": tracer.recent(limit=32),
        }
    if extra:
        out.update(extra)
    return out


def _quantiles_from_buckets(
    buckets: list, count: int, min_s: float, max_s: float
) -> dict[str, float]:
    """Re-estimate p50/p90/p99 from merged cumulative buckets.

    Same linear-interpolation-in-the-crossing-bucket scheme as
    :meth:`repro.perf.histogram.Histogram.quantile`, but over the
    coarsened export buckets (5/decade → bounds ~58% apart, worst-case
    relative error ~29%; exact count/sum/min/max are unaffected).
    Estimates are clamped to the exactly-tracked [min, max].
    """
    out: dict[str, float] = {}
    for q, key in ((0.50, "p50_s"), (0.90, "p90_s"), (0.99, "p99_s")):
        rank = q * count
        prev_bound = 0.0
        prev_cum = 0
        value = max_s
        for bound, cum in buckets:
            if cum >= rank and cum > prev_cum:
                hi = max_s if bound == math.inf else bound
                frac = (rank - prev_cum) / (cum - prev_cum)
                value = prev_bound + (hi - prev_bound) * frac
                break
            if bound != math.inf:
                prev_bound = bound
            prev_cum = cum
        out[key] = min(max(value, min_s), max_s)
    return out


def _merge_hist_entry(into: dict, entry: dict, path: str) -> None:
    """Accumulate one span/observation entry's hist+buckets into ``into``."""
    hist = entry.get("hist")
    if hist:
        agg = into.setdefault(
            "hist",
            {"count": 0, "sum_s": 0.0, "min_s": math.inf, "max_s": -math.inf},
        )
        agg["count"] += hist["count"]
        agg["sum_s"] += hist["sum_s"]
        agg["min_s"] = min(agg["min_s"], hist.get("min_s", math.inf))
        agg["max_s"] = max(agg["max_s"], hist.get("max_s", -math.inf))
    buckets = entry.get("buckets")
    if buckets:
        merged = into.get("buckets")
        if merged is None:
            into["buckets"] = [[b, c] for b, c in buckets]
        else:
            if len(merged) != len(buckets) or any(
                m[0] != b for m, (b, _) in zip(merged, buckets)
            ):
                raise ValueError(
                    f"merge_snapshots: bucket layouts differ for {path!r} — "
                    f"snapshots come from different histogram versions"
                )
            # Cumulative counts are sums of per-bucket counts, so they
            # merge element-wise just like the raw buckets would.
            for m, (_, c) in zip(merged, buckets):
                m[1] += c


def _finalize_hist(into: dict) -> None:
    hist = into.get("hist")
    if not hist:
        return
    count = hist["count"]
    hist["mean_s"] = hist["sum_s"] / count if count else 0.0
    if count and into.get("buckets"):
        hist.update(
            _quantiles_from_buckets(
                into["buckets"], count, hist["min_s"], hist["max_s"]
            )
        )


def merge_snapshots(
    snapshots: list[dict], gauge_prefixes: list[str | None] | None = None
) -> dict:
    """Merge registry snapshots from several processes into one.

    The output has the same shape as
    :meth:`repro.perf.registry.PerfRegistry.snapshot` — it renders and
    validates as Prometheus text unchanged. Counters, span totals/calls
    and histogram count/sum/min/max merge exactly; cumulative buckets
    add element-wise (identical fixed bounds across processes), and
    p50/p90/p99 are re-estimated from the merged buckets.

    Gauges are last-write-wins values and summing them would be wrong
    (two workers each holding ``queue_depth=3`` is not depth 6), so by
    default later snapshots simply overwrite earlier ones. Pass
    ``gauge_prefixes`` — one per snapshot, ``None`` to leave names
    untouched — to namespace instead: the worker pool uses
    ``pool.worker0``, ``pool.worker1``, … so per-worker gauges survive
    side by side.
    """
    snapshots = list(snapshots)
    if gauge_prefixes is not None and len(gauge_prefixes) != len(snapshots):
        raise ValueError(
            f"merge_snapshots: {len(gauge_prefixes)} gauge prefixes for "
            f"{len(snapshots)} snapshots"
        )
    spans: dict[str, dict] = {}
    counters: dict[str, int] = {}
    observations: dict[str, dict] = {}
    gauges: dict[str, float] = {}
    for i, snap in enumerate(snapshots):
        for path, value in snap.get("counters", {}).items():
            counters[path] = counters.get(path, 0) + value
        for path, entry in snap.get("spans", {}).items():
            into = spans.setdefault(path, {"total_s": 0.0, "calls": 0})
            into["total_s"] += entry["total_s"]
            into["calls"] += entry["calls"]
            _merge_hist_entry(into, entry, path)
        for path, entry in snap.get("observations", {}).items():
            _merge_hist_entry(observations.setdefault(path, {}), entry, path)
        prefix = gauge_prefixes[i] if gauge_prefixes else None
        for name, value in snap.get("gauges", {}).items():
            gauges[f"{prefix}.{name}" if prefix else name] = value
    for into in spans.values():
        _finalize_hist(into)
    for into in observations.values():
        _finalize_hist(into)
    return {
        "spans": spans,
        "counters": counters,
        "observations": observations,
        "gauges": gauges,
    }


def _parse_value(raw: str, lineno: int) -> float:
    try:
        if raw == "+Inf":
            return math.inf
        if raw == "-Inf":
            return -math.inf
        return float(raw)
    except ValueError:
        raise ValueError(f"line {lineno}: unparseable sample value {raw!r}")


def validate_prometheus(text: str) -> dict:
    """Validate exposition text; return ``{metric_family: [(labels, value)]}``.

    Raises :class:`ValueError` with the offending line number on the
    first violation. Deliberately strict about the properties a scraper
    relies on rather than a full grammar: names, TYPE-before-sample,
    float-parseable values, and histogram bucket coherence.
    """
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line) or _TYPE_RE.match(line):
                m = _TYPE_RE.match(line)
                if m:
                    if m.group(1) in types:
                        raise ValueError(
                            f"line {lineno}: duplicate TYPE for {m.group(1)}"
                        )
                    types[m.group(1)] = m.group(2)
                continue
            raise ValueError(f"line {lineno}: malformed comment {line!r}")
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, labels_raw, value_raw, _timestamp = m.groups()
        value = _parse_value(value_raw, lineno)
        family = re.sub(r"_(bucket|sum|count|total)$", "", name)
        declared = types.get(name) or types.get(family)
        if declared is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        labels = dict(
            part.split("=", 1) for part in labels_raw.split(",") if part
        ) if labels_raw else {}
        labels = {k: v.strip('"') for k, v in labels.items()}
        samples.setdefault(family if declared == "histogram" else name,
                           []).append((labels, value))

    # Histogram coherence: buckets sorted by le, cumulative, end at +Inf,
    # and _count agrees with the +Inf bucket.
    for family, ftype in types.items():
        if ftype != "histogram":
            continue
        fam_samples = samples.get(family, [])
        buckets = [
            (s[0]["le"], s[1]) for s in fam_samples if "le" in s[0]
        ]
        if not buckets:
            raise ValueError(f"histogram {family} has no _bucket samples")
        bounds = [math.inf if b == "+Inf" else float(b) for b, _ in buckets]
        if bounds != sorted(bounds):
            raise ValueError(f"histogram {family} buckets not le-sorted")
        if bounds[-1] != math.inf:
            raise ValueError(f"histogram {family} missing le=\"+Inf\" bucket")
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            raise ValueError(f"histogram {family} buckets not cumulative")
        count_samples = [
            s[1] for s in fam_samples if not s[0] and s[1] is not None
        ]
        # fam_samples holds buckets, _sum and _count; recover _count by
        # matching the +Inf bucket value among unlabelled samples.
        if counts[-1] not in count_samples:
            raise ValueError(
                f"histogram {family}: _count does not match +Inf bucket"
            )
    return samples


def write_prometheus(registry, path: str | Path) -> Path:
    """Render the registry to ``path`` (validated before writing)."""
    text = render_prometheus(registry.snapshot())
    validate_prometheus(text)
    path = Path(path)
    path.write_text(text, encoding="utf-8")
    return path


def write_json_snapshot(
    registry, path: str | Path, tracer=None, extra: dict | None = None
) -> Path:
    """Serialise :func:`json_snapshot` to ``path``."""
    path = Path(path)
    snap = json_snapshot(registry, tracer=tracer, extra=extra)
    path.write_text(json.dumps(snap, indent=2) + "\n", encoding="utf-8")
    return path
