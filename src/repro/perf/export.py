"""Telemetry export: Prometheus exposition text and JSON snapshots.

The renderer consumes the structured snapshot from
:meth:`repro.perf.registry.PerfRegistry.snapshot` and emits
Prometheus text exposition format (version 0.0.4 — what every scraper
accepts):

* counters  → ``repro_<path>_total``
* gauges    → ``repro_<path>``
* spans     → histogram family ``repro_<path>_seconds`` with
  cumulative ``_bucket{le="..."}`` lines plus ``_sum``/``_count``
* observations (explicit :func:`repro.perf.observe` histograms, whose
  paths already carry their unit, e.g. ``serve.request.latency_seconds``)
  → histogram family ``repro_<path>``

Paths are sanitised ``[^a-zA-Z0-9_] → _`` and prefixed ``repro_``, so
``serve.batch`` becomes ``repro_serve_batch_seconds``. No labels are
emitted — one flat time series per path keeps the scrape config
trivial.

:func:`validate_prometheus` is a strict line-format checker used by the
test suite and CI to guarantee the rendering stays scrapeable: TYPE
before samples, parseable values, ``le``-sorted cumulative buckets
ending at ``+Inf``, and ``_count`` consistent with the ``+Inf`` bucket.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = [
    "json_snapshot",
    "render_prometheus",
    "validate_prometheus",
    "write_json_snapshot",
    "write_prometheus",
]

_PREFIX = "repro"
_SAN = re.compile(r"[^a-zA-Z0-9_]")

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})"
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\",?)*)\})?"
    r" (\S+)(?: (\S+))?$"
)
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.*)$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)


def _name(path: str, suffix: str = "") -> str:
    return f"{_PREFIX}_{_SAN.sub('_', path)}{suffix}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _le(bound: float) -> str:
    return "+Inf" if bound == math.inf else f"{bound:.6g}"


def _histogram_lines(
    name: str, path: str, buckets: list, sum_s: float, count: int
) -> list[str]:
    lines = [
        f"# HELP {name} Latency histogram of {path}",
        f"# TYPE {name} histogram",
    ]
    for bound, cumulative in buckets:
        lines.append(f'{name}_bucket{{le="{_le(bound)}"}} {cumulative}')
    lines.append(f"{name}_sum {_fmt(sum_s)}")
    lines.append(f"{name}_count {count}")
    return lines


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    for path, value in sorted(snapshot.get("counters", {}).items()):
        name = _name(path, "_total")
        lines.append(f"# HELP {name} Counter {path}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    for path, value in sorted(snapshot.get("gauges", {}).items()):
        name = _name(path)
        lines.append(f"# HELP {name} Gauge {path}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    for path, entry in sorted(snapshot.get("spans", {}).items()):
        name = _name(path, "_seconds")
        buckets = entry.get("buckets")
        if buckets:
            lines.extend(
                _histogram_lines(
                    name, path,
                    [(b, c) for b, c in buckets],
                    entry["total_s"], entry["calls"],
                )
            )
        else:
            lines.append(f"# HELP {name}_total Total seconds in span {path}")
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_fmt(entry['total_s'])}")
    for path, entry in sorted(snapshot.get("observations", {}).items()):
        name = _name(path)
        hist = entry["hist"]
        lines.extend(
            _histogram_lines(
                name, path,
                [(b, c) for b, c in entry["buckets"]],
                hist["sum_s"], hist["count"],
            )
        )
    return "\n".join(lines) + "\n" if lines else ""


def json_snapshot(registry, tracer=None, extra: dict | None = None) -> dict:
    """One JSON-serialisable object with everything a scraper would see.

    ``perf`` holds the registry snapshot (spans/counters/observations/
    gauges); ``traces`` the tracer's ring stats and recent traces when a
    tracer is supplied. ``extra`` entries ride along at the top level
    (reserved keys rejected, mirroring ``write_json``).
    """
    if extra:
        reserved = {"perf", "traces"} & set(extra)
        if reserved:
            raise ValueError(
                f"json_snapshot: reserved keys in extra: {sorted(reserved)}"
            )
    out: dict = {"perf": registry.snapshot()}
    if tracer is not None:
        out["traces"] = {
            "stats": tracer.stats(),
            "recent": tracer.recent(limit=32),
        }
    if extra:
        out.update(extra)
    return out


def _parse_value(raw: str, lineno: int) -> float:
    try:
        if raw == "+Inf":
            return math.inf
        if raw == "-Inf":
            return -math.inf
        return float(raw)
    except ValueError:
        raise ValueError(f"line {lineno}: unparseable sample value {raw!r}")


def validate_prometheus(text: str) -> dict:
    """Validate exposition text; return ``{metric_family: [(labels, value)]}``.

    Raises :class:`ValueError` with the offending line number on the
    first violation. Deliberately strict about the properties a scraper
    relies on rather than a full grammar: names, TYPE-before-sample,
    float-parseable values, and histogram bucket coherence.
    """
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line) or _TYPE_RE.match(line):
                m = _TYPE_RE.match(line)
                if m:
                    if m.group(1) in types:
                        raise ValueError(
                            f"line {lineno}: duplicate TYPE for {m.group(1)}"
                        )
                    types[m.group(1)] = m.group(2)
                continue
            raise ValueError(f"line {lineno}: malformed comment {line!r}")
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, labels_raw, value_raw, _timestamp = m.groups()
        value = _parse_value(value_raw, lineno)
        family = re.sub(r"_(bucket|sum|count|total)$", "", name)
        declared = types.get(name) or types.get(family)
        if declared is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        labels = dict(
            part.split("=", 1) for part in labels_raw.split(",") if part
        ) if labels_raw else {}
        labels = {k: v.strip('"') for k, v in labels.items()}
        samples.setdefault(family if declared == "histogram" else name,
                           []).append((labels, value))

    # Histogram coherence: buckets sorted by le, cumulative, end at +Inf,
    # and _count agrees with the +Inf bucket.
    for family, ftype in types.items():
        if ftype != "histogram":
            continue
        fam_samples = samples.get(family, [])
        buckets = [
            (s[0]["le"], s[1]) for s in fam_samples if "le" in s[0]
        ]
        if not buckets:
            raise ValueError(f"histogram {family} has no _bucket samples")
        bounds = [math.inf if b == "+Inf" else float(b) for b, _ in buckets]
        if bounds != sorted(bounds):
            raise ValueError(f"histogram {family} buckets not le-sorted")
        if bounds[-1] != math.inf:
            raise ValueError(f"histogram {family} missing le=\"+Inf\" bucket")
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            raise ValueError(f"histogram {family} buckets not cumulative")
        count_samples = [
            s[1] for s in fam_samples if not s[0] and s[1] is not None
        ]
        # fam_samples holds buckets, _sum and _count; recover _count by
        # matching the +Inf bucket value among unlabelled samples.
        if counts[-1] not in count_samples:
            raise ValueError(
                f"histogram {family}: _count does not match +Inf bucket"
            )
    return samples


def write_prometheus(registry, path: str | Path) -> Path:
    """Render the registry to ``path`` (validated before writing)."""
    text = render_prometheus(registry.snapshot())
    validate_prometheus(text)
    path = Path(path)
    path.write_text(text, encoding="utf-8")
    return path


def write_json_snapshot(
    registry, path: str | Path, tracer=None, extra: dict | None = None
) -> Path:
    """Serialise :func:`json_snapshot` to ``path``."""
    path = Path(path)
    snap = json_snapshot(registry, tracer=tracer, extra=extra)
    path.write_text(json.dumps(snap, indent=2) + "\n", encoding="utf-8")
    return path
