"""Per-request tracing: trace ids, lifecycle events, ring buffer, slow log.

A :class:`Trace` is minted when a request enters the serving engine and
collects timestamped lifecycle events as the request moves through the
stack. The canonical serving lifecycle is six events::

    enqueue → batch_assembly → tokenize → forward → scatter → complete

(``enqueue`` at submit, ``batch_assembly`` when the micro-batcher
dispatches the coalesced batch, then the worker's processing phases).
Queue wait is the enqueue→batch_assembly gap; end-to-end latency is
enqueue→complete.

Finished traces land in a bounded ring buffer (:meth:`Tracer.recent`
serves "what just happened" debugging, the ``python -m repro trace``
command prints it) and, when they exceed a configurable threshold, are
appended as JSON lines to a *slow-request log* so tail-latency outliers
survive process exit — in a risk-monitoring deployment the p99 stragglers
are exactly the requests worth post-morteming.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path

__all__ = ["LIFECYCLE_EVENTS", "Trace", "Tracer"]

LIFECYCLE_EVENTS = (
    "enqueue",
    "batch_assembly",
    "tokenize",
    "forward",
    "scatter",
    "complete",
)


class Trace:
    """One request's id, wall-clock anchor and event timeline.

    ``event()`` is called from the submitting thread and then from
    engine threads, but never concurrently for the same trace (the
    request is owned by exactly one stage at a time), so appends are
    unguarded.
    """

    __slots__ = ("trace_id", "started_unix", "_t0", "events", "metadata")

    def __init__(
        self,
        trace_id: str,
        clock=time.perf_counter,
        metadata: dict | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.started_unix = time.time()
        self._t0 = clock()
        self.events: list[tuple[str, float]] = []
        self.metadata = metadata or {}

    def event(self, name: str, t: float | None = None) -> None:
        self.events.append((name, time.perf_counter() if t is None else t))

    def _gap(self, first: str, second: str) -> float | None:
        times = dict(self.events)
        if first in times and second in times:
            return times[second] - times[first]
        return None

    @property
    def total_s(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1][1] - self.events[0][1]

    @property
    def queue_wait_s(self) -> float:
        return self._gap("enqueue", "batch_assembly") or 0.0

    def as_dict(self) -> dict:
        t0 = self.events[0][1] if self.events else self._t0
        return {
            "trace_id": self.trace_id,
            "started_unix": self.started_unix,
            "total_ms": self.total_s * 1e3,
            "queue_wait_ms": self.queue_wait_s * 1e3,
            "events": [
                {"name": name, "t_ms": (t - t0) * 1e3}
                for name, t in self.events
            ],
            "metadata": self.metadata,
        }


class Tracer:
    """Mints traces, keeps a bounded ring of finished ones, logs slow ones.

    ring_size:
        How many finished traces to retain (oldest evicted first).
    slow_threshold_s:
        Traces whose end-to-end latency meets/exceeds this are appended
        to ``slow_log_path`` (one JSON object per line) when a path is
        configured.
    slow_log_path:
        JSONL file for slow requests; parent directories are created.
        ``None`` disables the log (the ring still records everything).
    """

    def __init__(
        self,
        ring_size: int = 256,
        slow_threshold_s: float = 1.0,
        slow_log_path: str | Path | None = None,
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.ring_size = ring_size
        self.slow_threshold_s = slow_threshold_s
        self.slow_log_path = Path(slow_log_path) if slow_log_path else None
        self._ring: list[Trace] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished = 0
        self._slow = 0

    def start(self, **metadata) -> Trace:
        """Mint a new trace with a process-unique id."""
        return Trace(f"req-{next(self._ids):06d}", metadata=metadata)

    def finish(self, trace: Trace) -> None:
        """Ring-buffer the trace; append to the slow log if over threshold."""
        slow = trace.total_s >= self.slow_threshold_s
        with self._lock:
            self._finished += 1
            self._ring.append(trace)
            if len(self._ring) > self.ring_size:
                del self._ring[: len(self._ring) - self.ring_size]
            if slow:
                self._slow += 1
        if slow and self.slow_log_path is not None:
            line = json.dumps(trace.as_dict(), sort_keys=True)
            with self._lock:
                self.slow_log_path.parent.mkdir(parents=True, exist_ok=True)
                with self.slow_log_path.open("a", encoding="utf-8") as fh:
                    fh.write(line + "\n")

    def recent(self, limit: int | None = None) -> list[dict]:
        """Most recent finished traces, newest first."""
        with self._lock:
            traces = list(self._ring)
        traces.reverse()
        if limit is not None:
            traces = traces[:limit]
        return [t.as_dict() for t in traces]

    def stats(self) -> dict:
        with self._lock:
            return {
                "finished": self._finished,
                "slow": self._slow,
                "in_ring": len(self._ring),
                "ring_size": self.ring_size,
                "slow_threshold_s": self.slow_threshold_s,
            }
