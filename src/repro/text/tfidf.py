"""TF-IDF vectorisation (dense/CSR), used by the XGBoost baseline."""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

import numpy as np
from scipy import sparse

from repro.core.errors import NotFittedError
from repro.text.tokenizer import STOPWORDS, WordTokenizer


class TfidfVectorizer:
    """Classic TF-IDF with smoothed idf, sublinear tf, and L2 rows.

    Parameters
    ----------
    max_features:
        Keep only the most document-frequent terms (None = all).
    min_df / max_df:
        Document-frequency bounds; ``max_df`` as a fraction of documents.
    sublinear_tf:
        Use ``1 + log(tf)`` instead of raw counts.
    drop_stopwords:
        Remove common English stopwords before counting.
    ngram_range:
        Inclusive (lo, hi) n-gram sizes over word tokens.
    """

    def __init__(
        self,
        max_features: int | None = 4000,
        min_df: int = 2,
        max_df: float = 0.9,
        sublinear_tf: bool = True,
        drop_stopwords: bool = True,
        ngram_range: tuple[int, int] = (1, 1),
    ) -> None:
        if ngram_range[0] < 1 or ngram_range[1] < ngram_range[0]:
            raise ValueError(f"bad ngram_range {ngram_range}")
        self.max_features = max_features
        self.min_df = min_df
        self.max_df = max_df
        self.sublinear_tf = sublinear_tf
        self.drop_stopwords = drop_stopwords
        self.ngram_range = ngram_range
        self._tokenizer = WordTokenizer()
        self.vocabulary_: dict[str, int] | None = None
        self.idf_: np.ndarray | None = None

    # -- helpers ----------------------------------------------------------

    def _terms(self, text: str) -> list[str]:
        tokens = self._tokenizer(text)
        if self.drop_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        lo, hi = self.ngram_range
        terms: list[str] = []
        for n in range(lo, hi + 1):
            if n == 1:
                terms.extend(tokens)
            else:
                terms.extend(
                    " ".join(tokens[i : i + n])
                    for i in range(len(tokens) - n + 1)
                )
        return terms

    # -- API -----------------------------------------------------------------

    def fit(self, documents: Iterable[str]) -> "TfidfVectorizer":
        docs = list(documents)
        n_docs = len(docs)
        if n_docs == 0:
            raise ValueError("cannot fit on an empty document collection")
        doc_freq = Counter()
        for doc in docs:
            doc_freq.update(set(self._terms(doc)))
        max_count = self.max_df * n_docs
        items = [
            (term, df)
            for term, df in doc_freq.items()
            if df >= self.min_df and df <= max_count
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        self.vocabulary_ = {term: i for i, (term, _) in enumerate(items)}
        self.idf_ = np.array(
            [
                math.log((1 + n_docs) / (1 + df)) + 1.0
                for _, df in items
            ],
            dtype=np.float64,
        )
        return self

    def transform(self, documents: Iterable[str]) -> sparse.csr_matrix:
        """Batched CSR construction.

        All documents' term ids are concatenated once; counting, tf/idf
        weighting, and row L2 norms are then single numpy passes keyed on
        ``doc · |V| + term`` (no per-document Counter — that predecessor
        survives as :meth:`_transform_reference`). ``np.unique`` sorts the
        keys, so rows and in-row column order match the reference exactly.
        """
        if self.vocabulary_ is None or self.idf_ is None:
            raise NotFittedError("TfidfVectorizer.transform before fit")
        vocab = self.vocabulary_
        n_vocab = len(vocab)
        term_ids: list[int] = []
        lengths: list[int] = []
        for doc in documents:
            ids = [vocab[t] for t in self._terms(doc) if t in vocab]
            term_ids.extend(ids)
            lengths.append(len(ids))
        n_docs = len(lengths)
        if not term_ids:
            return sparse.csr_matrix((n_docs, n_vocab), dtype=np.float64)
        doc_of = np.repeat(np.arange(n_docs, dtype=np.int64), lengths)
        keys = doc_of * n_vocab + np.asarray(term_ids, dtype=np.int64)
        uniq, counts = np.unique(keys, return_counts=True)
        rows = uniq // n_vocab
        cols = uniq % n_vocab
        tf = counts.astype(np.float64)
        weights = (1.0 + np.log(tf)) if self.sublinear_tf else tf
        vals = weights * self.idf_[cols]
        norms = np.sqrt(
            np.bincount(rows, weights=vals * vals, minlength=n_docs)
        )
        norms[norms == 0.0] = 1.0
        vals /= norms[rows]
        indptr = np.searchsorted(rows, np.arange(n_docs + 1))
        return sparse.csr_matrix(
            (vals, cols, indptr),
            shape=(n_docs, n_vocab),
            dtype=np.float64,
        )

    def _transform_reference(
        self, documents: Iterable[str]
    ) -> sparse.csr_matrix:
        """Per-document Counter predecessor, kept for equivalence tests."""
        if self.vocabulary_ is None or self.idf_ is None:
            raise NotFittedError("TfidfVectorizer.transform before fit")
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for doc in documents:
            counts = Counter(
                self.vocabulary_[t]
                for t in self._terms(doc)
                if t in self.vocabulary_
            )
            row_idx = sorted(counts)
            row_val = []
            for j in row_idx:
                tf = counts[j]
                weight = (1.0 + math.log(tf)) if self.sublinear_tf else float(tf)
                row_val.append(weight * self.idf_[j])
            norm = math.sqrt(sum(v * v for v in row_val)) or 1.0
            indices.extend(row_idx)
            data.extend(v / norm for v in row_val)
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (data, indices, indptr),
            shape=(len(indptr) - 1, len(self.vocabulary_)),
            dtype=np.float64,
        )

    def fit_transform(self, documents: Iterable[str]) -> sparse.csr_matrix:
        docs = list(documents)
        return self.fit(docs).transform(docs)

    def feature_names(self) -> list[str]:
        if self.vocabulary_ is None:
            raise NotFittedError("TfidfVectorizer.feature_names before fit")
        names = [""] * len(self.vocabulary_)
        for term, idx in self.vocabulary_.items():
            names[idx] = term
        return names
