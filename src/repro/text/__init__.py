"""Text stack: tokenisers, vocabulary, TF-IDF, statistical features."""

from repro.text.bpe import BPETokenizer
from repro.text.stats import TextStats, stats_matrix, text_stats
from repro.text.tfidf import TfidfVectorizer
from repro.text.tokenizer import (
    STOPWORDS,
    WordTokenizer,
    content_words,
    sentences,
)
from repro.text.vocab import (
    BOS,
    EOS,
    MASK,
    PAD,
    SPECIAL_TOKENS,
    UNK,
    Vocabulary,
)

__all__ = [
    "BPETokenizer",
    "TextStats",
    "stats_matrix",
    "text_stats",
    "TfidfVectorizer",
    "STOPWORDS",
    "WordTokenizer",
    "content_words",
    "sentences",
    "BOS",
    "EOS",
    "MASK",
    "PAD",
    "SPECIAL_TOKENS",
    "UNK",
    "Vocabulary",
]
