"""Word- and sentence-level tokenisation."""

from __future__ import annotations

import re

from repro.preprocess.normalize import normalise

_WORD_RE = re.compile(r"[a-z]+(?:'[a-z]+)?|\d+|[!?.]")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")

#: Common English stopwords (used for word-cloud / TF-IDF filtering).
STOPWORDS: frozenset[str] = frozenset(
    """
    a an the and or but if then than so because as of at by for with about
    into through during before after above below to from up down in out on
    off over under again once here there all any both each few more most
    other some such only own same too very can will just should now i me my
    we our you your he him his she her it its they them their what which who
    whom this that these those am is are was were be been being have has had
    having do does did doing would could ought not no nor
    """.split()
)


class WordTokenizer:
    """Regex word tokeniser over normalised text.

    Splits on word characters, keeps sentence-final punctuation as tokens
    (useful for the statistical features), lower-cases, expands
    contractions.
    """

    def __init__(self, keep_punctuation: bool = False) -> None:
        self.keep_punctuation = keep_punctuation

    def tokenize(self, text: str) -> list[str]:
        tokens = _WORD_RE.findall(normalise(text))
        if not self.keep_punctuation:
            tokens = [t for t in tokens if t not in {"!", "?", "."}]
        return tokens

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)


def sentences(text: str) -> list[str]:
    """Split text into sentences on terminal punctuation."""
    parts = _SENTENCE_RE.split(text.strip())
    return [p.strip() for p in parts if p.strip()]


def content_words(text: str) -> list[str]:
    """Tokens minus stopwords and digits — the word-cloud vocabulary."""
    tokens = WordTokenizer().tokenize(text)
    return [t for t in tokens if t not in STOPWORDS and not t.isdigit()]
