"""Static word embeddings: skip-gram with negative sampling (SGNS).

The paper's RNN baselines start from pretrained word vectors (its XGBoost
reference uses fastText embeddings). Since no pretrained vectors can be
downloaded in this environment, this module trains word2vec-style SGNS
embeddings on the in-domain unannotated corpus, in pure numpy — they can
then seed the BiLSTM/HiGRU embedding tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.tensor import scatter_add_rows
from repro.text.tokenizer import WordTokenizer
from repro.text.vocab import Vocabulary


@dataclass
class SGNSConfig:
    """Skip-gram training parameters."""

    dim: int = 64
    window: int = 3
    negatives: int = 5
    epochs: int = 2
    lr: float = 0.025
    min_lr: float = 1e-4
    subsample_t: float = 1e-3
    batch_size: int = 512
    seed: int = 0


@dataclass
class SGNSResult:
    """Training trace."""

    losses: list[float] = field(default_factory=list)
    pairs_seen: int = 0


class SkipGramEmbeddings:
    """Trainable SGNS embeddings over a :class:`Vocabulary`.

    Usage
    -----
    >>> emb = SkipGramEmbeddings(vocab, SGNSConfig(dim=32))
    >>> emb.train(token_id_sequences)
    >>> emb.vectors.shape
    (len(vocab), 32)
    """

    def __init__(self, vocab: Vocabulary, config: SGNSConfig | None = None):
        self.vocab = vocab
        self.config = config or SGNSConfig()
        rng = np.random.default_rng(self.config.seed)
        v = len(vocab.tokens())
        d = self.config.dim
        self.vectors = (rng.random((v, d)) - 0.5) / d  # input vectors
        self._context = np.zeros((v, d))                # output vectors
        self._rng = rng
        self._unigram_table: np.ndarray | None = None

    # -- corpus statistics ----------------------------------------------------

    def _build_noise_distribution(self, sequences: list[list[int]]) -> None:
        counts = np.zeros(len(self.vocab.tokens()))
        for seq in sequences:
            for token_id in seq:
                counts[token_id] += 1
        counts[: 5] = 0  # never sample special tokens as negatives
        powered = counts**0.75
        total = powered.sum()
        if total == 0:
            raise ValueError("corpus contains no trainable tokens")
        self._noise_probs = powered / total

    def _subsample_mask(self, seq: np.ndarray, counts: np.ndarray, total: int):
        freq = counts[seq] / max(1, total)
        t = self.config.subsample_t
        keep_prob = np.minimum(1.0, np.sqrt(t / np.maximum(freq, 1e-12)))
        return self._rng.random(len(seq)) < keep_prob

    # -- training ----------------------------------------------------------------

    def _pairs(self, sequences: list[list[int]]):
        """Yield (centre, context) id arrays, shuffled per epoch."""
        window = self.config.window
        centres, contexts = [], []
        for seq in sequences:
            arr = np.asarray(seq, dtype=np.int64)
            for i in range(len(arr)):
                span = self._rng.integers(1, window + 1)
                lo = max(0, i - span)
                hi = min(len(arr), i + span + 1)
                for j in range(lo, hi):
                    if j != i:
                        centres.append(arr[i])
                        contexts.append(arr[j])
        centres = np.array(centres, dtype=np.int64)
        contexts = np.array(contexts, dtype=np.int64)
        order = self._rng.permutation(len(centres))
        return centres[order], contexts[order]

    def train(self, sequences: list[list[int]]) -> SGNSResult:
        """Train in place on token-id sequences; returns the loss trace."""
        if not sequences:
            raise ValueError("no sequences to train on")
        self._build_noise_distribution(sequences)
        config = self.config
        result = SGNSResult()
        vocab_size = len(self.vocab.tokens())
        for epoch in range(config.epochs):
            centres, contexts = self._pairs(sequences)
            n = len(centres)
            steps = max(1, n // config.batch_size)
            for step in range(steps):
                sl = slice(step * config.batch_size, (step + 1) * config.batch_size)
                c_ids = centres[sl]
                o_ids = contexts[sl]
                if len(c_ids) == 0:
                    continue
                progress = (epoch * steps + step) / (config.epochs * steps)
                lr = max(config.min_lr, config.lr * (1.0 - progress))
                loss = self._sgd_batch(c_ids, o_ids, lr, vocab_size)
                result.losses.append(loss)
                result.pairs_seen += len(c_ids)
        return result

    def _sgd_batch(self, c_ids, o_ids, lr, vocab_size) -> float:
        """One negative-sampling SGD step over a pair batch."""
        k = self.config.negatives
        b = len(c_ids)
        neg_ids = self._rng.choice(vocab_size, size=(b, k), p=self._noise_probs)

        v_c = self.vectors[c_ids]            # (B, D)
        u_o = self._context[o_ids]           # (B, D)
        u_n = self._context[neg_ids]         # (B, K, D)

        pos_score = np.einsum("bd,bd->b", v_c, u_o)
        neg_score = np.einsum("bd,bkd->bk", v_c, u_n)
        pos_sig = 1.0 / (1.0 + np.exp(-pos_score))
        neg_sig = 1.0 / (1.0 + np.exp(-neg_score))

        # Gradients of -log σ(u_o·v_c) - Σ log σ(-u_n·v_c)
        g_pos = pos_sig - 1.0                     # (B,)
        g_neg = neg_sig                           # (B, K)
        grad_v = g_pos[:, None] * u_o + np.einsum("bk,bkd->bd", g_neg, u_n)
        grad_uo = g_pos[:, None] * v_c
        grad_un = g_neg[:, :, None] * v_c[:, None, :]

        scatter_add_rows(self.vectors, c_ids, -lr * grad_v)
        scatter_add_rows(self._context, o_ids, -lr * grad_uo)
        scatter_add_rows(self._context, neg_ids, -lr * grad_un)
        eps = 1e-10
        loss = -(
            np.log(pos_sig + eps).sum() + np.log(1.0 - neg_sig + eps).sum()
        ) / b
        return float(loss)

    # -- queries ------------------------------------------------------------------

    def vector(self, token: str) -> np.ndarray:
        return self.vectors[self.vocab.id_of(token)]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two tokens' vectors."""
        va, vb = self.vector(a), self.vector(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, token: str, k: int = 5) -> list[tuple[str, float]]:
        """Top-k nearest tokens by cosine similarity (excluding itself)."""
        target = self.vector(token)
        norms = np.linalg.norm(self.vectors, axis=1) * (
            np.linalg.norm(target) + 1e-12
        )
        sims = self.vectors @ target / np.maximum(norms, 1e-12)
        sims[self.vocab.id_of(token)] = -np.inf
        sims[:5] = -np.inf  # specials
        top = np.argsort(sims)[::-1][:k]
        return [(self.vocab.token_of(int(i)), float(sims[i])) for i in top]


def train_embeddings(
    texts: list[str],
    vocab: Vocabulary | None = None,
    config: SGNSConfig | None = None,
) -> SkipGramEmbeddings:
    """Tokenise, build a vocabulary if needed, and train SGNS vectors."""
    tokenizer = WordTokenizer()
    documents = [tokenizer(t) for t in texts]
    if vocab is None:
        vocab = Vocabulary.build(documents, max_size=4000, min_freq=2)
    sequences = [
        [vocab.id_of(tok) for tok in doc] for doc in documents if doc
    ]
    embeddings = SkipGramEmbeddings(vocab, config)
    embeddings.train(sequences)
    return embeddings
