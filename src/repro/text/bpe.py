"""Byte-pair-encoding subword tokeniser.

The paper's PLM baselines use RoBERTa/DeBERTa subword vocabularies. We
train a small BPE from scratch on the in-domain corpus — the same
construction (greedy merge of the most frequent adjacent symbol pair),
sized for a few thousand merges.

Training maintains pair counts *incrementally* (the subword-nmt
construction): a lazy max-heap over pair frequencies plus an inverted
``pair → word ids`` index means each merge touches only the words that
actually contain the merged pair, instead of rescanning the whole symbol
vocabulary per merge. The original full-rescan loop is retained as
:meth:`BPETokenizer._train_reference` — it is the executable
specification, and the equivalence tests assert both produce identical
merge tables. Ties on pair frequency break towards the lexicographically
smaller pair in both paths, so the order is deterministic and
implementation-independent.
"""

from __future__ import annotations

import heapq
from collections import Counter
from collections.abc import Iterable

from repro.core.lru import LRUCache
from repro.text.tokenizer import WordTokenizer

#: Marker appended to word-final symbols so merges cannot cross words.
END_OF_WORD = "</w>"


def _word_to_symbols(word: str) -> tuple[str, ...]:
    return tuple(word[:-1]) + (word[-1] + END_OF_WORD,)


def _merge_word(
    symbols: tuple[str, ...], pair: tuple[str, str], merged: str
) -> tuple[str, ...]:
    """Greedy left-to-right application of one merge rule to one word."""
    out: list[str] = []
    i = 0
    n = len(symbols)
    while i < n:
        if i + 1 < n and symbols[i] == pair[0] and symbols[i + 1] == pair[1]:
            out.append(merged)
            i += 2
        else:
            out.append(symbols[i])
            i += 1
    return tuple(out)


class BPETokenizer:
    """Trainable byte-pair encoder.

    Usage
    -----
    >>> bpe = BPETokenizer(num_merges=200)
    >>> bpe.train(["the cat sat", "the cat ran"])
    >>> bpe.tokenize("the cat")
    """

    def __init__(self, num_merges: int = 2000, cache_size: int = 32768) -> None:
        if num_merges < 1:
            raise ValueError("num_merges must be >= 1")
        self.num_merges = num_merges
        self.merges: dict[tuple[str, str], int] = {}
        self._word_tokenizer = WordTokenizer()
        # Bounded: under serving traffic the set of distinct words is
        # open-ended, and an unbounded dict is a slow memory leak.
        self._cache = LRUCache(maxsize=cache_size)

    # -- training ----------------------------------------------------------

    def _word_frequencies(self, texts: Iterable[str]) -> Counter:
        word_freq: Counter = Counter()
        for text in texts:
            word_freq.update(self._word_tokenizer(text))
        return word_freq

    def train(self, texts: Iterable[str]) -> "BPETokenizer":
        """Learn merge rules from raw texts (incremental pair counts)."""
        return self.train_from_frequencies(self._word_frequencies(texts))

    def train_from_frequencies(self, word_freq: Counter) -> "BPETokenizer":
        """Learn merge rules from a precomputed word-frequency table.

        Split out from :meth:`train` so callers with an already-tokenised
        corpus skip the text pass, and so benchmarks time the merge
        learning itself rather than shared tokenisation.
        """
        words: list[tuple[str, ...]] = []
        freqs: list[int] = []
        for word, freq in word_freq.items():
            if word:
                words.append(_word_to_symbols(word))
                freqs.append(freq)

        pair_counts: dict[tuple[str, str], int] = {}
        pair_words: dict[tuple[str, str], set[int]] = {}
        for wi, symbols in enumerate(words):
            freq = freqs[wi]
            for pair in zip(symbols, symbols[1:]):
                pair_counts[pair] = pair_counts.get(pair, 0) + freq
                pair_words.setdefault(pair, set()).add(wi)

        # Lazy max-heap: entries are (-count, pair); stale entries (whose
        # stored count no longer matches pair_counts) are corrected on pop.
        heap = [(-count, pair) for pair, count in pair_counts.items()]
        heapq.heapify(heap)

        merges: dict[tuple[str, str], int] = {}
        for merge_idx in range(self.num_merges):
            best: tuple[str, str] | None = None
            count = 0
            while heap:
                neg, pair = heapq.heappop(heap)
                current = pair_counts.get(pair, 0)
                if current <= 0:
                    continue
                if -neg != current:
                    heapq.heappush(heap, (-current, pair))
                    continue
                best, count = pair, current
                break
            if best is None or count < 2:
                break
            merges[best] = merge_idx
            merged_symbol = best[0] + best[1]

            deltas: dict[tuple[str, str], int] = {}
            for wi in pair_words.pop(best, ()):
                old_symbols = words[wi]
                new_symbols = _merge_word(old_symbols, best, merged_symbol)
                if new_symbols == old_symbols:  # stale index entry
                    continue
                freq = freqs[wi]
                for pair in zip(old_symbols, old_symbols[1:]):
                    deltas[pair] = deltas.get(pair, 0) - freq
                for pair in zip(new_symbols, new_symbols[1:]):
                    deltas[pair] = deltas.get(pair, 0) + freq
                    pair_words.setdefault(pair, set()).add(wi)
                words[wi] = new_symbols

            for pair, delta in deltas.items():
                if delta == 0:
                    continue
                updated = pair_counts.get(pair, 0) + delta
                if updated <= 0:
                    pair_counts.pop(pair, None)
                else:
                    pair_counts[pair] = updated
                    heapq.heappush(heap, (-updated, pair))

        self.merges = merges
        self._cache.clear()
        return self

    def _train_reference(self, texts: Iterable[str]) -> "BPETokenizer":
        """Original O(vocab) rescan-per-merge trainer (the specification).

        Kept for equivalence tests and benchmarks; produces the same merge
        table as :meth:`train` under the shared deterministic tie-break.
        """
        return self._train_reference_from_frequencies(
            self._word_frequencies(texts)
        )

    def _train_reference_from_frequencies(
        self, word_freq: Counter
    ) -> "BPETokenizer":
        vocab = {
            _word_to_symbols(word): freq for word, freq in word_freq.items() if word
        }
        merges: dict[tuple[str, str], int] = {}
        for merge_idx in range(self.num_merges):
            pair_counts: Counter = Counter()
            for symbols, freq in vocab.items():
                for pair in zip(symbols, symbols[1:]):
                    pair_counts[pair] += freq
            if not pair_counts:
                break
            best, count = min(
                pair_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
            if count < 2:
                break
            merges[best] = merge_idx
            merged_symbol = best[0] + best[1]
            new_vocab: dict[tuple[str, ...], int] = {}
            for symbols, freq in vocab.items():
                merged = _merge_word(symbols, best, merged_symbol)
                new_vocab[merged] = new_vocab.get(merged, 0) + freq
            vocab = new_vocab
        self.merges = merges
        self._cache.clear()
        return self

    # -- encoding ------------------------------------------------------------

    def _apply_merges(self, word: str) -> tuple[str, ...]:
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        symbols = list(_word_to_symbols(word))
        while len(symbols) > 1:
            ranked = [
                (self.merges[(a, b)], i)
                for i, (a, b) in enumerate(zip(symbols, symbols[1:]))
                if (a, b) in self.merges
            ]
            if not ranked:
                break
            _, i = min(ranked)
            symbols[i : i + 2] = [symbols[i] + symbols[i + 1]]
        result = tuple(symbols)
        self._cache.put(word, result)
        return result

    def tokenize(self, text: str) -> list[str]:
        """Subword tokens of ``text`` (word-final pieces carry </w>)."""
        if not self.merges:
            raise RuntimeError("BPETokenizer must be trained before use")
        pieces: list[str] = []
        for word in self._word_tokenizer(text):
            pieces.extend(self._apply_merges(word))
        return pieces

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)

    def vocabulary_tokens(self, texts: Iterable[str]) -> list[str]:
        """All distinct subword pieces produced over ``texts``."""
        seen: set[str] = set()
        for text in texts:
            seen.update(self.tokenize(text))
        return sorted(seen)
