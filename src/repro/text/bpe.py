"""Byte-pair-encoding subword tokeniser.

The paper's PLM baselines use RoBERTa/DeBERTa subword vocabularies. We
train a small BPE from scratch on the in-domain corpus — the same
construction (greedy merge of the most frequent adjacent symbol pair),
sized for a few thousand merges.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.text.tokenizer import WordTokenizer

#: Marker appended to word-final symbols so merges cannot cross words.
END_OF_WORD = "</w>"


def _word_to_symbols(word: str) -> tuple[str, ...]:
    return tuple(word[:-1]) + (word[-1] + END_OF_WORD,)


class BPETokenizer:
    """Trainable byte-pair encoder.

    Usage
    -----
    >>> bpe = BPETokenizer(num_merges=200)
    >>> bpe.train(["the cat sat", "the cat ran"])
    >>> bpe.tokenize("the cat")
    """

    def __init__(self, num_merges: int = 2000) -> None:
        if num_merges < 1:
            raise ValueError("num_merges must be >= 1")
        self.num_merges = num_merges
        self.merges: dict[tuple[str, str], int] = {}
        self._word_tokenizer = WordTokenizer()
        self._cache: dict[str, tuple[str, ...]] = {}

    # -- training ----------------------------------------------------------

    def train(self, texts: Iterable[str]) -> "BPETokenizer":
        """Learn merge rules from raw texts."""
        word_freq = Counter()
        for text in texts:
            word_freq.update(self._word_tokenizer(text))
        vocab = {
            _word_to_symbols(word): freq for word, freq in word_freq.items() if word
        }
        merges: dict[tuple[str, str], int] = {}
        for merge_idx in range(self.num_merges):
            pair_counts = Counter()
            for symbols, freq in vocab.items():
                for a, b in zip(symbols, symbols[1:]):
                    pair_counts[(a, b)] += freq
            if not pair_counts:
                break
            (best, count), = pair_counts.most_common(1)
            if count < 2:
                break
            merges[best] = merge_idx
            merged_symbol = best[0] + best[1]
            new_vocab = {}
            for symbols, freq in vocab.items():
                out = []
                i = 0
                while i < len(symbols):
                    if (
                        i + 1 < len(symbols)
                        and (symbols[i], symbols[i + 1]) == best
                    ):
                        out.append(merged_symbol)
                        i += 2
                    else:
                        out.append(symbols[i])
                        i += 1
                new_vocab[tuple(out)] = new_vocab.get(tuple(out), 0) + freq
            vocab = new_vocab
        self.merges = merges
        self._cache.clear()
        return self

    # -- encoding ------------------------------------------------------------

    def _apply_merges(self, word: str) -> tuple[str, ...]:
        if word in self._cache:
            return self._cache[word]
        symbols = list(_word_to_symbols(word))
        while len(symbols) > 1:
            ranked = [
                (self.merges[(a, b)], i)
                for i, (a, b) in enumerate(zip(symbols, symbols[1:]))
                if (a, b) in self.merges
            ]
            if not ranked:
                break
            _, i = min(ranked)
            symbols[i : i + 2] = [symbols[i] + symbols[i + 1]]
        result = tuple(symbols)
        self._cache[word] = result
        return result

    def tokenize(self, text: str) -> list[str]:
        """Subword tokens of ``text`` (word-final pieces carry </w>)."""
        if not self.merges:
            raise RuntimeError("BPETokenizer must be trained before use")
        pieces: list[str] = []
        for word in self._word_tokenizer(text):
            pieces.extend(self._apply_merges(word))
        return pieces

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)

    def vocabulary_tokens(self, texts: Iterable[str]) -> list[str]:
        """All distinct subword pieces produced over ``texts``."""
        seen: set[str] = set()
        for text in texts:
            seen.update(self.tokenize(text))
        return sorted(seen)
