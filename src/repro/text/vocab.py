"""Token vocabulary with special symbols, used by all neural models."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.core.errors import VocabularyError

PAD = "<pad>"
UNK = "<unk>"
BOS = "<s>"
EOS = "</s>"
MASK = "<mask>"

SPECIAL_TOKENS = (PAD, UNK, BOS, EOS, MASK)


class Vocabulary:
    """Bidirectional token ↔ id mapping.

    Ids 0..4 are reserved for the special tokens in
    :data:`SPECIAL_TOKENS` (pad, unk, bos, eos, mask), matching the
    conventions of the RoBERTa tokeniser family.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self._add(token)

    def _add(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        documents: Iterable[list[str]],
        max_size: int | None = None,
        min_freq: int = 1,
    ) -> "Vocabulary":
        """Frequency-sorted vocabulary from tokenised documents."""
        counts = Counter()
        for doc in documents:
            counts.update(doc)
        items = [
            (token, freq)
            for token, freq in counts.items()
            if freq >= min_freq and token not in SPECIAL_TOKENS
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if max_size is not None:
            budget = max(0, max_size - len(SPECIAL_TOKENS))
            items = items[:budget]
        return cls(token for token, _ in items)

    # -- mapping ----------------------------------------------------------------

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK]

    @property
    def num_special(self) -> int:
        """Count of reserved special ids (they occupy ids 0..num_special-1)."""
        return len(SPECIAL_TOKENS)

    def id_of(self, token: str) -> int:
        """Id of ``token``, falling back to ``<unk>``."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, idx: int) -> str:
        try:
            return self._id_to_token[idx]
        except IndexError as exc:
            raise VocabularyError(f"id {idx} out of range") from exc

    def encode(
        self, tokens: list[str], add_special: bool = False
    ) -> list[int]:
        """Token ids, optionally wrapped in ``<s> ... </s>``."""
        ids = [self.id_of(t) for t in tokens]
        if add_special:
            return [self.bos_id, *ids, self.eos_id]
        return ids

    def decode(self, ids: Iterable[int], skip_special: bool = True) -> list[str]:
        tokens = [self.token_of(int(i)) for i in ids]
        if skip_special:
            tokens = [t for t in tokens if t not in SPECIAL_TOKENS]
        return tokens

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def tokens(self) -> list[str]:
        """All tokens in id order (includes specials)."""
        return list(self._id_to_token)
