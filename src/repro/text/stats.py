"""Text statistical and linguistic features (XGBoost text dimension).

The paper's feature framework combines TF-IDF with "text statistical
features and linguistic features"; it specifically calls out *sudden
changes in content length* as predictive. This module computes the
per-post statistics those sequence features are built from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields

import numpy as np

from repro.text.tokenizer import WordTokenizer, sentences

_FIRST_PERSON = {"i", "me", "my", "mine", "myself"}
_NEGATIONS = {"not", "no", "never", "nothing", "nobody", "nowhere", "neither"}
#: Absolutist words are elevated in anxiety/depression/ideation language
#: (Al-Mosaiwi & Johnstone, 2018) — a standard linguistic risk feature.
_ABSOLUTIST = {
    "always", "never", "completely", "totally", "entire", "entirely",
    "everyone", "everything", "nothing", "definitely", "constantly",
    "absolutely", "all", "every", "must", "whole",
}
_QUESTION_RE = re.compile(r"\?")
_EXCLAIM_RE = re.compile(r"!")


@dataclass(frozen=True)
class TextStats:
    """Per-post statistical features."""

    num_chars: float
    num_words: float
    num_sentences: float
    avg_word_length: float
    avg_sentence_length: float
    first_person_ratio: float
    negation_ratio: float
    absolutist_ratio: float
    question_marks: float
    exclamation_marks: float
    uppercase_ratio: float
    type_token_ratio: float

    def as_vector(self) -> np.ndarray:
        return np.array(
            [getattr(self, f.name) for f in fields(self)], dtype=np.float64
        )

    @classmethod
    def feature_names(cls) -> list[str]:
        return [f.name for f in fields(cls)]


_TOKENIZER = WordTokenizer()


def text_stats(text: str) -> TextStats:
    """Compute :class:`TextStats` for one post."""
    tokens = _TOKENIZER(text)
    sents = sentences(text)
    n_words = len(tokens)
    n_sents = max(1, len(sents))
    alpha = [c for c in text if c.isalpha()]
    upper = sum(1 for c in alpha if c.isupper())
    denom = max(1, n_words)
    return TextStats(
        num_chars=float(len(text)),
        num_words=float(n_words),
        num_sentences=float(len(sents)),
        avg_word_length=(
            float(np.mean([len(t) for t in tokens])) if tokens else 0.0
        ),
        avg_sentence_length=n_words / n_sents,
        first_person_ratio=sum(t in _FIRST_PERSON for t in tokens) / denom,
        negation_ratio=sum(t in _NEGATIONS for t in tokens) / denom,
        absolutist_ratio=sum(t in _ABSOLUTIST for t in tokens) / denom,
        question_marks=float(len(_QUESTION_RE.findall(text))),
        exclamation_marks=float(len(_EXCLAIM_RE.findall(text))),
        uppercase_ratio=upper / max(1, len(alpha)),
        type_token_ratio=len(set(tokens)) / denom,
    )


def stats_matrix(texts: list[str]) -> np.ndarray:
    """Stack per-post stats into an (n_posts, n_features) matrix."""
    if not texts:
        return np.zeros((0, len(TextStats.feature_names())))
    return np.vstack([text_stats(t).as_vector() for t in texts])
