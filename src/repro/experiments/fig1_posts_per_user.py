"""Figure 1 — distribution of posts per user.

Paper observation: "the majority of users have fewer than 20 historical
posts", with a long right tail of very active users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import DEFAULT_SEED
from repro.experiments.common import BENCH_SCALE, cached_build, format_table

#: Histogram bucket upper edges (posts per user).
BUCKET_EDGES = (1, 2, 5, 10, 20, 50, 100, np.inf)


@dataclass(frozen=True)
class Fig1Data:
    counts_per_user: np.ndarray
    bucket_labels: list[str]
    bucket_counts: list[int]

    @property
    def fraction_under_20(self) -> float:
        return float((self.counts_per_user < 20).mean())

    @property
    def mean_posts(self) -> float:
        return float(self.counts_per_user.mean())

    @property
    def median_posts(self) -> float:
        return float(np.median(self.counts_per_user))


def run(scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED) -> Fig1Data:
    dataset = cached_build(scale, seed).dataset
    counts = np.array(sorted(dataset.posts_per_user().values()))
    labels, bucketed = [], []
    lower = 0
    for edge in BUCKET_EDGES:
        if np.isinf(edge):
            labels.append(f">{lower}")
            bucketed.append(int((counts > lower).sum()))
        else:
            labels.append(f"{lower + 1}-{int(edge)}" if edge != lower + 1 else f"{int(edge)}")
            bucketed.append(int(((counts > lower) & (counts <= edge)).sum()))
            lower = int(edge)
    return Fig1Data(
        counts_per_user=counts, bucket_labels=labels, bucket_counts=bucketed
    )


def render(data: Fig1Data) -> str:
    peak = max(data.bucket_counts) or 1
    rows = []
    for label, count in zip(data.bucket_labels, data.bucket_counts):
        bar = "#" * max(1 if count else 0, round(40 * count / peak))
        rows.append([label, count, bar])
    table = format_table(["posts", "users", "histogram"], rows)
    summary = (
        f"users: {len(data.counts_per_user)}  mean: {data.mean_posts:.1f}  "
        f"median: {data.median_posts:.0f}  <20 posts: "
        f"{100 * data.fraction_under_20:.1f}%"
    )
    return f"{table}\n{summary}"


def main() -> None:
    data = run()
    print("Figure 1: Distribution of Posts per User")
    print(render(data))


if __name__ == "__main__":
    main()
