"""Figure 4 — risk level distribution for the 20 most active users.

Paper: a stacked per-user histogram of the four risk levels across each
top-20 user's posts, with user identifiers removed for privacy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import DEFAULT_SEED
from repro.core.schema import ALL_LEVELS, RiskLevel
from repro.experiments.common import BENCH_SCALE, cached_build, format_table


@dataclass(frozen=True)
class UserRiskProfile:
    """Risk-level histogram of one (pseudonymous) user."""

    rank: int  # 1 = most active; identifiers removed as in the paper
    total_posts: int
    counts: dict[RiskLevel, int]

    def fraction(self, level: RiskLevel) -> float:
        return self.counts.get(level, 0) / max(1, self.total_posts)

    @property
    def dominant(self) -> RiskLevel:
        return max(ALL_LEVELS, key=lambda lv: (self.counts.get(lv, 0), int(lv)))


def run(
    scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED, k: int = 20
) -> list[UserRiskProfile]:
    dataset = cached_build(scale, seed).dataset
    histories = dataset.histories()
    profiles = []
    for rank, author in enumerate(dataset.most_active_users(k), start=1):
        posts = histories[author].posts
        counts = {level: 0 for level in ALL_LEVELS}
        for post in posts:
            counts[dataset.label_of(post)] += 1
        profiles.append(
            UserRiskProfile(rank=rank, total_posts=len(posts), counts=counts)
        )
    return profiles


def render(profiles: list[UserRiskProfile]) -> str:
    rows = []
    for p in profiles:
        rows.append(
            [
                f"user-{p.rank:02d}",
                p.total_posts,
                p.counts[RiskLevel.INDICATOR],
                p.counts[RiskLevel.IDEATION],
                p.counts[RiskLevel.BEHAVIOR],
                p.counts[RiskLevel.ATTEMPT],
                p.dominant.short,
            ]
        )
    return format_table(
        ["user (anon)", "posts", "IN", "ID", "BR", "AT", "dominant"], rows
    )


def main() -> None:
    print("Figure 4: Risk Level Distribution for Most Active Users (Top 20)")
    print(render(run()))


if __name__ == "__main__":
    main()
