"""Ablations over the design choices DESIGN.md calls out.

1. **Feature dimensions** (§III-A1): retrain XGBoost with each feature
   dimension alone (time / sequence / text) and all together.
2. **PLM pretraining**: RoBERTa fine-tuned with vs without the MLM pass.
3. **Window size** (§III): the "stable 5-element window" vs smaller.
4. **Voting**: label noise of 3-way-voted joint labels vs solo labels.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.config import WindowConfig
from repro.core.rng import DEFAULT_SEED
from repro.eval.metrics import EvalReport, accuracy, macro_f1
from repro.eval.runner import _default_jobs
from repro.experiments.common import BENCH_SCALE, cached_build, format_table
from repro.models.neural_common import TrainerConfig
from repro.models.roberta import RobertaRiskModel
from repro.models.xgboost_baseline import XGBoostBaseline
from repro.temporal.windows import PostWindow


@dataclass
class AblationRow:
    name: str
    accuracy_pct: float
    macro_f1_pct: float


def _evaluate(model, train, val, test) -> AblationRow:
    model.fit(train, val)
    y = np.array([int(w.label) for w in test])
    pred = model.predict(test)
    return AblationRow(
        name=model.name,
        accuracy_pct=100 * accuracy(y, pred),
        macro_f1_pct=100 * macro_f1(y, pred),
    )


class _DimensionOnlyXGBoost(XGBoostBaseline):
    """XGBoost restricted to one feature dimension's columns."""

    def __init__(self, dimension: str, **kwargs) -> None:
        super().__init__(**kwargs)
        self.dimension = dimension
        self.name = f"XGBoost[{dimension}]"

    def _columns(self) -> slice:
        return self.framework.dimension_slices()[self.dimension]

    def _fit(self, train, validation):
        x_train = self.framework.fit_transform(train)[:, self._columns()]
        from repro.boosting import GradientBoostingClassifier
        from repro.models.base import window_labels

        eval_set = None
        if validation:
            eval_set = (
                self.framework.transform(validation)[:, self._columns()],
                window_labels(validation),
            )
        self.booster = GradientBoostingClassifier(self.params)
        self.booster.fit(x_train, window_labels(train), eval_set=eval_set)

    def _predict(self, windows):
        return self.booster.predict(
            self.framework.transform(windows)[:, self._columns()]
        )


def _run_jobs(job, payloads, n_jobs):
    """Map ``job`` over ``payloads``, optionally across worker processes.

    Each configuration is seeded independently, so the parallel path
    returns the same rows as the serial one, in payload order. Workers are
    forked, so they inherit the parent's ``cached_build`` memo and never
    rebuild the dataset.
    """
    jobs = _default_jobs() if n_jobs is None else int(n_jobs)
    if jobs <= 1 or len(payloads) <= 1:
        return [job(p) for p in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(job, payloads))


def _dimension_job(payload) -> AblationRow:
    scale, seed, dim = payload
    splits = cached_build(scale, seed).dataset.splits()
    model = XGBoostBaseline() if dim is None else _DimensionOnlyXGBoost(dim)
    return _evaluate(model, splits.train, splits.validation, splits.test)


def feature_dimension_ablation(
    scale: float = BENCH_SCALE,
    seed: int = DEFAULT_SEED,
    n_jobs: int | None = None,
) -> list[AblationRow]:
    """XGBoost with all features vs each dimension alone."""
    payloads = [
        (scale, seed, dim) for dim in (None, "time", "sequence", "text")
    ]
    return _run_jobs(_dimension_job, payloads, n_jobs)


def pretraining_ablation(
    scale: float = BENCH_SCALE,
    seed: int = DEFAULT_SEED,
    pretrain_steps: int = 400,
) -> list[AblationRow]:
    """RoBERTa with vs without MLM domain pretraining."""
    build = cached_build(scale, seed)
    splits = build.dataset.splits()
    pretrain = build.dataset.pretrain_texts[:6000]
    rows = []
    for steps, tag in ((pretrain_steps, "MLM"), (0, "no-MLM")):
        model = RobertaRiskModel(
            pretrain_texts=pretrain, pretrain_steps=steps, seed=seed
        )
        model.name = f"RoBERTa[{tag}]"
        rows.append(
            _evaluate(model, splits.train, splits.validation, splits.test)
        )
    return rows


def _window_job(payload) -> AblationRow:
    scale, seed, size = payload
    dataset = cached_build(scale, seed).dataset
    splits = dataset.splits(window_config=WindowConfig(size=size))
    model = XGBoostBaseline()
    model.name = f"XGBoost[w={size}]"
    return _evaluate(model, splits.train, splits.validation, splits.test)


def window_size_ablation(
    scale: float = BENCH_SCALE,
    seed: int = DEFAULT_SEED,
    sizes: tuple[int, ...] = (1, 3, 5),
    n_jobs: int | None = None,
) -> list[AblationRow]:
    """The stable 5-element window vs truncated histories (XGBoost)."""
    payloads = [(scale, seed, size) for size in sizes]
    return _run_jobs(_window_job, payloads, n_jobs)


def voting_ablation(
    scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED
) -> dict[str, float]:
    """Label-noise rate of voted / expert-reviewed labels vs solo labels."""
    campaign = cached_build(scale, seed).campaign
    solo_wrong = solo_total = voted_wrong = voted_total = 0
    for task in campaign.project.completed:
        true = task.post.oracle_label
        if task.resolution == "single":
            solo_total += 1
            solo_wrong += int(task.final_label != true)
        elif task.resolution in ("vote", "review", "joint-decision"):
            voted_total += 1
            voted_wrong += int(task.final_label != true)
    return {
        "solo_noise": solo_wrong / max(1, solo_total),
        "voted_noise": voted_wrong / max(1, voted_total),
        "solo_total": float(solo_total),
        "voted_total": float(voted_total),
    }


def embedding_init_ablation(
    scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED
) -> list[AblationRow]:
    """BiLSTM with random vs SGNS-pretrained word embeddings."""
    from repro.models.bilstm import TimeAwareBiLSTM
    from repro.text.embeddings import SGNSConfig, train_embeddings

    build = cached_build(scale, seed)
    splits = build.dataset.splits()
    rows = []
    embeddings = train_embeddings(
        build.dataset.pretrain_texts[:3000],
        config=SGNSConfig(dim=64, epochs=1, seed=seed),
    )
    for pretrained, tag in ((embeddings, "SGNS-init"), (None, "random-init")):
        model = TimeAwareBiLSTM(pretrained_embeddings=pretrained, seed=seed)
        model.name = f"BiLSTM[{tag}]"
        rows.append(
            _evaluate(model, splits.train, splits.validation, splits.test)
        )
    return rows


def render(rows: list[AblationRow]) -> str:
    return format_table(
        ["configuration", "Acc%", "MacroF1%"],
        [[r.name, r.accuracy_pct, r.macro_f1_pct] for r in rows],
    )


def main() -> None:
    print("Ablation: feature dimensions (XGBoost)")
    print(render(feature_dimension_ablation()))
    print()
    print("Ablation: window size")
    print(render(window_size_ablation()))
    print()
    print("Ablation: voting vs solo label noise")
    print(voting_ablation())
    print()
    print("Ablation: MLM pretraining (RoBERTa)")
    print(render(pretraining_ablation()))
    print()
    print("Ablation: embedding initialisation (BiLSTM)")
    print(render(embedding_init_ablation()))


if __name__ == "__main__":
    main()
