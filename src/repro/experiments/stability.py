"""Run-to-run stability (§III-B): "All models performed stably across
multiple experimental runs, indicating high quality data annotation and
reliable datasets."

Repeats training of a baseline over several seeds on fixed user-disjoint
splits and reports the spread of accuracy/macro-F1.
"""

from __future__ import annotations

from repro.core.rng import DEFAULT_SEED
from repro.eval.runner import MultiRunResult, run_repeated
from repro.experiments.common import BENCH_SCALE, cached_build, format_table


def run(
    scale: float = BENCH_SCALE,
    seed: int = DEFAULT_SEED,
    model: str = "xgboost",
    seeds: tuple[int, ...] = (0, 1, 2),
    n_jobs: int | None = None,
) -> MultiRunResult:
    """Repeat train/eval of ``model`` across ``seeds``.

    ``n_jobs`` forwards to :func:`run_repeated`; None reads
    ``REPRO_SEED_JOBS`` (seeds run in parallel processes when > 1).
    """
    dataset = cached_build(scale, seed).dataset
    splits = dataset.splits()
    kwargs = {}
    if model in ("roberta", "deberta"):
        kwargs["pretrain_texts"] = dataset.pretrain_texts[:6000]
        kwargs["pretrain_steps"] = 300
    return run_repeated(model, splits, seeds=seeds, n_jobs=n_jobs, **kwargs)


def render(result: MultiRunResult) -> str:
    acc = result.summary("accuracy")
    f1 = result.summary("macro_f1")
    rows = [
        ["accuracy", 100 * acc.mean, 100 * acc.std],
        ["macro F1", 100 * f1.mean, 100 * f1.std],
    ]
    table = format_table(["metric", "mean %", "std %"], rows)
    return f"{result.model} over {len(result.reports)} runs\n{table}"


def main() -> None:
    result = run()
    print("Stability across repeated runs (paper §III-B)")
    print(render(result))
    print("stable (std < 10pp):", result.stable)


if __name__ == "__main__":
    main()
