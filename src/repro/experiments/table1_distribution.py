"""Table I — class distribution of the annotated dataset.

Paper values: Attempt 809 (5.54%), Behavior 2,056 (14.07%), Ideation
7,133 (48.81%), Indicator 4,615 (31.58%) over 14,613 posts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import DEFAULT_SEED
from repro.core.schema import RiskLevel
from repro.experiments.common import BENCH_SCALE, cached_build, format_table

#: Published Table I percentages, keyed by label.
PAPER_PERCENTAGES: dict[RiskLevel, float] = {
    RiskLevel.ATTEMPT: 5.54,
    RiskLevel.BEHAVIOR: 14.07,
    RiskLevel.IDEATION: 48.81,
    RiskLevel.INDICATOR: 31.58,
}


@dataclass(frozen=True)
class Table1Row:
    category: str
    count: int
    percentage: float
    paper_percentage: float


def run(scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED) -> list[Table1Row]:
    """Regenerate Table I from a dataset build."""
    dataset = cached_build(scale, seed).dataset
    dist = dataset.label_distribution()
    rows = []
    order = (
        RiskLevel.ATTEMPT,
        RiskLevel.BEHAVIOR,
        RiskLevel.IDEATION,
        RiskLevel.INDICATOR,
    )
    for level in order:
        rows.append(
            Table1Row(
                category=level.label,
                count=dist.counts.get(level, 0),
                percentage=100.0 * dist.fraction(level),
                paper_percentage=PAPER_PERCENTAGES[level],
            )
        )
    return rows


def render(rows: list[Table1Row]) -> str:
    return format_table(
        ["Category", "Count", "Percentage", "Paper %"],
        [[r.category, r.count, r.percentage, r.paper_percentage] for r in rows],
    )


def max_percentage_deviation(rows: list[Table1Row]) -> float:
    """Largest |measured − paper| percentage-point gap across classes."""
    return max(abs(r.percentage - r.paper_percentage) for r in rows)


def main() -> None:
    rows = run()
    print("Table I: Data Distribution (synthetic rebuild vs paper)")
    print(render(rows))
    print(f"max deviation: {max_percentage_deviation(rows):.2f} pp")


if __name__ == "__main__":
    main()
