"""Shared experiment plumbing: cached dataset builds and table rendering."""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.cache import build_dataset_cached
from repro.core.config import CorpusConfig
from repro.core.pipeline import BuildResult
from repro.core.rng import DEFAULT_SEED

#: Default corpus fraction used by the benchmark harness. Chosen so the
#: full Table III (five models, four of them trained from scratch) runs in
#: minutes on a laptop; pass ``scale=1.0`` for the paper-sized corpus.
BENCH_SCALE = 0.3


@functools.lru_cache(maxsize=4)
def cached_build(scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED) -> BuildResult:
    """Build (or reuse) the synthetic dataset for experiments.

    Memoised per (scale, seed) so that the benchmark suite — which touches
    the dataset from many modules — only pays the build cost once per
    process, and read through the on-disk content-addressed cache (set
    ``REPRO_CACHE_DIR``) so repeat *sessions* skip the build entirely.
    """
    config = CorpusConfig(seed=seed)
    if scale != 1.0:
        config = config.scaled(scale)
    return build_dataset_cached(config, near_dedup=False)


@dataclass(frozen=True)
class PaperComparison:
    """One metric compared against the paper's published value."""

    name: str
    paper: float
    measured: float

    @property
    def delta(self) -> float:
        return self.measured - self.paper


def format_table(headers: list[str], rows: list[list]) -> str:
    """Monospace table (the harness prints the same rows the paper reports)."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def line(parts):
        return " | ".join(p.ljust(w) for p, w in zip(parts, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [line(headers), sep]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_comparisons(comparisons: list[PaperComparison]) -> str:
    rows = [[c.name, c.paper, c.measured, f"{c.delta:+.1f}"] for c in comparisons]
    return format_table(["metric", "paper", "measured", "delta"], rows)
