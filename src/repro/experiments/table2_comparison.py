"""Table II — comparison with existing suicide-risk datasets.

The paper's comparison axes: source platform, size (posts/users), risk
level granularity, fully-manual annotation, and public availability. The
eight external rows are static metadata transcribed from the paper; the
"Ours" row is *computed* from the rebuilt dataset so the reproduction
keeps the claimed properties checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import DEFAULT_SEED
from repro.experiments.common import BENCH_SCALE, cached_build, format_table


@dataclass(frozen=True)
class DatasetEntry:
    """One row of Table II."""

    name: str
    source: str
    num_posts: int | None  # None = not published ("- Posts")
    num_users: int | None
    risk_level: str  # "Post", "User", or "Post, User"
    fine_grained: bool
    fully_manual: bool
    available: bool


#: The eight comparison rows, as published (paper references [12]-[18], [3]).
EXTERNAL_DATASETS: tuple[DatasetEntry, ...] = (
    DatasetEntry(
        "Suicide and Depression Detection (Kaggle)", "Reddit",
        236_258, None, "Post", False, False, True,
    ),
    DatasetEntry(
        "Suicidal Ideation Detection in Online User Content",
        "Reddit, Twitter", 17_386, None, "Post", False, False, False,
    ),
    DatasetEntry(
        "Latent Suicide Risk Detection on Microblog",
        "Tree Hole, Weibo", 744_031, 7_329, "User", False, True, False,
    ),
    DatasetEntry(
        "Suicidal Ideation in Twitter", "Twitter",
        34_306, 32_558, "Post", False, True, False,
    ),
    DatasetEntry(
        "Suicide Risk via Online Postings", "Reddit",
        None, 934, "User", True, False, True,
    ),
    DatasetEntry(
        "CLPsych2019", "Reddit", None, 621, "User", True, False, True,
    ),
    DatasetEntry(
        "Knowledge-aware Assessment of Suicide Risk", "Reddit",
        15_755, 500, "User", True, True, False,
    ),
    DatasetEntry(
        "Suicide risk level and trigger detection", "Reddit",
        3_998, 500, "Post, User", True, True, True,
    ),
)

#: Properties the paper claims for RSD-15K (checked against the rebuild).
OURS_CLAIMS = DatasetEntry(
    "Ours (RSD-15K)", "Reddit", 14_613, 1_265, "Post, User", True, True, True
)


def ours_row(scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED) -> DatasetEntry:
    """The "Ours" row computed from the rebuilt dataset."""
    dataset = cached_build(scale, seed).dataset
    return DatasetEntry(
        name="Ours (RSD-15K, rebuilt)",
        source="Reddit (simulated)",
        num_posts=dataset.num_posts,
        num_users=dataset.num_users,
        risk_level="Post, User",
        fine_grained=True,   # four C-SSRS-derived levels
        fully_manual=True,   # every post passed the simulated campaign
        available=True,
    )


def advantage_checks(entry: DatasetEntry) -> dict[str, bool]:
    """The four §II-C2 advantage claims, evaluated for one row."""
    both_levels = entry.risk_level == "Post, User"
    larger_than_prior_user_level = (entry.num_users or 0) > 500
    return {
        "post_and_user_level": both_levels,
        "larger_than_prior_fine_grained": larger_than_prior_user_level,
        "fine_grained": entry.fine_grained,
        "fully_manual_and_available": entry.fully_manual and entry.available,
    }


def run(scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED) -> list[DatasetEntry]:
    """All Table II rows, the last one computed from the rebuild."""
    return [*EXTERNAL_DATASETS, ours_row(scale, seed)]


def render(rows: list[DatasetEntry]) -> str:
    def num(value) -> str:
        return "-" if value is None else f"{value:,}"

    def mark(flag: bool) -> str:
        return "yes" if flag else "no"

    return format_table(
        ["Dataset", "Source", "Posts", "Users", "Risk Level", "Fine", "Manual", "Avail"],
        [
            [e.name[:44], e.source, num(e.num_posts), num(e.num_users),
             e.risk_level, mark(e.fine_grained), mark(e.fully_manual),
             mark(e.available)]
            for e in rows
        ],
    )


def main() -> None:
    rows = run()
    print("Table II: Dataset Comparison")
    print(render(rows))
    checks = advantage_checks(rows[-1])
    print("ours advantages:", checks)


if __name__ == "__main__":
    main()
