"""Per-table/figure reproduction harness.

Each module regenerates one artefact of the paper's evaluation:

================================  =========================================
module                            paper artefact
================================  =========================================
``table1_distribution``           Table I — class distribution
``table2_comparison``             Table II — dataset comparison
``table3_baselines``              Table III — five-baseline benchmark
``table4_scale``                  Table IV — data scale vs model scale
``fig1_posts_per_user``           Figure 1 — posts-per-user histogram
``fig23_wordclouds``              Figures 2 & 3 — per-class word clouds
``fig4_top_users``                Figure 4 — top-20 user risk profiles
``kappa_consistency``             §II-C1 — Fleiss κ = 0.7206
``ablations``                     design-choice ablations (ours)
================================  =========================================

Every module exposes ``run(scale, seed)`` returning structured data and a
``main()`` that prints the same rows/series the paper reports.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    evolution_analysis,
    fig1_posts_per_user,
    fig23_wordclouds,
    fig4_top_users,
    kappa_consistency,
    stability,
    table1_distribution,
    table2_comparison,
    table3_baselines,
    table4_scale,
)
from repro.experiments.common import BENCH_SCALE, cached_build, format_table

__all__ = [
    "ablations",
    "fig1_posts_per_user",
    "fig23_wordclouds",
    "fig4_top_users",
    "kappa_consistency",
    "table1_distribution",
    "table2_comparison",
    "table3_baselines",
    "table4_scale",
    "BENCH_SCALE",
    "cached_build",
    "format_table",
]
