"""Table IV — dataset scale vs model scale (DeBERTa variants).

Paper setup:

* **500-sample configuration** — DeBERTa-*Large*, trained on 500 annotated
  samples with full optimisation (hyper-parameter tuning, class-balanced
  sampling, model adjustment): 74% accuracy / 0.74 macro F1.
* **15K configuration** — DeBERTa-*Base*, full dataset, *no* tuning and
  *no* balancing: 76% accuracy / 0.70 macro F1.

Claim reproduced: large data + small un-tuned model ≥ small data + large
tuned model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import DEFAULT_SEED, stream
from repro.eval.metrics import EvalReport
from repro.experiments.common import BENCH_SCALE, cached_build, format_table
from repro.models.deberta import DebertaRiskModel
from repro.models.neural_common import TrainerConfig
from repro.models.plm import PLMConfig

#: Paper Table IV rows: (data, model, optimised, macro_f1, acc_pct).
PAPER_TABLE4 = {
    "small-data": ("500", "Large", True, 0.74, 74.0),
    "large-data": ("15K", "Base", False, 0.70, 76.0),
}

#: Train-set size of the small-data configuration, as a fraction of the
#: paper's 500-of-14,613 ratio (applied to the scaled corpus).
SMALL_DATA_RATIO = 500 / 14_613


@dataclass
class Table4Result:
    small_data: EvalReport
    large_data: EvalReport

    @property
    def large_data_wins_accuracy(self) -> bool:
        return self.large_data.accuracy >= self.small_data.accuracy


def _balanced_subset(windows, target_size: int, seed: int):
    """Class-balanced subsample (the paper's "data balance sampling")."""
    rng = stream(seed, "table4-balance")
    labels = np.array([int(w.label) for w in windows])
    per_class = max(1, target_size // 4)
    picked: list[int] = []
    for cls in range(4):
        pool = np.nonzero(labels == cls)[0]
        if pool.size == 0:
            continue
        draw = rng.choice(pool, size=per_class, replace=pool.size < per_class)
        picked.extend(int(i) for i in draw)
    rng.shuffle(picked)
    return [windows[i] for i in picked]


def run(
    scale: float = BENCH_SCALE,
    seed: int = DEFAULT_SEED,
    pretrain_steps: int = 400,
) -> Table4Result:
    """Run both Table IV configurations on one dataset build."""
    build = cached_build(scale, seed)
    dataset = build.dataset
    splits = dataset.splits()
    y_test = np.array([int(w.label) for w in splits.test])
    pretrain = dataset.pretrain_texts[:6000]

    # -- small data + large model + full optimisation -----------------------
    small_n = max(24, int(round(len(splits.train) * SMALL_DATA_RATIO * 10)))
    # (×10 keeps the subset trainable at reduced corpus scales while
    #  preserving the paper's an-order-of-magnitude-less-data contrast)
    small_train = _balanced_subset(splits.train, small_n, seed)
    tuned = TrainerConfig(
        epochs=24, lr=1e-3, class_weighted=True, label_smoothing=0.05,
        patience=10, seed=seed,
    )
    large_model = DebertaRiskModel(
        config=PLMConfig.large(),
        trainer=tuned,
        pretrain_texts=pretrain,
        pretrain_steps=pretrain_steps,
        seed=seed,
    )
    large_model.fit(small_train, splits.validation)
    small_report = EvalReport.compute(
        "DeBERTa-Large@500", y_test, large_model.predict(splits.test)
    )

    # -- large data + base model + no optimisation ---------------------------
    default_trainer = TrainerConfig(
        epochs=18, lr=1.5e-3, class_weighted=False, label_smoothing=0.0,
        patience=8, seed=seed,
    )
    base_model = DebertaRiskModel(
        config=PLMConfig.base(),
        trainer=default_trainer,
        pretrain_texts=pretrain,
        pretrain_steps=pretrain_steps,
        seed=seed,
    )
    base_model.fit(splits.train, splits.validation)
    large_report = EvalReport.compute(
        "DeBERTa-Base@full", y_test, base_model.predict(splits.test)
    )
    return Table4Result(small_data=small_report, large_data=large_report)


def render(result: Table4Result) -> str:
    rows = []
    for key, report in (
        ("small-data", result.small_data),
        ("large-data", result.large_data),
    ):
        data, model, opt, paper_f1, paper_acc = PAPER_TABLE4[key]
        rows.append(
            [
                data,
                model,
                "Full" if opt else "No",
                100 * report.macro_f1,
                100 * report.accuracy,
                f"{100 * paper_f1:.0f}/{paper_acc:.0f}",
            ]
        )
    return format_table(
        ["Data", "Model", "Opt.", "M-F1%", "Acc%", "paper M-F1/Acc"], rows
    )


def main() -> None:
    result = run()
    print("Table IV: dataset scale vs model scale (DeBERTa)")
    print(render(result))
    print("large data + base model wins accuracy:",
          result.large_data_wins_accuracy)


if __name__ == "__main__":
    main()
