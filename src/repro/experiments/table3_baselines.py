"""Table III — performance comparison of the five baselines.

Paper values (Acc% / Macro-F1% / per-class F1%):

=========  =====  ======  ====  ====  ====  ====
Model      Acc.   MacF1   IN    ID    BR    AT
=========  =====  ======  ====  ====  ====  ====
XGBoost    42.5   25.3    58.2  37.6  39.0  31.2
BiLSTM     48.6   36.7    61.5  41.2  41.1  33.2
HiGRU      52.2   30.3    64.4  45.8  44.0  39.2
RoBERTa    71.0   65.0    72.0  73.7  72.0  71.0
DeBERTa    76.0   77.0    76.0  78.9  76.0  77.0
=========  =====  ======  ====  ====  ====  ====

Reproduction target: the *hierarchy* — PLMs ≫ sequence models ≳ boosted
trees — not the absolute numbers (our substrate is a synthetic corpus and
from-scratch tiny PLMs, not the authors' testbed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import DEFAULT_SEED
from repro.eval.metrics import EvalReport
from repro.experiments.common import BENCH_SCALE, cached_build, format_table
from repro.models.registry import TABLE3_ORDER, create_model

#: Published Table III rows: model → (acc, macro, IN, ID, BR, AT) in %.
PAPER_TABLE3: dict[str, tuple[float, ...]] = {
    "XGBoost": (42.5, 25.3, 58.2, 37.6, 39.0, 31.2),
    "BiLSTM": (48.6, 36.7, 61.5, 41.2, 41.1, 33.2),
    "HiGRU": (52.2, 30.3, 64.4, 45.8, 44.0, 39.2),
    "RoBERTa": (71.0, 65.0, 72.0, 73.7, 72.0, 71.0),
    "DeBERTa": (76.0, 77.0, 76.0, 78.9, 76.0, 77.0),
}

#: Per-model keyword overrides used by the harness (pretraining corpora
#: are injected at run time).
PLM_PRETRAIN_STEPS = 400
PLM_PRETRAIN_TEXTS = 6000


@dataclass
class Table3Result:
    reports: list[EvalReport]

    def report_for(self, model: str) -> EvalReport:
        for report in self.reports:
            if report.model.lower() == model.lower():
                return report
        raise KeyError(model)

    @property
    def plm_beats_others(self) -> bool:
        """The paper's headline: transformers ≫ RNNs and trees."""
        plm = min(
            self.report_for("RoBERTa").accuracy,
            self.report_for("DeBERTa").accuracy,
        )
        rest = max(
            self.report_for("XGBoost").accuracy,
            self.report_for("BiLSTM").accuracy,
            self.report_for("HiGRU").accuracy,
        )
        return plm > rest


def run(
    scale: float = BENCH_SCALE,
    seed: int = DEFAULT_SEED,
    models: tuple[str, ...] = TABLE3_ORDER,
    pretrain_steps: int = PLM_PRETRAIN_STEPS,
) -> Table3Result:
    """Train and evaluate the requested baselines on one dataset build."""
    build = cached_build(scale, seed)
    dataset = build.dataset
    splits = dataset.splits()
    y_test = np.array([int(w.label) for w in splits.test])
    reports = []
    for name in models:
        kwargs = {}
        if name in ("roberta", "deberta"):
            kwargs["pretrain_texts"] = dataset.pretrain_texts[:PLM_PRETRAIN_TEXTS]
            kwargs["pretrain_steps"] = pretrain_steps
        model = create_model(name, **kwargs)
        model.fit(splits.train, splits.validation)
        predictions = model.predict(splits.test)
        reports.append(EvalReport.compute(model.name, y_test, predictions))
    return Table3Result(reports=reports)


def render(result: Table3Result) -> str:
    rows = []
    for report in result.reports:
        row = report.as_row()
        paper = PAPER_TABLE3.get(report.model)
        rows.append(
            [
                row["Model"],
                row["Acc_pct"],
                row["MacroF1_pct"],
                row["IN_F1_pct"],
                row["ID_F1_pct"],
                row["BR_F1_pct"],
                row["AT_F1_pct"],
                f"{paper[0]:.1f}/{paper[1]:.1f}" if paper else "-",
            ]
        )
    return format_table(
        ["Model", "Acc%", "MacF1%", "IN-F1", "ID-F1", "BR-F1", "AT-F1",
         "paper Acc/MacF1"],
        rows,
    )


def main() -> None:
    result = run()
    print("Table III: baseline comparison (measured vs paper)")
    print(render(result))
    print("PLMs beat non-PLM baselines:", result.plm_beats_others)


if __name__ == "__main__":
    main()
