"""Figures 2 & 3 — per-class word clouds.

Fig. 2 shows Indicator (n=4,615) and Ideation (n=7,133); Fig. 3 shows
Behavior (n=2,056) and Attempt (n=809). A word cloud is just a scaled
top-k term-frequency map, so the harness regenerates the underlying data:
stopword-filtered content-word frequencies per class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.rng import DEFAULT_SEED
from repro.core.schema import ALL_LEVELS, RiskLevel
from repro.experiments.common import BENCH_SCALE, cached_build, format_table
from repro.text.tokenizer import content_words


@dataclass(frozen=True)
class WordCloud:
    """Top-k scaled term frequencies for one class."""

    level: RiskLevel
    support: int  # number of posts carrying the class
    weights: dict[str, float]  # term → weight in (0, 1]

    def top(self, k: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(self.weights.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


def run(
    scale: float = BENCH_SCALE,
    seed: int = DEFAULT_SEED,
    top_k: int = 60,
) -> dict[RiskLevel, WordCloud]:
    """Word-cloud data for all four classes."""
    dataset = cached_build(scale, seed).dataset
    counters: dict[RiskLevel, Counter] = {level: Counter() for level in ALL_LEVELS}
    supports: dict[RiskLevel, int] = {level: 0 for level in ALL_LEVELS}
    for post in dataset.posts:
        level = dataset.label_of(post)
        counters[level].update(content_words(post.text))
        supports[level] += 1
    clouds = {}
    for level in ALL_LEVELS:
        common = counters[level].most_common(top_k)
        peak = common[0][1] if common else 1
        clouds[level] = WordCloud(
            level=level,
            support=supports[level],
            weights={term: count / peak for term, count in common},
        )
    return clouds


def render(clouds: dict[RiskLevel, WordCloud], k: int = 12) -> str:
    blocks = []
    for level, fig in (
        (RiskLevel.INDICATOR, "Fig 2a"),
        (RiskLevel.IDEATION, "Fig 2b"),
        (RiskLevel.BEHAVIOR, "Fig 3a"),
        (RiskLevel.ATTEMPT, "Fig 3b"),
    ):
        cloud = clouds[level]
        rows = [[term, f"{weight:.2f}"] for term, weight in cloud.top(k)]
        blocks.append(
            f"{fig} — {level.label} word cloud (n={cloud.support})\n"
            + format_table(["term", "weight"], rows)
        )
    return "\n\n".join(blocks)


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
