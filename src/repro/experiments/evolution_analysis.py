"""Risk-evolution analysis (extension experiment).

The paper motivates RSD-15K with the ability to "model the dynamic
evolution of suicide risk" but publishes no dedicated evolution figure.
This experiment supplies one: population escalation prevalence, the
empirical label-transition matrix, and escalation timing — quantities a
downstream early-warning system would calibrate against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evolution import EvolutionReport, analyse
from repro.core.rng import DEFAULT_SEED
from repro.core.schema import ALL_LEVELS
from repro.experiments.common import BENCH_SCALE, cached_build, format_table


@dataclass(frozen=True)
class EvolutionFigure:
    report: EvolutionReport

    @property
    def persistence(self) -> float:
        """Mean diagonal mass of the transition matrix (state stickiness)."""
        diag = np.diag(self.report.transition_matrix)
        populated = diag[self.report.transition_matrix.sum(axis=1) > 0]
        return float(populated.mean()) if populated.size else 0.0


def run(scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED) -> EvolutionFigure:
    dataset = cached_build(scale, seed).dataset
    return EvolutionFigure(report=analyse(dataset))


def render(figure: EvolutionFigure) -> str:
    report = figure.report
    header = ["from \\ to", *[lv.short for lv in ALL_LEVELS]]
    rows = []
    for i, level in enumerate(ALL_LEVELS):
        rows.append(
            [level.short]
            + [f"{report.transition_matrix[i, j]:.2f}" for j in range(4)]
        )
    matrix = format_table(header, rows)
    summary = (
        f"users: {report.num_users}  "
        f"escalation prevalence: {100 * report.escalation_prevalence:.1f}%  "
        f"escalations/user: {report.escalations_per_user:.2f}\n"
        f"median pre-escalation gap: "
        f"{report.median_escalation_gap_hours:.0f} h  "
        f"state persistence: {figure.persistence:.2f}"
    )
    return f"{matrix}\n{summary}"


def main() -> None:
    print("Risk-evolution analysis (dataset capability, extension)")
    print(render(run()))


if __name__ == "__main__":
    main()
