"""Annotation consistency (§II-C1) — Fleiss' κ on the joint subset.

Paper: 30% of the dataset (4,384 samples) was labelled by all three
annotators; Fleiss' κ = 0.7206 ("substantial agreement").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.agreement import interpret_kappa
from repro.core.rng import DEFAULT_SEED
from repro.experiments.common import BENCH_SCALE, cached_build

PAPER_KAPPA = 0.7206
PAPER_JOINT_SAMPLES = 4_384


@dataclass(frozen=True)
class KappaResult:
    kappa: float
    joint_samples: int
    interpretation: str
    label_noise: float
    all_inspections_passed: bool

    @property
    def within_tolerance(self) -> bool:
        """Measured κ within ±0.08 of the published value."""
        return abs(self.kappa - PAPER_KAPPA) <= 0.08


def run(scale: float = BENCH_SCALE, seed: int = DEFAULT_SEED) -> KappaResult:
    build = cached_build(scale, seed)
    campaign = build.campaign
    return KappaResult(
        kappa=campaign.kappa,
        joint_samples=len(campaign.joint_post_ids),
        interpretation=interpret_kappa(campaign.kappa),
        label_noise=campaign.label_noise,
        all_inspections_passed=all(d.passed for d in campaign.daily_logs),
    )


def main() -> None:
    result = run()
    print("Annotation consistency (paper §II-C1)")
    print(f"  Fleiss' kappa : {result.kappa:.4f}  (paper: {PAPER_KAPPA})")
    print(f"  joint samples : {result.joint_samples}  "
          f"(paper: {PAPER_JOINT_SAMPLES} at full scale)")
    print(f"  interpretation: {result.interpretation}")
    print(f"  label noise   : {result.label_noise:.3f}")
    print(f"  inspections   : "
          f"{'all passed' if result.all_inspections_passed else 'FAILED'}")


if __name__ == "__main__":
    main()
