"""repro — reproduction of the RSD-15K suicide-risk dataset paper (ICDE 2025).

Public API tour
---------------
* :func:`repro.build_dataset` — run the full §II pipeline (synthetic crawl
  → preprocessing → simulated annotation campaign) and get the released
  :class:`repro.RSD15K` dataset.
* :class:`repro.RiskAssessor` — fit any of the five §III baselines and
  assess user histories, including risk-evolution trajectories.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core.assessment import RiskAssessor, RiskTimepoint
from repro.core.evolution import (
    EvolutionReport,
    UserEvolution,
    analyse as analyse_evolution,
    user_evolution,
)
from repro.core.config import (
    AnnotationConfig,
    CorpusConfig,
    SplitConfig,
    WindowConfig,
)
from repro.core.dataset import RSD15K
from repro.core.pipeline import BuildReport, BuildResult, build_dataset
from repro.core.schema import ALL_LEVELS, NUM_CLASSES, RiskLevel

__version__ = "1.0.0"

__all__ = [
    "RiskAssessor",
    "RiskTimepoint",
    "EvolutionReport",
    "UserEvolution",
    "analyse_evolution",
    "user_evolution",
    "AnnotationConfig",
    "CorpusConfig",
    "SplitConfig",
    "WindowConfig",
    "RSD15K",
    "BuildReport",
    "BuildResult",
    "build_dataset",
    "ALL_LEVELS",
    "NUM_CLASSES",
    "RiskLevel",
    "__version__",
]
