"""Single-pass AST lint engine behind ``python -m repro lint``.

The engine parses each target file exactly once and hands every node of
the tree to every registered rule (:mod:`repro.analysis.rules`), so
adding a rule never adds a parse pass. Rules report through the
:class:`FileContext`, which applies inline suppressions before a
:class:`Finding` is recorded::

    x = legacy_call()  # repro: noqa[REPRO-RNG]

silences exactly ``REPRO-RNG`` on exactly that line (several ids may be
comma-separated inside the brackets). Grandfathered findings live in a
JSON baseline instead (:mod:`repro.analysis.baseline`): they stay out
of the report but must stay justified, and they go *stale* — loudly —
the moment the underlying code is fixed, so the baseline only ever
shrinks.

Findings carry the stripped source line as ``context``; the baseline
matches on it rather than on line numbers, so unrelated edits above a
grandfathered line do not invalidate the entry.

See ``docs/static_analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

__all__ = [
    "FileContext",
    "Finding",
    "LintEngine",
    "LintResult",
    "Project",
    "Severity",
]

#: Reported when a target file does not parse; not a registered rule
#: (there is nothing to visit), but suppressible/baselinable like one.
PARSE_RULE_ID = "REPRO-PARSE"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\-\s]+)\]")


class Severity(Enum):
    """How a finding affects the exit code: errors fail, warnings don't."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source line."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    context: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule)


def _scan_comments(source: str) -> dict[int, str]:
    """``{lineno: comment text}`` via the tokenizer (strings excluded).

    Falls back to a crude per-line scan when the file cannot be
    tokenized (the AST parse will report the real problem).
    """
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                comments[lineno] = line[line.index("#"):]
    return comments


def _noqa_map(comments: dict[int, str]) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for lineno, text in comments.items():
        match = _NOQA_RE.search(text)
        if match:
            out[lineno] = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
    return out


def module_name(path: Path | str) -> str | None:
    """Dotted module guess: everything from the ``repro`` path segment on.

    ``src/repro/serve/engine.py`` → ``repro.serve.engine``; paths not
    containing a ``repro`` segment (lint fixtures, scripts) get ``None``
    and rules with module allowlists treat them as unexempted.
    """
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return None


@dataclass
class FileContext:
    """Everything the rules may need about the file under analysis."""

    path: Path
    relpath: str
    source: str
    lines: list[str]
    tree: ast.AST
    module: str | None
    comments: dict[int, str]
    noqa: dict[int, set[str]]
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0

    def line(self, lineno: int) -> str:
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        return rule_id in self.noqa.get(lineno, ())

    def report(
        self, rule, lineno: int, message: str,
        severity: Severity | None = None,
    ) -> None:
        """Record a finding unless a matching noqa silences it."""
        if self.is_suppressed(rule.id, lineno):
            self.suppressed += 1
            return
        self.findings.append(Finding(
            rule=rule.id,
            severity=severity or rule.severity,
            path=self.relpath,
            line=lineno,
            message=message,
            context=self.line(lineno),
        ))


@dataclass
class Project:
    """Cross-file state for rules with a whole-project ``finish`` phase."""

    root: Path
    findings: list[Finding] = field(default_factory=list)

    @property
    def tests_dir(self) -> Path:
        return self.root / "tests"

    def report(
        self, rule, relpath: str, lineno: int, message: str, context: str,
        severity: Severity | None = None,
    ) -> None:
        self.findings.append(Finding(
            rule=rule.id,
            severity=severity or rule.severity,
            path=relpath,
            line=lineno,
            message=message,
            context=context,
        ))


@dataclass
class LintResult:
    findings: list[Finding]
    files_checked: int
    suppressed: int


class LintEngine:
    """Run a rule set over files/directories in a single AST pass each.

    rules:
        Rule *instances*; defaults to one of each registered rule
        (:func:`repro.analysis.rules.default_rules`).
    root:
        Project root used for relative paths in reports/baselines and
        for cross-file checks (REPRO-TWIN's ``tests/`` scan). Defaults
        to the current working directory.
    """

    def __init__(self, rules=None, root: Path | str | None = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)
        self.root = Path(root) if root is not None else Path.cwd()

    # -- discovery ---------------------------------------------------------

    def discover(self, paths: list[Path | str]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            if path.is_dir():
                files.update(
                    p for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
            else:
                files.add(path)
        return sorted(files)

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def make_context(
        self, source: str, path: Path | str, module: str | None = None
    ) -> FileContext:
        path = Path(path)
        relpath = self._relpath(path)
        comments = _scan_comments(source)
        tree = ast.parse(source)  # SyntaxError propagates to the caller
        return FileContext(
            path=path,
            relpath=relpath,
            source=source,
            lines=source.splitlines(),
            tree=tree,
            module=module if module is not None else module_name(relpath),
            comments=comments,
            noqa=_noqa_map(comments),
        )

    # -- checking ----------------------------------------------------------

    def _check_context(self, ctx: FileContext) -> None:
        for rule in self.rules:
            rule.begin_file(ctx)
        for node in ast.walk(ctx.tree):
            for rule in self.rules:
                rule.visit(node, ctx)
        for rule in self.rules:
            rule.end_file(ctx)

    def check_source(
        self, source: str, path: str = "<memory>",
        module: str | None = None, finish: bool = True,
    ) -> list[Finding]:
        """Lint one in-memory source blob (the unit-test entry point)."""
        ctx = self.make_context(source, path, module=module)
        self._check_context(ctx)
        findings = list(ctx.findings)
        if finish:
            project = Project(root=self.root)
            for rule in self.rules:
                rule.finish(project)
            findings.extend(project.findings)
        return sorted(findings, key=Finding.sort_key)

    def run(self, paths: list[Path | str]) -> LintResult:
        """Lint files/directories; returns every unsuppressed finding."""
        findings: list[Finding] = []
        suppressed = 0
        files = self.discover(paths)
        for path in files:
            source = path.read_text(encoding="utf-8")
            try:
                ctx = self.make_context(source, path)
            except SyntaxError as exc:
                findings.append(Finding(
                    rule=PARSE_RULE_ID,
                    severity=Severity.ERROR,
                    path=self._relpath(path),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                    context=(exc.text or "").strip(),
                ))
                continue
            self._check_context(ctx)
            findings.extend(ctx.findings)
            suppressed += ctx.suppressed
        project = Project(root=self.root)
        for rule in self.rules:
            rule.finish(project)
        findings.extend(project.findings)
        return LintResult(
            findings=sorted(findings, key=Finding.sort_key),
            files_checked=len(files),
            suppressed=suppressed,
        )
