"""Text and JSON reporters for ``repro lint`` results.

Both consume the same :class:`LintReport` view: *new* findings (not
baselined, not noqa'd), *baselined* findings, *stale* baseline entries,
and run counters. The exit code is part of the report so the JSON
artifact uploaded by CI is self-describing: ``0`` clean-or-baselined,
``1`` new errors or stale baseline entries (warnings never fail).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.baseline import BaselineEntry
from repro.analysis.engine import Finding, Severity

__all__ = ["LintReport", "render_json", "render_text"]


@dataclass
class LintReport:
    new: list[Finding]
    baselined: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.new if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.new if f.severity is Severity.WARNING]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors or self.stale else 0

    def summary(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": len(self.new),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "stale_baseline": len(self.stale),
            "exit_code": self.exit_code,
        }

    def summary_line(self) -> str:
        s = self.summary()
        verdict = "clean" if self.exit_code == 0 else "FAILED"
        return (
            f"repro lint: {verdict} — {s['findings']} finding(s) "
            f"({s['errors']} error, {s['warnings']} warning) in "
            f"{s['files_checked']} file(s); {s['baselined']} baselined, "
            f"{s['suppressed']} noqa-suppressed, "
            f"{s['stale_baseline']} stale baseline entr(y/ies)"
        )


def render_text(report: LintReport) -> str:
    lines: list[str] = []
    for finding in report.new:
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule} "
            f"{finding.severity.value}: {finding.message}"
        )
        if finding.context:
            lines.append(f"    {finding.context}")
    for entry in report.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} at {entry.path} "
            f"({entry.context!r}) no longer matches any finding — "
            f"delete it from the baseline"
        )
    lines.append(report.summary_line())
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    payload = {
        "summary": report.summary(),
        "findings": [f.as_dict() for f in report.new],
        "baselined": [f.as_dict() for f in report.baselined],
        "stale_baseline": [e.as_dict() for e in report.stale],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
