"""JSON baseline: grandfathered findings that must stay justified.

A baseline entry matches findings by ``(rule, path, context)`` where
``context`` is the stripped source line — line numbers churn with every
edit above the finding, the line's text does not. Every entry must carry
a non-empty ``description`` saying *why* the finding is acceptable;
loading a baseline with an unjustified entry is an error, so
justifications cannot rot away silently.

Entries that match nothing are *stale* and reported as failures: once a
grandfathered finding is fixed, its entry must be deleted. Baselines
therefore shrink monotonically — the file records debt being paid down,
never a growing pile of ignores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.engine import Finding

__all__ = ["Baseline", "BaselineEntry", "BaselineError"]

FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Malformed baseline file (bad JSON, missing keys, no justification)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    context: str
    description: str

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.context == finding.context
        )

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "description": self.description,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}")
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        entries = []
        for i, raw in enumerate(payload["entries"]):
            missing = {"rule", "path", "context", "description"} - set(raw)
            if missing:
                raise BaselineError(
                    f"baseline {path} entry {i} missing {sorted(missing)}"
                )
            if not str(raw["description"]).strip():
                raise BaselineError(
                    f"baseline {path} entry {i} ({raw['rule']} at "
                    f"{raw['path']}) has an empty description — every "
                    f"grandfathered finding must be justified"
                )
            entries.append(BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                context=str(raw["context"]),
                description=str(raw["description"]),
            ))
        return cls(entries=entries)

    def apply(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (new, baselined); third item is stale entries.

        An entry may cover several findings (same line content appearing
        twice keeps one justification); an entry covering none is stale.
        """
        new: list[Finding] = []
        baselined: list[Finding] = []
        used = [False] * len(self.entries)
        for finding in findings:
            hit = False
            for i, entry in enumerate(self.entries):
                if entry.matches(finding):
                    used[i] = True
                    hit = True
            (baselined if hit else new).append(finding)
        stale = [e for i, e in enumerate(self.entries) if not used[i]]
        return new, baselined, stale

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        payload = {
            "version": FORMAT_VERSION,
            "entries": [e.as_dict() for e in self.entries],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path
