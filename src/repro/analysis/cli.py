"""Argument wiring shared by ``python -m repro lint`` and scripts/lint.py.

``add_lint_arguments`` attaches the option surface to any argparse
parser (the repro CLI's ``lint`` subcommand reuses it verbatim);
``run_from_args`` executes a parsed namespace and returns the exit
code. Run from the repository root so report/baseline paths stay
repo-relative (CI does; ``--root`` overrides).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import LintEngine
from repro.analysis.reporters import LintReport, render_json, render_text

__all__ = ["add_lint_arguments", "main", "run_from_args"]

DEFAULT_BASELINE = "lint_baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the report to this file (a one-line summary still "
             "goes to stdout)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline JSON (default: {DEFAULT_BASELINE} under --root "
             f"when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root for relative paths and the tests/ scan "
             "(default: current directory)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    root = Path(args.root) if args.root else Path.cwd()
    engine = LintEngine(root=root)
    result = engine.run(args.paths or ["src"])

    baseline = Baseline.empty()
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
        )
        if args.baseline or baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as exc:
                print(f"repro lint: {exc}", file=sys.stderr)
                return 2
    new, baselined, stale = baseline.apply(result.findings)

    report = LintReport(
        new=new,
        baselined=baselined,
        stale=stale,
        files_checked=result.files_checked,
        suppressed=result.suppressed,
    )
    text = (
        render_json(report) if args.format == "json" else render_text(report)
    )
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} lint report to {args.output}")
        print(report.summary_line())
    else:
        print(text, end="")
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST static analysis enforcing repo reproducibility "
                    "discipline (see docs/static_analysis.md)",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
