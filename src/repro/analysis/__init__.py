"""Static analysis (``repro lint``): codebase-specific AST rules.

A single-pass lint engine (:mod:`repro.analysis.engine`) runs six
repo-specific rules (:mod:`repro.analysis.rules`) that turn this
reproduction's discipline into machine-checked invariants:

==============  =======================================================
REPRO-LOCK      lock-owning classes mutate state under their lock
REPRO-RNG       randomness flows through explicit np.random.Generators
REPRO-TWIN      vectorized kernels keep their ``_reference`` twin + test
REPRO-CLOCK     no wall-clock reads outside repro.perf / repro.serve
REPRO-METRIC    perf.* name literals render valid Prometheus exposition
REPRO-EXCEPT    broad excepts re-raise, fail a Future, or justify
==============  =======================================================

Inline suppression: ``# repro: noqa[REPRO-RNG]`` on the offending line.
Grandfathered findings: ``lint_baseline.json`` (every entry justified;
stale entries fail the run). CLI: ``python -m repro lint [paths]``;
docs: ``docs/static_analysis.md``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.engine import (
    FileContext,
    Finding,
    LintEngine,
    LintResult,
    Project,
    Severity,
)
from repro.analysis.reporters import LintReport, render_json, render_text
from repro.analysis.rules import RULES, Rule, default_rules, register, rule_ids

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "LintResult",
    "Project",
    "RULES",
    "Rule",
    "Severity",
    "default_rules",
    "register",
    "render_json",
    "render_text",
    "rule_ids",
]
