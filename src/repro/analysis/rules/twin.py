"""REPRO-TWIN: every ``_reference`` kernel keeps its twin and its test.

The repo's performance contract (docs/performance.md): each vectorized
hot path keeps its original scalar implementation as an executable
specification — ``scatter_add_rows`` / ``scatter_add_rows_reference``,
``BPETokenizer.train`` / ``_train_reference``, … — and an equivalence
test pins the pair together. A refactor that renames the fast twin,
moves it to another module, or drops the equivalence test silently
voids that contract; this rule makes the drift a lint error.

Statically, for every function whose name contains ``_reference``:

* a sibling named like the reference minus ``_reference`` (with or
  without the leading underscore) must be defined in the *same module*;
* at least one file under ``<root>/tests/`` must mention the reference
  function by name (the equivalence test).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.engine import FileContext, Project
from repro.analysis.rules import Rule, register

_MARKER = "_reference"


def twin_candidates(reference_name: str) -> set[str]:
    """Names that count as the fast twin of ``reference_name``."""
    base = reference_name.replace(_MARKER, "")
    return {name for name in (base, base.lstrip("_")) if name}


@dataclass
class _Ref:
    relpath: str
    lineno: int
    name: str
    context: str


@register
class ReferenceTwinRule(Rule):
    id = "REPRO-TWIN"
    description = (
        "a *_reference function must keep its fast twin in the same "
        "module and an equivalence test under tests/"
    )

    def __init__(self, severity=None) -> None:
        super().__init__(severity)
        self._defs: dict[str, set[str]] = {}
        self._refs: list[_Ref] = []

    def begin_file(self, ctx: FileContext) -> None:
        self._defs.setdefault(ctx.relpath, set())

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        self._defs[ctx.relpath].add(node.name)
        if _MARKER in node.name:
            # Suppression is resolved now, while the file context (and
            # its noqa map) is still in hand; finish() runs after.
            if ctx.is_suppressed(self.id, node.lineno):
                return
            self._refs.append(_Ref(
                relpath=ctx.relpath,
                lineno=node.lineno,
                name=node.name,
                context=ctx.line(node.lineno),
            ))

    def finish(self, project: Project) -> None:
        tests_text = self._tests_corpus(project.tests_dir)
        for ref in self._refs:
            names = self._defs.get(ref.relpath, set())
            if not (twin_candidates(ref.name) & names):
                project.report(
                    self, ref.relpath, ref.lineno,
                    f"reference implementation '{ref.name}' has no fast "
                    f"twin in the same module (expected one of "
                    f"{sorted(twin_candidates(ref.name))})",
                    ref.context,
                )
            elif ref.name not in tests_text:
                project.report(
                    self, ref.relpath, ref.lineno,
                    f"no test under tests/ references '{ref.name}' — the "
                    f"kernel/reference pair has lost its equivalence test",
                    ref.context,
                )

    @staticmethod
    def _tests_corpus(tests_dir: Path) -> str:
        if not tests_dir.is_dir():
            return ""
        chunks = []
        for path in sorted(tests_dir.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            try:
                chunks.append(path.read_text(encoding="utf-8"))
            except OSError:
                continue
        return "\n".join(chunks)
