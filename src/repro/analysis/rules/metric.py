"""REPRO-METRIC: telemetry names must render valid Prometheus lines.

``repro.perf`` paths surface verbatim in the exposition text that
``python -m repro metrics`` emits: the path is sanitised into the
metric *name* but embedded raw in the ``# HELP`` line, so a stray
newline in a ``perf.span("...")`` literal produces exposition a scraper
rejects — at export time, far from the call site that caused it.

The static check does not reimplement the format: it feeds each string
literal through the real renderer/validator pair from
:mod:`repro.perf.export` (``render_prometheus`` + ``validate_prometheus``),
so the rule and the runtime can never disagree. On top of renderability
it enforces the repo's naming style — lowercase dotted
``serve.request.latency_seconds`` paths — as a *warning*, keeping the
metric namespace greppable without failing the build.

Only literal first arguments are checked; dynamic names are runtime's
problem (``write_prometheus`` validates before writing).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import FileContext, Severity
from repro.analysis.rules import Rule, register

#: Instrument methods whose first argument is a metric path.
INSTRUMENTS = {"span", "count", "gauge", "observe"}

#: Receivers that are telemetry registries (``perf.count(...)``,
#: ``registry.span(...)``, ``_REGISTRY.gauge(...)``); keeps
#: ``str.count``/``list.count`` out of scope.
_STYLE_RE = re.compile(r"[a-z][a-z0-9_]*(\.[a-z0-9_]+)*")


def _is_registry_receiver(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and (
        node.id == "perf" or node.id.lower().endswith("registry")
    )


def is_renderable(name: str) -> bool:
    """Does ``name`` survive the real export pipeline?

    Renders a one-counter snapshot through
    :func:`repro.perf.export.render_prometheus` and checks it with
    :func:`repro.perf.export.validate_prometheus` — the exact code the
    ``metrics`` command runs, so static and runtime verdicts agree by
    construction. (Sanitisation is identical for every instrument kind,
    so one kind suffices.)
    """
    from repro.perf.export import render_prometheus, validate_prometheus

    try:
        validate_prometheus(render_prometheus({"counters": {name: 1}}))
    except ValueError:
        return False
    return True


@register
class MetricNameRule(Rule):
    id = "REPRO-METRIC"
    description = (
        "literal perf.span/count/gauge/observe names must render valid "
        "Prometheus exposition and follow lowercase dotted style"
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in INSTRUMENTS
            and _is_registry_receiver(func.value)
        ):
            return
        if not node.args:
            return
        arg = node.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return
        name = arg.value
        if not is_renderable(name):
            ctx.report(
                self, node.lineno,
                f"metric name {name!r} renders invalid Prometheus "
                f"exposition (rejected by repro.perf.export."
                f"validate_prometheus)",
            )
        elif not _STYLE_RE.fullmatch(name):
            ctx.report(
                self, node.lineno,
                f"metric name {name!r} violates the lowercase dotted "
                f"style (expected e.g. 'serve.request.latency_seconds')",
                severity=Severity.WARNING,
            )
