"""REPRO-EXCEPT: broad exception handlers may not swallow silently.

``except Exception`` / bare ``except`` has three legitimate shapes in
this codebase: it *re-raises* after cleanup, it *fails a Future* so a
waiter sees the error (the serving engine's batch worker), or it
deliberately degrades — in which case the handler must say why, in a
comment on the ``except`` line or the first line of its body, and
ideally record the event (``perf.count("cache.read_error")``) so the
degradation is observable. A broad handler with none of the three is
exactly how the build cache silently ate corrupt entries.

Narrow handlers (``except (OSError, json.JSONDecodeError)``) are out of
scope: naming the exception types is already the documentation.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext
from repro.analysis.rules import Rule, register

_BROAD = {"Exception", "BaseException"}


def _is_broad(type_node: ast.expr | None) -> bool:
    if type_node is None:
        return True
    if isinstance(type_node, ast.Name):
        return type_node.id in _BROAD
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(elt) for elt in type_node.elts)
    return False


def _handles(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "set_exception"
        ):
            return True
    return False


@register
class BroadExceptRule(Rule):
    id = "REPRO-EXCEPT"
    description = (
        "except Exception / bare except must re-raise, fail a Future, "
        "or carry a justifying comment"
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if not isinstance(node, ast.ExceptHandler):
            return
        if not _is_broad(node.type):
            return
        if _handles(node):
            return
        # A justifying comment may trail the except line, sit on the
        # lines between it and the first statement, or trail that first
        # statement — the places a "why we swallow" note naturally goes.
        last = node.body[0].lineno if node.body else node.lineno
        if any(
            line in ctx.comments
            for line in range(node.lineno, last + 1)
        ):
            return
        caught = "bare except" if node.type is None else "except Exception"
        ctx.report(
            self, node.lineno,
            f"{caught} swallows the error — re-raise, set_exception() on "
            f"a Future, or justify with a comment on the handler (and "
            f"consider recording it, e.g. perf.count('...error'))",
        )
