"""Rule registry for the ``repro lint`` engine.

A rule is a class with a unique ``id`` (``REPRO-*``), a default
:class:`~repro.analysis.engine.Severity`, and three hooks the engine
calls during its single AST pass: ``begin_file``/``visit``/``end_file``,
plus a whole-project ``finish`` for cross-file checks. Decorate with
:func:`register` to appear in :func:`default_rules`; severity can be
overridden per instance (``RngRule(severity=Severity.WARNING)``) without
touching the class.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext, Project, Severity

__all__ = ["RULES", "Rule", "default_rules", "register", "rule_ids"]

RULES: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Add a rule class to the registry (keyed and sorted by ``id``)."""
    if not cls.id or not cls.id.startswith("REPRO-"):
        raise ValueError(f"rule id must start with 'REPRO-': {cls.id!r}")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def rule_ids() -> list[str]:
    return sorted(RULES)


def default_rules(severities: dict[str, Severity] | None = None) -> list["Rule"]:
    """One instance of every registered rule, optional severity overrides."""
    overrides = severities or {}
    return [
        RULES[rule_id](severity=overrides.get(rule_id))
        for rule_id in sorted(RULES)
    ]


class Rule:
    """Base class: subclasses override the hooks they need."""

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def __init__(self, severity: Severity | None = None) -> None:
        if severity is not None:
            self.severity = severity

    def begin_file(self, ctx: FileContext) -> None:
        """Called before the AST walk of each file."""

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        """Called once per AST node during the engine's single pass."""

    def end_file(self, ctx: FileContext) -> None:
        """Called after the AST walk of each file."""

    def finish(self, project: Project) -> None:
        """Called once after every file, for cross-file findings."""


# Importing the rule modules populates the registry.
from repro.analysis.rules import (  # noqa: E402  (registry must exist first)
    clock,
    excepts,
    lock,
    metric,
    rng,
    twin,
)
