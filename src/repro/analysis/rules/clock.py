"""REPRO-CLOCK: no wall-clock reads in deterministic modules.

The build cache (``repro/core/cache.py``) addresses a build by a sha256
of its canonical config; corpus timestamps come from seeded simulation
over the config's date range. A ``time.time()`` or ``datetime.now()``
anywhere in the pipeline/experiment/corpus layers injects the host
clock into that deterministic world — cache keys stop being
content-addressed, rebuilt corpora stop matching, multi-seed runs stop
being comparable.

Telemetry legitimately wants wall time (trace anchors, latency logs),
so the ``repro.perf`` and ``repro.serve`` subpackages are allowlisted.
Monotonic clocks (``time.perf_counter``, ``time.monotonic``) are always
fine — they measure durations, not world state.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext
from repro.analysis.rules import Rule, register

#: Module prefixes where wall-clock reads are legitimate.
ALLOWLIST_PREFIXES = ("repro.perf", "repro.serve")

_DATETIME_READS = {"now", "utcnow", "today"}


@register
class WallClockRule(Rule):
    id = "REPRO-CLOCK"
    description = (
        "no time.time()/datetime.now() outside perf/serve — wall-clock "
        "reads break cache-key and corpus determinism"
    )

    def begin_file(self, ctx: FileContext) -> None:
        self._active = not (
            ctx.module is not None
            and ctx.module.startswith(ALLOWLIST_PREFIXES)
        )
        self._time_mods: set[str] = set()
        self._time_fns: set[str] = set()
        self._dt_mods: set[str] = set()
        self._dt_classes: set[str] = set()
        self._date_classes: set[str] = set()
        if not self._active:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self._time_mods.add(bound)
                    elif alias.name == "datetime":
                        self._dt_mods.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name == "time":
                            self._time_fns.add(alias.asname or "time")
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name == "datetime":
                            self._dt_classes.add(alias.asname or "datetime")
                        elif alias.name == "date":
                            self._date_classes.add(alias.asname or "date")

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if not self._active or not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._time_fns:
            self._report(node, "time.time()", ctx)
            return
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name):
            if value.id in self._time_mods and func.attr == "time":
                self._report(node, f"{value.id}.time()", ctx)
            elif (
                value.id in self._dt_classes
                and func.attr in _DATETIME_READS
            ):
                self._report(node, f"{value.id}.{func.attr}()", ctx)
            elif value.id in self._date_classes and func.attr == "today":
                self._report(node, f"{value.id}.today()", ctx)
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in self._dt_mods
            and value.attr in ("datetime", "date")
            and func.attr in _DATETIME_READS
        ):
            self._report(
                node, f"{value.value.id}.{value.attr}.{func.attr}()", ctx
            )

    def _report(self, node: ast.Call, what: str, ctx: FileContext) -> None:
        ctx.report(
            self, node.lineno,
            f"wall-clock read {what} in a deterministic module — derive "
            f"timestamps from the seeded config, or move the code under "
            f"repro.perf/repro.serve (allowlisted)",
        )
