"""REPRO-RNG: randomness must flow through an explicit Generator.

The paper's Table IV/V numbers are multi-seed means; risk labels are
only comparable across runs when every sampling decision derives from a
seeded ``np.random.Generator`` threaded through as a parameter (the
``nn/init.py`` / ``corpus/generator.py`` idiom, plus
``repro.core.rng.stream`` for named substreams). Legacy module-level
``np.random.*`` calls and stdlib ``random.*`` mutate hidden process
globals: any library call may advance them, silently reshuffling every
downstream sample.

Allowed: ``np.random.default_rng`` / ``Generator`` / ``SeedSequence`` /
bit generators, and seeded ``random.Random(seed)`` instances (an
explicit generator object, the stdlib analogue of ``Generator``).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext
from repro.analysis.rules import Rule, register

#: numpy.random attributes that touch the hidden global RandomState.
NUMPY_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "normal",
    "uniform", "binomial", "poisson", "beta", "gamma", "exponential",
    "multinomial", "standard_normal", "get_state", "set_state",
    "RandomState",
}

#: stdlib random module functions that mutate the process-global state.
STDLIB_GLOBAL = {
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "randbytes",
}


@register
class RngDisciplineRule(Rule):
    id = "REPRO-RNG"
    description = (
        "no legacy np.random.* or process-global random.* — pass an "
        "explicit seeded np.random.Generator instead"
    )

    def begin_file(self, ctx: FileContext) -> None:
        # Pre-scan imports so uses that lexically precede a late import
        # still resolve (the engine walk is breadth-first).
        self._numpy: set[str] = set()
        self._numpy_random: set[str] = set()
        self._stdlib: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        self._numpy.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self._numpy_random.add(alias.asname)
                        else:
                            self._numpy.add("numpy")
                    elif alias.name == "random":
                        self._stdlib.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self._numpy_random.add(alias.asname or "random")

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.ImportFrom):
            self._visit_import_from(node, ctx)
        elif isinstance(node, ast.Attribute):
            self._visit_attribute(node, ctx)

    def _visit_import_from(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name in NUMPY_LEGACY:
                    ctx.report(
                        self, node.lineno,
                        f"legacy 'from numpy.random import {alias.name}' — "
                        f"use np.random.default_rng(seed) and pass the "
                        f"Generator explicitly",
                    )
        elif node.module == "random":
            for alias in node.names:
                if alias.name in STDLIB_GLOBAL:
                    ctx.report(
                        self, node.lineno,
                        f"'from random import {alias.name}' binds the "
                        f"process-global RNG — use a seeded "
                        f"np.random.Generator (or random.Random(seed))",
                    )

    def _visit_attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        value = node.value
        # np.random.<legacy> through a numpy module alias
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self._numpy
            and node.attr in NUMPY_LEGACY
        ):
            ctx.report(
                self, node.lineno,
                f"legacy global-state 'np.random.{node.attr}' — use "
                f"np.random.default_rng(seed) and pass the Generator "
                f"explicitly",
            )
            return
        if isinstance(value, ast.Name):
            # <npr>.<legacy> through an 'import numpy.random as npr' alias
            if value.id in self._numpy_random and node.attr in NUMPY_LEGACY:
                ctx.report(
                    self, node.lineno,
                    f"legacy global-state 'numpy.random.{node.attr}' — "
                    f"use np.random.default_rng(seed) instead",
                )
            # stdlib random.<fn> on the module-global generator
            elif value.id in self._stdlib and node.attr in STDLIB_GLOBAL:
                ctx.report(
                    self, node.lineno,
                    f"process-global 'random.{node.attr}' — seed an "
                    f"np.random.Generator (or random.Random(seed)) and "
                    f"pass it explicitly",
                )
