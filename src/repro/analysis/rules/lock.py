"""REPRO-LOCK: lock-owning classes must mutate state under their lock.

The PR 3 bug class: ``PerfRegistry`` owned a ``threading.Lock`` yet ran
``self._stats[path] = stat`` / ``stat.calls += 1`` read-modify-writes
outside it, silently corrupting span trees under the multi-threaded
serving engine. Statically: inside any class that assigns
``self.<attr> = threading.Lock()`` (or ``RLock``), every method other
than ``__init__`` must only mutate ``self.<attr>`` / ``self.<attr>[...]``
inside a ``with self.<lock>`` block.

``__init__`` is exempt (construction happens before the object is
shared); reads are never flagged (benign-race reads are a judgement
call the rule leaves to review); mutations through method calls
(``self._ring.append(...)``) are out of static reach and likewise left
to review.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext
from repro.analysis.rules import Rule, register

_LOCK_FACTORIES = {"Lock", "RLock"}


def _is_lock_factory(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (
            func.attr in _LOCK_FACTORIES
            and isinstance(func.value, ast.Name)
            and func.value.id == "threading"
        )
    return isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES


def _self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` or ``self.<attr>[...]`` mutation target → attr."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutation_targets(stmt: ast.stmt):
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            elts = target.elts if isinstance(target, ast.Tuple) else [target]
            yield from elts
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.target
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        yield stmt.target
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets


def _child_blocks(stmt: ast.stmt):
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body
    for case in getattr(stmt, "cases", []) or []:
        yield case.body


@register
class LockDisciplineRule(Rule):
    id = "REPRO-LOCK"
    description = (
        "attributes of a class that owns a threading lock must only be "
        "mutated inside a 'with self.<lock>' block"
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.ClassDef):
            locks = self._lock_attrs(node)
            if locks:
                for stmt in node.body:
                    if (
                        isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                        and stmt.name != "__init__"
                    ):
                        self._scan(stmt.body, node, stmt, locks, False, ctx)

    @staticmethod
    def _lock_attrs(cls: ast.ClassDef) -> set[str]:
        locks: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        locks.add(attr)
        return locks

    @staticmethod
    def _holds_lock(stmt: ast.With | ast.AsyncWith, locks: set[str]) -> bool:
        for item in stmt.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in locks
            ):
                return True
        return False

    def _scan(
        self,
        body: list[ast.stmt],
        cls: ast.ClassDef,
        method: ast.AST,
        locks: set[str],
        held: bool,
        ctx: FileContext,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held or self._holds_lock(stmt, locks)
                self._scan(stmt.body, cls, method, locks, inner, ctx)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A closure may run on another thread; never assume the
                # enclosing 'with' still holds when it executes.
                self._scan(stmt.body, cls, stmt, locks, False, ctx)
                continue
            if not held:
                for target in _mutation_targets(stmt):
                    attr = _self_attr(target)
                    if attr is not None and attr not in locks:
                        lock = sorted(locks)[0]
                        name = getattr(method, "name", "?")
                        ctx.report(
                            self, stmt.lineno,
                            f"self.{attr} mutated outside 'with "
                            f"self.{lock}' in {cls.name}.{name}() "
                            f"(class owns a threading lock)",
                        )
            for block in _child_blocks(stmt):
                self._scan(block, cls, method, locks, held, ctx)
