"""Command-line interface: ``python -m repro <command>``.

Commands
--------
build       Build a dataset and write it to JSONL.
stats       Print Table-I-style statistics of a JSONL dataset.
evaluate    Train a baseline on a freshly built dataset and report metrics.
bench       Run one paper experiment (table1..table4, fig1, fig23, fig4,
            kappa, ablations).
serve-bench Train a baseline, then benchmark the micro-batched
            InferenceEngine against per-window scoring (throughput plus
            p50/p90/p99 end-to-end latency and queue wait); with
            --workers N, also a multi-process WorkerPool phase.
metrics     Exercise the serving stack, then export telemetry as
            Prometheus exposition text or a JSON snapshot (or render a
            previously saved snapshot with --input).
trace       Exercise the serving stack, then print recent per-request
            traces from the engine's ring buffer.
lint        Run the repo's AST static-analysis rules (REPRO-LOCK,
            REPRO-RNG, REPRO-TWIN, REPRO-CLOCK, REPRO-METRIC,
            REPRO-EXCEPT) over src/ or the given paths.
"""

from __future__ import annotations

import argparse
import sys

from repro import perf
from repro.core.config import CorpusConfig
from repro.core.dataset import RSD15K
from repro.core.pipeline import build_dataset


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus fraction (1.0 = paper-sized 14,613 posts)",
    )
    parser.add_argument("--seed", type=int, default=None)


def _config(args) -> CorpusConfig:
    config = CorpusConfig() if args.seed is None else CorpusConfig(seed=args.seed)
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return config


def cmd_build(args) -> int:
    result = build_dataset(_config(args))
    result.dataset.to_jsonl(args.output)
    print(f"wrote {result.dataset.num_posts} posts "
          f"({result.dataset.num_users} users) to {args.output}")
    print(f"campaign kappa: {result.dataset.kappa:.4f}")
    return 0


def cmd_datacard(args) -> int:
    from repro.core.datacard import render_datacard

    dataset = RSD15K.from_jsonl(args.dataset)
    card = render_datacard(dataset)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(card, encoding="utf-8")
        print(f"wrote datasheet to {args.output}")
    else:
        print(card)
    return 0


def cmd_stats(args) -> int:
    dataset = RSD15K.from_jsonl(args.dataset)
    print(f"posts: {dataset.num_posts}   users: {dataset.num_users}")
    for label, count, pct in dataset.label_distribution().as_rows():
        print(f"  {label:<10} {count:>7}  {pct:5.2f}%")
    counts = sorted(dataset.posts_per_user().values())
    under_20 = sum(1 for c in counts if c < 20) / len(counts)
    print(f"posts/user: median {counts[len(counts) // 2]}, "
          f"max {counts[-1]}, <20: {100 * under_20:.1f}%")
    return 0


def cmd_evaluate(args) -> int:
    from repro.eval.reporting import to_markdown
    from repro.eval.runner import evaluate_model

    result = build_dataset(_config(args))
    splits = result.dataset.splits()
    kwargs = {}
    if args.model in ("roberta", "deberta"):
        kwargs["pretrain_texts"] = result.dataset.pretrain_texts[:6000]
    report = evaluate_model(
        args.model, splits.train, splits.validation, splits.test, **kwargs
    )
    print(to_markdown([report]))
    return 0


def cmd_bench(args) -> int:
    from repro.experiments import (
        ablations,
        fig1_posts_per_user,
        fig23_wordclouds,
        fig4_top_users,
        kappa_consistency,
        table1_distribution,
        table2_comparison,
        table3_baselines,
        table4_scale,
    )

    mains = {
        "table1": table1_distribution.main,
        "table2": table2_comparison.main,
        "table3": table3_baselines.main,
        "table4": table4_scale.main,
        "fig1": fig1_posts_per_user.main,
        "fig23": fig23_wordclouds.main,
        "fig4": fig4_top_users.main,
        "kappa": kappa_consistency.main,
        "ablations": ablations.main,
    }
    if args.profile:
        perf.reset()
    mains[args.experiment]()
    if args.profile:
        print()
        print("perf profile")
        print(perf.render())
        out = perf.write_json(
            args.profile_output, extra={"experiment": args.experiment}
        )
        print(f"wrote perf report to {out}")
    return 0


def cmd_serve_bench(args) -> int:
    from repro.serve import EngineConfig, run_serve_bench

    result = build_dataset(_config(args))
    splits = result.dataset.splits()
    kwargs = {}
    if args.model in ("roberta", "deberta"):
        kwargs["pretrain_texts"] = result.dataset.pretrain_texts[:6000]
        kwargs["pretrain_steps"] = args.pretrain_steps
    from repro.models import create_model

    model = create_model(args.model, **kwargs)
    model.fit(splits.train, splits.validation)

    bench = run_serve_bench(
        model,
        splits.test,
        requests=args.requests,
        config=EngineConfig(
            max_batch_size=args.batch_size,
            max_wait_s=args.max_wait_s,
            num_workers=args.num_workers,
        ),
    )
    print(f"serve-bench: model={args.model} requests={bench.requests} "
          f"batch_size={args.batch_size}")
    print(f"  per-window   {bench.before_throughput:10.1f} req/s "
          f"({bench.before_s:.3f}s)")
    print(f"  engine       {bench.after_throughput:10.1f} req/s "
          f"({bench.after_s:.3f}s)")
    print(f"  speedup      {bench.speedup:10.1f}x")
    print(f"  async        {bench.async_throughput:10.1f} req/s "
          f"({bench.async_s:.3f}s)")
    print(f"  labels identical: {bench.labels_identical}   "
          f"max prob diff: {bench.max_prob_diff:.2e}")
    # A zero-sample run has count 0 and None quantiles; formatting them
    # as 0.00ms would read as a perfect p99.
    if bench.latency.get("count"):
        lat, qw = bench.latency, bench.queue_wait
        print(f"  latency      p50 {lat['p50_ms']:7.2f}ms  "
              f"p90 {lat['p90_ms']:7.2f}ms  p99 {lat['p99_ms']:7.2f}ms  "
              f"max {lat['max_ms']:7.2f}ms  (n={lat['count']})")
        print(f"  queue wait   p50 {qw['p50_ms']:7.2f}ms  "
              f"p90 {qw['p90_ms']:7.2f}ms  p99 {qw['p99_ms']:7.2f}ms  "
              f"max {qw['max_ms']:7.2f}ms")
    else:
        print("  latency      (no samples — tracing disabled?)")
    stats = bench.engine_stats
    print(f"  batches: {stats['batches']}  "
          f"mean batch: {stats['mean_batch_size']:.1f}  "
          f"token cache hits: {stats['tokenization_cache']['hits']}  "
          f"slow requests: {stats['traces']['slow']}")

    pool_bench = None
    if args.workers:
        from repro.serve import PoolConfig, run_pool_bench

        pool_bench = run_pool_bench(
            model,
            splits.test,
            requests=args.requests,
            config=PoolConfig(
                num_workers=args.workers,
                engine=EngineConfig(
                    max_batch_size=args.batch_size,
                    max_wait_s=args.max_wait_s,
                    num_workers=args.num_workers,
                ),
            ),
        )
        print(f"  pool ({pool_bench.workers} proc) "
              f"{pool_bench.pool_throughput:8.1f} req/s "
              f"({pool_bench.pool_s:.3f}s)  "
              f"speedup vs engine {pool_bench.speedup:.2f}x")
        print(f"  pool labels identical: {pool_bench.labels_identical}   "
              f"probs bitwise: {pool_bench.probs_bitwise_identical}   "
              f"arena: {pool_bench.arena_nbytes / 1024:.0f} KiB")

    if args.output:
        extra = {"serve_bench": bench.as_dict()}
        if pool_bench is not None:
            extra["pool_bench"] = pool_bench.as_dict()
        out = perf.write_json(args.output, extra=extra)
        print(f"wrote serve bench report to {out}")
    ok = bench.labels_identical and (
        pool_bench is None or pool_bench.labels_identical
    )
    return 0 if ok else 1


def _serve_exercise(args):
    """Train a model and push traffic through a traced engine.

    Shared by ``metrics`` and ``trace``: both need a populated registry
    (serve counters, gauges, span + latency histograms) and a tracer
    ring, which only exist after real requests have flowed. Returns the
    closed engine (its tracer and stats stay readable).
    """
    from repro.models import create_model
    from repro.serve import EngineConfig, InferenceEngine

    result = build_dataset(_config(args))
    splits = result.dataset.splits()
    model = create_model(args.model)
    model.fit(splits.train, splits.validation)
    traffic = [splits.test[i % len(splits.test)]
               for i in range(args.requests)]
    engine = InferenceEngine(model, EngineConfig(
        max_batch_size=args.batch_size,
        trace_ring_size=max(256, args.requests),
        slow_threshold_s=args.slow_ms / 1e3,
        slow_log_path=args.slow_log,
    ))
    with engine:
        futures = [engine.submit(w) for w in traffic]
        for future in futures:
            future.result(timeout=60.0)
    return engine


def _add_serve_exercise_args(parser) -> None:
    _add_scale(parser)
    parser.set_defaults(scale=0.05)
    parser.add_argument(
        "--model", default="logreg",
        choices=["xgboost", "bilstm", "higru", "roberta", "deberta", "logreg"],
    )
    parser.add_argument("--requests", type=int, default=96,
                        help="traced requests pushed through the engine")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="engine max_batch_size")
    parser.add_argument("--slow-ms", type=float, default=1000.0,
                        help="slow-request threshold in milliseconds")
    parser.add_argument("--slow-log", default=None,
                        help="JSONL file receiving slow-request traces")


def cmd_metrics(args) -> int:
    import json as _json

    from repro.perf import json_snapshot, render_prometheus, validate_prometheus

    if args.input:
        from pathlib import Path

        snap = _json.loads(Path(args.input).read_text(encoding="utf-8"))
        perf_snapshot = snap.get("perf", snap)
    else:
        engine = _serve_exercise(args)
        snap = json_snapshot(
            perf.get_registry(), tracer=engine.tracer,
            extra={"engine_stats": engine.stats()},
        )
        perf_snapshot = snap["perf"]

    if args.format == "prometheus":
        text = render_prometheus(perf_snapshot)
        validate_prometheus(text)
    else:
        text = _json.dumps(snap, indent=2) + "\n"
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} metrics to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.cli import run_from_args

    return run_from_args(args)


def cmd_trace(args) -> int:
    import json as _json

    engine = _serve_exercise(args)
    traces = engine.recent_traces(limit=args.limit)
    if args.format == "json":
        print(_json.dumps(traces, indent=2))
        return 0
    stats = engine.stats()["traces"]
    print(f"traces: {stats['finished']} finished, {stats['slow']} slow, "
          f"showing {len(traces)} most recent")
    for trace in traces:
        events = " ".join(
            f"{e['name']}@{e['t_ms']:.2f}" for e in trace["events"]
        )
        print(f"  {trace['trace_id']}  total {trace['total_ms']:8.2f}ms  "
              f"queue {trace['queue_wait_ms']:7.2f}ms  "
              f"batch={trace['metadata'].get('batch_size', '?')}")
        print(f"    {events}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RSD-15K reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build a dataset, write JSONL")
    _add_scale(p_build)
    p_build.add_argument("--output", default="rsd15k.jsonl")
    p_build.set_defaults(func=cmd_build)

    p_stats = sub.add_parser("stats", help="statistics of a JSONL dataset")
    p_stats.add_argument("dataset")
    p_stats.set_defaults(func=cmd_stats)

    p_card = sub.add_parser(
        "datacard", help="render a datasheet for a JSONL dataset"
    )
    p_card.add_argument("dataset")
    p_card.add_argument("--output", default=None)
    p_card.set_defaults(func=cmd_datacard)

    p_eval = sub.add_parser("evaluate", help="train + evaluate a baseline")
    _add_scale(p_eval)
    p_eval.add_argument(
        "--model", default="xgboost",
        choices=["xgboost", "bilstm", "higru", "roberta", "deberta", "logreg"],
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_bench = sub.add_parser("bench", help="run one paper experiment")
    p_bench.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "table4", "fig1", "fig23",
                 "fig4", "kappa", "ablations"],
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="print the perf span report and write it to --profile-output",
    )
    p_bench.add_argument(
        "--profile-output", default="BENCH_PR1.json",
        help="JSON file the perf report is merged into (default BENCH_PR1.json)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve-bench",
        help="benchmark micro-batched serving against per-window scoring",
    )
    _add_scale(p_serve)
    p_serve.add_argument(
        "--model", default="logreg",
        choices=["xgboost", "bilstm", "higru", "roberta", "deberta", "logreg"],
    )
    p_serve.add_argument("--requests", type=int, default=256,
                         help="total scoring requests (test windows, cycled)")
    p_serve.add_argument("--batch-size", type=int, default=32,
                         help="engine max_batch_size")
    p_serve.add_argument("--max-wait-s", type=float, default=0.005,
                         help="micro-batcher wait for stragglers")
    p_serve.add_argument("--num-workers", type=int, default=1,
                         help="threads executing coalesced batches")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="also benchmark a WorkerPool with this many "
                              "engine processes (0 = skip the pool phase)")
    p_serve.add_argument("--pretrain-steps", type=int, default=100,
                         help="MLM steps for the PLM models")
    p_serve.add_argument("--output", default=None,
                         help="merge results + perf report into this JSON")
    p_serve.set_defaults(func=cmd_serve_bench)

    p_metrics = sub.add_parser(
        "metrics",
        help="exercise the serving stack and export telemetry "
             "(Prometheus text or JSON snapshot)",
    )
    _add_serve_exercise_args(p_metrics)
    p_metrics.add_argument("--format", default="prometheus",
                           choices=["prometheus", "json"])
    p_metrics.add_argument("--output", default=None,
                           help="write to this file instead of stdout")
    p_metrics.add_argument(
        "--input", default=None,
        help="render a previously saved JSON snapshot instead of "
             "running the serve exercise",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_trace = sub.add_parser(
        "trace",
        help="exercise the serving stack and print recent request traces",
    )
    _add_serve_exercise_args(p_trace)
    p_trace.add_argument("--limit", type=int, default=10,
                         help="how many recent traces to show")
    p_trace.add_argument("--format", default="table",
                         choices=["table", "json"])
    p_trace.set_defaults(func=cmd_trace)

    from repro.analysis.cli import add_lint_arguments

    p_lint = sub.add_parser(
        "lint",
        help="run the repro static-analysis rules "
             "(see docs/static_analysis.md)",
    )
    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    finally:
        # REPRO_PERF=1 appends the span report to any command's output —
        # on error paths too (a failed run is exactly when the profile
        # is needed); ``bench --profile`` prints it regardless.
        if perf.enabled() and not getattr(args, "profile", False):
            print()
            print("perf profile")
            print(perf.render())


if __name__ == "__main__":
    sys.exit(main())
